//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the ASCS benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-runs wall-clock timer instead of criterion's full statistical
//! machinery. Benchmarks compile, run and print a `ns/iter` style summary.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Measured nanoseconds per iteration, filled in by [`Bencher::iter`].
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-call cost.
        let warmup_start = Instant::now();
        black_box(routine());
        let single = warmup_start.elapsed();
        // Aim for ~100 ms of total measurement, between 1 and 10_000 iters.
        let target = Duration::from_millis(100);
        let iters = if single.is_zero() {
            10_000
        } else {
            (target.as_nanos() / single.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.nanos_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        let ns = bencher.nanos_per_iter;
        if ns >= 1_000_000.0 {
            println!("bench {label:<50} {:>12.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("bench {label:<50} {:>12.3} µs/iter", ns / 1_000.0);
        } else {
            println!("bench {label:<50} {ns:>12.1} ns/iter");
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
