//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 block cipher core as a deterministic RNG
//! behind the vendored `rand` traits. The keystream is not bit-identical to
//! the real `rand_chacha` crate (which the offline build cannot fetch), but
//! it is a faithful ChaCha8: the statistical quality the workspace's
//! simulations and tests rely on is the same.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds the RNG from a 256-bit key and a 64-bit stream id.
    pub fn from_key(key: [u32; 8], stream: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // words 12–13: 64-bit block counter; words 14–15: nonce / stream id.
        state[14] = stream as u32;
        state[15] = (stream >> 32) as u32;
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: a column round followed by a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same construction real rand uses.
        let mut expander = rand::SplitMix64::new(state);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = expander.next_u64();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self::from_key(key, 0)
    }
}

/// Alias with 12 rounds' name for API compatibility; still ChaCha8 quality.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias with 20 rounds' name for API compatibility; still ChaCha8 quality.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 200_000usize;
        let mut ones = 0u64;
        let mut mean = 0.0f64;
        for _ in 0..n {
            ones += u64::from(rng.next_u32().count_ones());
            mean += rng.gen::<f64>();
        }
        let bit_rate = ones as f64 / (n as f64 * 32.0);
        assert!((bit_rate - 0.5).abs() < 0.005, "bit rate {bit_rate}");
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }
}
