//! Offline stand-in for `serde_json`.
//!
//! Serialises the vendored `serde` [`Value`] model to JSON text and parses
//! JSON text back. Covers the `to_string` / `to_string_pretty` / `from_str`
//! surface the ASCS workspace uses.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Number, Serialize, Value};

/// Error produced by JSON serialisation or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialises a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) -> Result<(), Error> {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new("non-finite floats cannot be serialised to JSON"));
            }
            // `{:?}` prints the shortest representation that round-trips.
            out.push_str(&format!("{v:?}"));
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out)?,
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(item, out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(value, out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape sequence")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new("invalid float"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            Number::NegInt(
                format!("-{stripped}")
                    .parse::<i64>()
                    .map_err(|_| Error::new("integer out of range"))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new("integer out of range"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("ascs \"quoted\"".into())),
            (
                "nums".into(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(u64::MAX)),
                    Value::Number(Number::NegInt(-3)),
                    Value::Number(Number::Float(0.25)),
                ]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        let mut compact = String::new();
        write_value(&v, &mut compact, None, 0).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }
}
