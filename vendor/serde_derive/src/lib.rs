//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the ASCS workspace actually uses — non-generic structs with named
//! fields, tuple structs, and enums with unit / tuple / struct variants —
//! generating impls of the simplified `serde::Serialize` /
//! `serde::Deserialize` traits of the vendored `serde` stand-in. Enums use
//! real serde's externally-tagged representation. No `syn`/`quote`: the item
//! is parsed directly from the token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// The parsed shape of the derive input.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility modifiers starting at `i`; returns the new position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field-list token stream into top-level comma-separated chunks,
/// tracking angle-bracket depth so commas inside generics don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts the field names from the body of a braces-delimited field list.
fn named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(tokens) {
        let i = skip_attrs_and_vis(&chunk, 0);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("generic types are not supported by the vendored serde derive".into());
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Struct {
                    name,
                    fields: named_fields(&body)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: split_top_level(&body).len(),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let body: Vec<TokenTree> = group.stream().into_iter().collect();
            let mut variants = Vec::new();
            for chunk in split_top_level(&body) {
                let mut j = skip_attrs_and_vis(&chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                j += 1;
                let kind = match chunk.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let vbody: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Struct(named_fields(&vbody)?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let vbody: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Tuple(split_top_level(&vbody).len())
                    }
                    None => VariantKind::Unit,
                    other => return Err(format!("unsupported variant body: {other:?}")),
                };
                variants.push(Variant { name: vname, kind });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![\n"
            ));
            for f in fields {
                out.push_str(&format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("])\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n"
            ));
            if *arity == 1 {
                out.push_str("::serde::Serialize::to_value(&self.0)\n");
            } else {
                out.push_str("::serde::Value::Array(::std::vec![");
                for idx in 0..*arity {
                    out.push_str(&format!("::serde::Serialize::to_value(&self.{idx}),"));
                }
                out.push_str("])\n");
            }
            out.push_str("}\n}\n");
        }
        Item::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\nmatch self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        out.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            format!("::serde::Serialize::to_value({})", binds[0])
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        out.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), {inner})]),\n",
                            binds.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Object(::std::vec![{}]))]),\n",
                            fields.join(","),
                            entries.join(",")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let entries = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object\"))?;\n\
                 ::std::result::Result::Ok(Self {{\n"
            ));
            for f in fields {
                out.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::obj_get(entries, {f:?})?)?,\n"
                ));
            }
            out.push_str("})\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            if *arity == 1 {
                out.push_str(&format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                ));
            } else {
                out.push_str(
                    "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array\"))?;\n",
                );
                out.push_str(&format!(
                    "if items.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity\")); }}\n"
                ));
                let parts: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                out.push_str(&format!(
                    "::std::result::Result::Ok({name}({}))\n",
                    parts.join(",")
                ));
            }
            out.push_str("}\n}\n");
        }
        Item::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name})\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::std::option::Option::Some(s) = v.as_str() {{\nreturn match s {{\n"
            ));
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}};\n}}\n"
            ));
            out.push_str(
                "let entries = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected variant object\"))?;\n\
                 let (tag, inner) = entries.first().ok_or_else(|| ::serde::DeError::new(\"empty variant object\"))?;\n\
                 match tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        out.push_str(&format!(
                            "{vn:?} => {{ let _ = inner; ::std::result::Result::Ok({name}::{vn}) }}\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            out.push_str(&format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                            ));
                        } else {
                            let parts: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            out.push_str(&format!(
                                "{vn:?} => {{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array\"))?;\n\
                                 if items.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong variant arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                                parts.join(",")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let parts: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::obj_get(fields, {f:?})?)?"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "{vn:?} => {{\n\
                             let fields = inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected variant fields\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}\n",
                            parts.join(",")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
