//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace vendors a minimal serialisation framework under the same
//! crate name. It supports exactly what the ASCS crates use: `#[derive(
//! Serialize, Deserialize)]` on plain structs and enums (unit, tuple and
//! struct variants, externally tagged like real serde), serialised through
//! the JSON-like [`Value`] model consumed by the sibling `serde_json`
//! stand-in. It is **not** API-compatible with real serde beyond that
//! surface.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like document value — the data model both derive macros and the
/// `serde_json` stand-in speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. A `Vec` keeps field order stable for readable output.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Value {
    /// Borrows the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array items if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the shape a `Deserialize`
/// implementation expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the document model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the document model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field in an object's entries (helper for derived code).
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
}

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Number(Number::NegInt(n)) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::NegInt(n))
                } else {
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Number(Number::NegInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(Number::Float(x)) => Ok(*x),
            Value::Number(Number::PosInt(n)) => Ok(*n as f64),
            Value::Number(Number::NegInt(n)) => Ok(*n as f64),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| DeError::new("tuple too short"))?)?
                    },
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
