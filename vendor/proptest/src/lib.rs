//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the ASCS property suite uses: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, range strategies over integers and
//! floats, tuple strategies, and `proptest::collection::{vec, hash_set}`.
//! Cases are generated from a deterministic per-test RNG; there is no
//! shrinking — a failing case panics with the values' `Debug` rendering
//! where the assertion message includes them.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::{Rng as _, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property with `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic RNG driving case generation.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Builds a per-test RNG whose stream depends only on the test name.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// `prop_assert!`-style failure; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngCore as _;

    /// The uniform boolean strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from
    /// `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of distinct elements from `element`; the target
    /// size is uniform in `size` (best effort when the element domain is
    /// small).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            // Cap attempts so a small element domain cannot spin forever.
            for _ in 0..(target * 100 + 100) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Runs one property body over `config.cases` accepted cases. Used by the
/// [`proptest!`] macro; not public API in real proptest.
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(test_name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 100 + 1_000;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property `{test_name}`: too many rejected cases \
             ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{test_name}` failed: {msg}")
            }
        }
    }
}

/// Declares property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// `prop::...` paths as re-exported by the real prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}
