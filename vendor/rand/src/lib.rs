//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice of the `rand 0.8` API the ASCS crates use: the [`RngCore`] and
//! [`SeedableRng`] traits, and the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`. Uniform integer ranges are sampled with the
//! widening-multiply method; floats use the standard 53-bit mantissa
//! construction over `[0, 1)`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded internally, as in real
    /// rand's default `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types the [`Rng::gen`] method can produce.
pub trait Standard: Sized {
    /// Draws one value from the rng.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a random word into `[0, span)` without modulo bias worth
/// caring about at the scales used here.
fn mul_reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = mul_reduce(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let offset = mul_reduce(rng.next_u64(), span as u64);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start <= self.end, "cannot sample inverted float range");
        if self.start >= self.end {
            // Degenerate range: the only representable choice.
            return self.start;
        }
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start <= self.end, "cannot sample inverted float range");
        if self.start >= self.end {
            return self.start;
        }
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Expands a 64-bit seed into a stream of well-mixed words (SplitMix64),
/// the same construction real rand uses for `seed_from_u64`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let r = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&r));
            let i = rng.gen_range(0..=7usize);
            assert!(i <= 7);
            let j = rng.gen_range(3u64..9);
            assert!((3..9).contains(&j));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
