//! Streaming term co-occurrence screening on a sparse text-like workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example text_stream_topk
//! ```
//!
//! Text and click-through datasets (rcv1, sector, URL) are extremely sparse:
//! a sample touches only a handful of its tens of thousands of features.
//! This example uses the rcv1 surrogate, pushes the stream through a
//! shuffle buffer (the i.i.d.-inducing device of Section 3), and compares
//! ASCS with the Augmented Sketch and Cold Filter baselines at the same
//! memory budget.

use ascs::prelude::*;
use std::collections::HashSet;

fn main() {
    // Sparse text-like surrogate: 1000 terms, ~4% density per document.
    let surrogate = SurrogateDataset::new(SurrogateSpec::rcv1().scaled(1000, 6000));
    let raw_samples = surrogate.all_samples();
    println!(
        "dataset '{}': {} documents, {} terms, avg {:.1} non-zero terms per document",
        surrogate.spec().name,
        raw_samples.len(),
        surrogate.spec().dim,
        surrogate.average_nonzeros(200)
    );

    // Shuffle through a bounded buffer, as a production pipeline would.
    let samples = ShuffleBuffer::new(512, 11).shuffle_all(raw_samples);
    let signal_keys: HashSet<u64> = surrogate.signal_keys().into_iter().collect();

    let geometry = SketchGeometry::from_budget(5, 25_000);
    let base_config = AscsConfig {
        dim: surrogate.spec().dim,
        total_samples: samples.len() as u64,
        geometry,
        alpha: surrogate.spec().alpha,
        signal_strength: 0.3,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Correlation,
        update_mode: UpdateMode::Product,
        seed: 3,
        top_k_capacity: 500,
    };

    let backends = [
        ("vanilla CS", SketchBackend::VanillaCs),
        (
            "ASketch",
            SketchBackend::AugmentedSketch {
                filter_capacity: 256,
            },
        ),
        (
            "Cold Filter",
            SketchBackend::ColdFilter {
                threshold: 1e-4,
                filter_range: 1024,
            },
        ),
        ("ASCS", SketchBackend::Ascs),
    ];

    println!(
        "\n{:<12} {:>10} {:>16} {:>14}",
        "backend", "max F1", "top-100 hit rate", "memory (words)"
    );
    for (name, backend) in backends {
        // `new_or_fallback` covers the aggressive-compression case where
        // Algorithm 3's Theorem 2 budget is infeasible for ASCS.
        let (mut estimator, _) = CovarianceEstimator::new_or_fallback(base_config, backend);
        for sample in &samples {
            estimator.process_sample(sample);
        }
        let ranked: Vec<u64> = estimator
            .top_pairs(base_config.top_k_capacity)
            .into_iter()
            .map(|p| p.key)
            .collect();
        let f1 = max_f1_score(&ranked, &signal_keys);
        let hits = ranked
            .iter()
            .take(100)
            .filter(|k| signal_keys.contains(k))
            .count();
        println!(
            "{:<12} {:>10.3} {:>15}% {:>14}",
            name,
            f1,
            hits,
            estimator.memory_words()
        );
    }

    println!(
        "\nground truth: {} planted co-occurring term pairs out of {} total pairs",
        signal_keys.len(),
        surrogate.signal_keys().len().max(1) // same value; printed for clarity
    );
}
