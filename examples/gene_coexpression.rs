//! Gene co-expression screening — the motivating application of the paper's
//! introduction (gene association networks are inferred from large sparse
//! covariance matrices).
//!
//! Run with:
//! ```text
//! cargo run --release --example gene_coexpression
//! ```
//!
//! The example simulates expression profiles for a few thousand "genes"
//! organised into co-regulated pathways (equicorrelated blocks), streams
//! the samples once through ASCS with a correlation target, and reports the
//! recovered co-expression pairs grouped by pathway. It also demonstrates
//! the pilot-phase workflow of Section 8.1: the first 5% of the stream is
//! used to estimate the noise scale `σ` and the signal strength `u` before
//! the hyperparameters are solved.

use ascs::prelude::*;
use ascs_core::hyper::SigmaEstimator;
use ascs_datasets::stream_util::pilot_split;

fn main() {
    // ------------------------------------------------------------------
    // 1. Simulated expression data: 1500 genes, pathways of 8 genes each,
    //    within-pathway correlation 0.55–0.9.
    // ------------------------------------------------------------------
    let spec = SimulationSpec {
        dim: 1500,
        alpha: 0.002,
        rho_min: 0.55,
        rho_max: 0.9,
        block_size: 8,
        seed: 99,
    };
    let dataset = SimulatedDataset::new(spec);
    let total = 3000usize;
    let samples = dataset.samples(0, total);
    println!(
        "simulated {} expression profiles over {} genes ({} co-regulated pathways, {} signal pairs)",
        total,
        spec.dim,
        dataset.num_blocks(),
        dataset.signal_pairs().len()
    );

    // ------------------------------------------------------------------
    // 2. Pilot phase (first 5%): estimate the noise scale of the pair
    //    updates, mirroring the relaxation of Section 7.2.
    // ------------------------------------------------------------------
    let (pilot, _rest) = pilot_split(&samples, 0.05);
    let mut sigma_est = SigmaEstimator::new();
    {
        use ascs_core::{StreamContext, UpdateMode};
        let mut ctx = StreamContext::new(spec.dim, UpdateMode::Product, EstimandKind::Correlation);
        for sample in pilot {
            ctx.ingest(sample, |update| sigma_est.push(update.value));
        }
    }
    let sigma = sigma_est.sigma().unwrap_or(1.0);
    println!(
        "pilot phase: sigma estimate = {sigma:.3} from {} updates",
        sigma_est.count()
    );

    // ------------------------------------------------------------------
    // 3. Configure and run ASCS with a correlation estimand. The memory
    //    budget is 10k floats — about 0.9% of the 1.1M gene pairs.
    // ------------------------------------------------------------------
    let geometry = SketchGeometry::from_budget(5, 10_000);
    let config = AscsConfig {
        dim: spec.dim,
        total_samples: total as u64,
        geometry,
        alpha: dataset.realised_alpha().max(1e-4),
        signal_strength: 0.5,
        sigma,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Correlation,
        update_mode: UpdateMode::Product,
        seed: 1,
        top_k_capacity: 200,
    };
    // At this compression ratio Algorithm 3 may be infeasible (the Theorem 2
    // budget cannot be met); the estimator then falls back to the
    // fixed-fraction exploration Theorem 3 analyses.
    let (estimator, fell_back) = CovarianceEstimator::new_or_fallback(config, SketchBackend::Ascs);
    if fell_back {
        println!("(Algorithm 3 infeasible at this compression; using fixed-fraction exploration)");
    }
    // Amortise hashing across the stream: the 1.1M pair keys are hashed
    // once into an ingestion plan, and every sample replays plan entries.
    // (ASCS is plan-capable; on a filter backend this would return a
    // PlanError and the hashed path would carry on.)
    let mut estimator = estimator;
    if let Err(err) = estimator.attach_ingestion_plan() {
        println!("(no ingestion plan: {err}; using the hashed path)");
    }
    println!(
        "sketch: K = {}, R = {} ({} floats for {} gene pairs, {:.0}x compression)",
        geometry.rows,
        geometry.range,
        geometry.words(),
        estimator.indexer().num_pairs(),
        estimator.indexer().num_pairs() as f64 / geometry.words() as f64
    );

    for sample in &samples {
        estimator.process_sample(sample);
    }

    // ------------------------------------------------------------------
    // 4. Report the strongest co-expression pairs and check them against
    //    the planted pathways.
    // ------------------------------------------------------------------
    let top = estimator.top_pairs(25);
    let mut true_positives = 0;
    println!("\ntop reported co-expression pairs:");
    println!(
        "{:>8} {:>8} {:>12} {:>12}",
        "gene A", "gene B", "estimate", "planted rho"
    );
    for pair in &top {
        let rho = dataset.true_correlation(pair.a, pair.b);
        if rho > 0.0 {
            true_positives += 1;
        }
        println!(
            "{:>8} {:>8} {:>12.3} {:>12.3}",
            pair.a, pair.b, pair.estimate, rho
        );
    }
    println!(
        "\n{} of the top {} reported pairs are genuinely co-regulated",
        true_positives,
        top.len()
    );
    let (inserted, skipped) = estimator.update_counts();
    println!(
        "active sampling skipped {:.1}% of all pair updates after exploration",
        100.0 * skipped as f64 / (inserted + skipped).max(1) as f64
    );
}
