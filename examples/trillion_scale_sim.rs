//! A scaled-down rehearsal of the paper's trillion-scale experiment
//! (Table 2): find the top near-1.0 correlation pairs of a URL-like sparse
//! stream under aggressive memory compression.
//!
//! Run with:
//! ```text
//! cargo run --release --example trillion_scale_sim
//! ```
//!
//! The real URL dataset has 2.4M features (≈ 3·10¹² pairs, 20 TB as a dense
//! matrix). The surrogate keeps the two properties that drive the CS vs
//! ASCS comparison — per-sample sparsity and the pairs-per-bucket
//! compression ratio — at a dimensionality a laptop can verify exactly.

use ascs::prelude::*;

fn main() {
    let dim = 20_000u64;
    let dataset = TrillionScaleDataset::new(TrillionSpec::url_like(dim, 5));
    let total = 3000usize;
    // The surrogate derives a per-sample RNG from the sample index, so the
    // stream can be generated on several threads with identical results.
    let samples: Vec<Sample> = dataset.samples_par(total, 4);
    let p = dataset.num_pairs();
    println!(
        "URL-like surrogate: d = {dim}, p = {p} unique pairs, avg {:.0} non-zeros per sample",
        dataset.average_nonzeros(100)
    );

    // Sweep sketch budgets the way Table 2 sweeps 20MB / 100MB / 200MB.
    let budgets = [50_000usize, 200_000, 1_000_000];
    let signal_keys = dataset.signal_keys();
    println!(
        "ground truth: {} strongly co-occurring pairs planted\n",
        signal_keys.len()
    );
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>14}",
        "budget (words)", "compression", "CS hit rate", "ASCS hit rate", "ASCS x4 shards"
    );

    for budget in budgets {
        let geometry = SketchGeometry::from_budget(5, budget);
        let config = AscsConfig {
            dim,
            total_samples: total as u64,
            geometry,
            alpha: (signal_keys.len() as f64 / p as f64).max(1e-9),
            signal_strength: 0.5,
            sigma: 1.0,
            delta: 0.05,
            delta_star: 0.20,
            tau0: 1e-4,
            estimand: EstimandKind::Correlation,
            update_mode: UpdateMode::Product,
            seed: 17,
            top_k_capacity: signal_keys.len().max(100),
        };
        let mut hit_rates = Vec::new();
        for backend in [
            SketchBackend::VanillaCs,
            SketchBackend::Ascs,
            SketchBackend::ShardedAscs { shards: 4 },
        ] {
            // At this compression ratio and stream length the strict
            // Theorem 1 target can be infeasible; fall back to the
            // fixed-fraction exploration of Theorem 3 when it is.
            let (mut estimator, _fell_back) = CovarianceEstimator::new_or_fallback(config, backend);
            for sample in &samples {
                estimator.process_sample(sample);
            }
            let reported: Vec<u64> = estimator
                .top_pairs(signal_keys.len())
                .into_iter()
                .map(|pair| pair.key)
                .collect();
            let truth: std::collections::HashSet<u64> = signal_keys.iter().copied().collect();
            let hits = reported.iter().filter(|k| truth.contains(k)).count();
            hit_rates.push(hits as f64 / signal_keys.len() as f64);
        }
        println!(
            "{:>14} {:>13.0}x {:>11.1}% {:>11.1}% {:>13.1}%",
            budget,
            p as f64 / budget as f64,
            100.0 * hit_rates[0],
            100.0 * hit_rates[1],
            100.0 * hit_rates[2]
        );
    }

    println!(
        "\nThe paper's Table 2 shows the same pattern at full scale: at tight budgets vanilla CS \
         collapses while ASCS keeps finding the near-1.0 pairs; at generous budgets both succeed. \
         The sharded column runs the same gated algorithm across 4 key-partitioned worker \
         sketches ingesting on parallel threads — the route to trillion-scale stream rates."
    );
}
