//! Drift detection with a sliding-window covariance sketch.
//!
//! Run with:
//! ```text
//! cargo run --release --example drift_detector
//! ```
//!
//! A cumulative (`1/T`-scaled) sketch is the right tool for a stationary
//! stream — and the wrong one under concept drift: after the covariance
//! structure flips, the cumulative estimate only *dilutes* the old signal
//! at rate `(t − flip)/t` and discovers the new one just as slowly. The
//! windowed backend forgets: once the ring slides past the flip its
//! estimate is the phase-B covariance, full strength.
//!
//! This example turns that contrast into a drift detector. Both backends
//! ingest the same [`CovarianceFlipStream`]; at every segment boundary
//! the detector compares the windowed estimate against the cumulative
//! mean and flags pairs where the two disagree by more than half the
//! nominal signal strength. The run asserts what the conformance harness
//! enforces statistically: the detector stays **quiet through all of
//! phase A** and **fires after the flip**, with the emergent block-B
//! pairs among the flagged set.

use ascs::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The drifting stream: block A (features 0..4) is equicorrelated
    //    at ρ = 0.85 for the first half, then the structure flips to
    //    block B (features 4..8) for the second half.
    // ------------------------------------------------------------------
    let dim = 32u64;
    let total = 1024u64;
    let rho = 0.85;
    let block_len = 4usize;
    let stream = CovarianceFlipStream::new(dim, total, 7, block_len, rho);
    let flip = stream.flip_index();
    let indexer = PairIndexer::new(dim);

    let block_pairs = |lo: u64, hi: u64| -> Vec<u64> {
        let mut keys = Vec::new();
        for a in lo..hi {
            for b in a + 1..hi {
                keys.push(indexer.index(a, b));
            }
        }
        keys
    };
    let a_pairs = block_pairs(0, block_len as u64);
    let b_pairs = block_pairs(block_len as u64, 2 * block_len as u64);

    // ------------------------------------------------------------------
    // 2. Two estimators over the same samples. The windowed ring spans
    //    256 samples (4 segments of 64); the cumulative baseline is a
    //    vanilla count sketch in always-insert mode. Identical geometry,
    //    so the contrast is purely the time model.
    // ------------------------------------------------------------------
    let segment_len = 64u64;
    let segments = 4usize;
    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 2048),
        alpha: (a_pairs.len() + b_pairs.len()) as f64 / indexer.num_pairs() as f64,
        signal_strength: rho / 2.0,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-3,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 41,
        top_k_capacity: 64,
    };
    let always_insert = HyperParameters {
        t0: total,
        theta: 0.0,
        tau0: 0.0,
        delta: config.delta,
        delta_star: config.delta_star,
    };
    let mut windowed = CovarianceEstimator::with_hyperparameters(
        config,
        SketchBackend::Windowed {
            segment_len,
            segments,
        },
        None,
    );
    let mut cumulative = CovarianceEstimator::with_hyperparameters(
        config,
        SketchBackend::VanillaCs,
        Some(always_insert),
    );

    // ------------------------------------------------------------------
    // 3. Stream + detect. A pair is flagged when the windowed mean and
    //    the cumulative mean disagree by more than ρ/2 — either an old
    //    signal the window has forgotten or a new one the cumulative
    //    average is still diluting. Requiring three such pairs makes a
    //    false fire from collision noise essentially impossible.
    // ------------------------------------------------------------------
    let divergence_cut = rho / 2.0;
    let min_flagged = 3usize;
    let mut fired_at: Vec<u64> = Vec::new();
    let mut flagged_post_flip: Vec<u64> = Vec::new();
    println!("    t   phase   window        max |win − cum|   flagged  verdict");
    for t in 1..=total {
        let sample = stream.sample_at(t - 1);
        windowed.process_sample(&sample);
        cumulative.process_sample(&sample);
        if t % segment_len != 0 {
            continue;
        }
        let win = windowed.all_estimates();
        let mut cum = cumulative.all_estimates();
        let scale = total as f64 / t as f64; // undo the 1/T pre-scaling
        for v in &mut cum {
            *v *= scale;
        }
        let mut flagged: Vec<u64> = Vec::new();
        let mut max_div = 0.0f64;
        for (key, (&w, &c)) in win.iter().zip(&cum).enumerate() {
            let div = (w - c).abs();
            max_div = max_div.max(div);
            if div > divergence_cut {
                flagged.push(key as u64);
            }
        }
        let fired = flagged.len() >= min_flagged;
        if fired {
            fired_at.push(t);
            if t > flip {
                flagged_post_flip.extend(&flagged);
            }
        }
        let (start, n) = ascs::core::window_span(t, segment_len, segments);
        println!(
            "  {t:5}   {}   [{start:4}, {t:4}] n={n:3}   {max_div:.4}          {:3}      {}",
            if t <= flip { "A  " } else { "B  " },
            flagged.len(),
            if fired { "DRIFT" } else { "quiet" },
        );
    }

    // ------------------------------------------------------------------
    // 4. The asserted contract — the same shape the conformance harness
    //    gates statistically on this scenario.
    // ------------------------------------------------------------------
    assert!(
        fired_at.iter().all(|&t| t > flip),
        "detector fired during phase A: {fired_at:?}"
    );
    assert!(
        !fired_at.is_empty(),
        "detector never fired after the flip at t = {flip}"
    );
    // Once the window has fully slid past the flip, every boundary fires.
    let settled = flip + segment_len * segments as u64;
    for t in (1..=total).filter(|t| t % segment_len == 0 && *t >= settled) {
        assert!(
            fired_at.contains(&t),
            "detector quiet at t = {t}, window fully inside phase B"
        );
    }
    // The emergent block-B pairs are among what fired.
    let b_flagged = b_pairs
        .iter()
        .filter(|k| flagged_post_flip.contains(k))
        .count();
    assert!(
        b_flagged >= b_pairs.len() / 2,
        "only {b_flagged}/{} emergent block-B pairs were flagged",
        b_pairs.len()
    );
    println!(
        "\ndrift flagged at t = {:?} (flip at {flip}); {b_flagged}/{} emergent \
         block-B pairs among the flagged set",
        fired_at,
        b_pairs.len()
    );
}
