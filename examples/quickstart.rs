//! Quickstart: recover planted correlation pairs from a simulated stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example plants a sparse block-correlation structure, streams i.i.d.
//! samples through both a vanilla count sketch and ASCS at the same memory
//! budget, and compares how well each recovers the planted pairs.

use ascs::prelude::*;
use std::collections::HashSet;

fn main() {
    // ------------------------------------------------------------------
    // 1. A planted dataset: 200 features, ~1% of pairs carry a correlation
    //    in [0.6, 0.95), everything else is independent noise.
    // ------------------------------------------------------------------
    let spec = SimulationSpec {
        dim: 200,
        alpha: 0.01,
        rho_min: 0.6,
        rho_max: 0.95,
        block_size: 6,
        seed: 2024,
    };
    let dataset = SimulatedDataset::new(spec);
    let total_samples = 4000usize;
    let samples = dataset.samples(0, total_samples);
    let signal_keys: HashSet<u64> = dataset.signal_keys().into_iter().collect();
    println!(
        "planted {} signal pairs out of {} total pairs (alpha = {:.3}%)",
        signal_keys.len(),
        dataset.indexer().num_pairs(),
        dataset.realised_alpha() * 100.0
    );

    // ------------------------------------------------------------------
    // 2. One configuration, two backends. The sketch memory (5 x 2000
    //    floats) is ~5% of the number of pairs, so collisions matter.
    // ------------------------------------------------------------------
    let geometry = SketchGeometry::new(5, 2000);
    let config = AscsConfig {
        dim: spec.dim,
        total_samples: total_samples as u64,
        geometry,
        alpha: dataset.realised_alpha().max(1e-4),
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 7,
        top_k_capacity: 2 * signal_keys.len().max(8),
    };

    let mut results = Vec::new();
    for backend in [SketchBackend::VanillaCs, SketchBackend::Ascs] {
        // The ingestion plan hashes each of the ~20k pair keys once up
        // front; every sample afterwards replays precomputed locations
        // instead of re-hashing (bit-identical results, less work per
        // update). Filter backends cannot be plan-driven; the typed error
        // lets us keep the hashed path instead of aborting.
        let mut estimator =
            CovarianceEstimator::new(config, backend).expect("hyperparameter solving failed");
        if let Err(err) = estimator.attach_ingestion_plan() {
            println!("            (no ingestion plan: {err}; using the hashed path)");
        }
        for sample in &samples {
            estimator.process_sample(sample);
        }
        let ranked: Vec<u64> = estimator
            .top_pairs(config.top_k_capacity)
            .into_iter()
            .map(|p| p.key)
            .collect();
        let f1 = max_f1_score(&ranked, &signal_keys);
        let mean_rho = mean_true_value_of_top(
            &ranked,
            |key| {
                let (a, b) = estimator.indexer().pair(key);
                dataset.true_correlation(a, b)
            },
            signal_keys.len(),
        )
        .unwrap_or(0.0);
        let (inserted, skipped) = estimator.update_counts();
        println!(
            "{:>10?}: max F1 = {:.3}, mean planted correlation of reported top = {:.3}, \
             inserted {} updates, skipped {}",
            backend, f1, mean_rho, inserted, skipped
        );
        if backend == SketchBackend::Ascs {
            let hp = estimator.hyperparameters().unwrap();
            println!(
                "            ASCS hyperparameters from Algorithm 3: T0 = {}, theta = {:.4}",
                hp.t0, hp.theta
            );
        }
        results.push((backend, f1));
    }

    // ------------------------------------------------------------------
    // 3. The headline claim of the paper: at equal memory, ASCS recovers
    //    the planted structure at least as well as vanilla CS.
    // ------------------------------------------------------------------
    let cs_f1 = results[0].1;
    let ascs_f1 = results[1].1;
    println!(
        "\nASCS / CS max-F1 ratio at this memory budget: {:.2}",
        if cs_f1 > 0.0 {
            ascs_f1 / cs_f1
        } else {
            f64::INFINITY
        }
    );

    // ------------------------------------------------------------------
    // 4. Sketch lifecycle: checkpoint mid-stream, restart from the bytes,
    //    and finish with exactly the state an uninterrupted run reaches.
    // ------------------------------------------------------------------
    let mut uninterrupted =
        CovarianceEstimator::new(config, SketchBackend::Ascs).expect("solver failed");
    let mut front = CovarianceEstimator::new(config, SketchBackend::Ascs).expect("solver failed");
    let half = samples.len() / 2;
    for sample in &samples {
        uninterrupted.process_sample(sample);
    }
    for sample in &samples[..half] {
        front.process_sample(sample);
    }
    let mut checkpoint = Vec::new();
    front
        .checkpoint(&mut checkpoint)
        .expect("checkpointing an ASCS estimator cannot fail");
    let mut resumed =
        CovarianceEstimator::resume(&mut checkpoint.as_slice()).expect("restore failed");
    for sample in &samples[half..] {
        resumed.process_sample(sample);
    }
    let identical = uninterrupted
        .all_estimates()
        .iter()
        .zip(resumed.all_estimates())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "\ncheckpoint/resume: {} byte checkpoint at t = {half}; resumed run is {} \
         with the uninterrupted run",
        checkpoint.len(),
        if identical {
            "bit-identical"
        } else {
            "NOT identical"
        }
    );
    assert!(identical, "resume must be bit-identical");
}
