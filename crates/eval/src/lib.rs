//! Evaluation layer of the ASCS reproduction.
//!
//! The paper measures two things (Section 3):
//!
//! 1. the **mean true correlation** of the pairs an algorithm reports as
//!    its top set (Tables 2, 4, 5), and
//! 2. the **accuracy of classifying pairs as signal vs noise**, summarised
//!    as the maximum F1 score over report-set sizes (Figure 6).
//!
//! Both need ground truth. For the small "rigorous evaluation" datasets the
//! ground truth is the exact empirical correlation matrix computed from the
//! full dataset ([`exact`]); for the simulation it can also be the planted
//! structure. [`oracle`] maintains the same ground truth *streamingly* with
//! checkpoint snapshots, so drift scenarios can be scored per phase.
//! [`metrics`] implements the two scores plus precision/recall curves,
//! [`gates`] the statistical acceptance gates of the bound-conformance
//! testkit, and [`report`] provides the serialisable tables the experiment
//! binaries emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod gates;
pub mod metrics;
pub mod oracle;
pub mod report;

pub use exact::ExactMatrix;
pub use gates::{epsilon_budget, epsilon_budget_from_bounds, quantile_gate, GateOutcome};
pub use metrics::{max_f1_score, mean_true_value_of_top, precision_recall_curve, PrCurvePoint};
pub use oracle::{ExactSnapshot, StreamingExact};
pub use report::{ExperimentTable, TableCell};
