//! Statistical acceptance gates for bound conformance.
//!
//! The testkit scores an estimator against the streaming oracle by pooling
//! absolute errors `|estimate − exact|` over pairs and seeded trials, then
//! asserting that an empirical quantile of that pool clears a closed-form
//! error budget derived from the paper's theory. Two ingredients:
//!
//! **The budget** ([`epsilon_budget`]). Section 6 models a pair's
//! count-sketch estimate after `t` samples as Gaussian around the truth
//! with standard deviation `κ·σ/√t`, where `σ` is the per-update noise
//! scale and `κ` the multi-table collision inflation factor
//! ([`TheoryBounds::kappa`]) — the same quantities Theorems 1 and 2 are
//! stated in. Under that model the `(1 − δ)` quantile of `|error|` is
//! `z_{1−δ/2} · κ · σ / √t`. The budget multiplies in two honesty factors:
//! a `dependence_factor` for streams that violate the i.i.d. assumption in
//! a *known* way (exact duplication with burst length `L` shrinks the
//! effective sample count to `t/L`, inflating every empirical mean by
//! `√L`), and a fixed `slack` covering the approximations in the model
//! itself (σ is estimated from the stream, updates are not exactly
//! Gaussian, the median is not exactly a mean).
//!
//! **The gate** ([`quantile_gate`]). The empirical `(1 − δ)` quantile of
//! the pooled `|error|` values must not exceed the budget. Gating on a
//! quantile rather than the maximum is what the theorems actually license:
//! they are probabilistic over pairs, so a `δ` fraction of pairs — e.g. the
//! victims of an adversarial collision attack, or signals that emerge only
//! after a covariance flip — may legitimately exceed the budget without
//! falsifying the bound. Gates can also be recorded as *unenforced*
//! diagnostics (`enforced = false`) for exactly those expected-violation
//! populations.

use ascs_core::TheoryBounds;
use ascs_numerics::{normal_quantile, percentile};
use serde::{Deserialize, Serialize};

/// The outcome of one acceptance gate, serialised into the per-scenario
/// conformance reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateOutcome {
    /// Which error population the gate scored (e.g. `all_pairs`,
    /// `signal_pairs`, `emergent_signal_pairs`).
    pub name: String,
    /// The quantile level: the gate compares the empirical `(1 − delta)`
    /// quantile against the budget.
    pub delta: f64,
    /// The observed empirical quantile of `|estimate − exact|`.
    pub observed_quantile: f64,
    /// The theoretical budget `ε` the quantile must clear.
    pub budget: f64,
    /// Number of pooled error values the quantile was taken over.
    pub samples: usize,
    /// Whether this gate participates in the pass/fail decision (`false`
    /// for diagnostic populations that the theorems do not cover, such as
    /// signals emerging after a drift flip).
    pub enforced: bool,
    /// `observed_quantile <= budget` over a non-empty pool.
    pub passed: bool,
}

impl GateOutcome {
    /// Budget headroom `budget / observed` (∞ when the observed quantile is
    /// zero) — how far the gate is from failing.
    pub fn margin(&self) -> f64 {
        if self.observed_quantile <= 0.0 {
            f64::INFINITY
        } else {
            self.budget / self.observed_quantile
        }
    }
}

/// The Theorem 1/2 error budget at stream time `t`:
/// `z_{1−δ/2} · κ · σ · dependence_factor · slack / √t`.
///
/// `kappa` is the collision inflation factor of the run's
/// [`TheoryBounds`], `sigma` the (measured) per-update noise scale, and
/// the two trailing factors are documented at the module level.
///
/// # Panics
/// Panics on degenerate arguments.
pub fn epsilon_budget(
    kappa: f64,
    sigma: f64,
    t: u64,
    delta: f64,
    dependence_factor: f64,
    slack: f64,
) -> f64 {
    assert!(t > 0, "budget needs a positive stream time");
    assert!(kappa >= 1.0, "kappa is an inflation factor (>= 1)");
    assert!(sigma > 0.0, "sigma must be positive");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    assert!(dependence_factor >= 1.0 && slack >= 1.0);
    normal_quantile(1.0 - delta / 2.0) * kappa * sigma * dependence_factor * slack
        / (t as f64).sqrt()
}

/// Convenience: [`epsilon_budget`] with `κ` taken from a bound calculator.
pub fn epsilon_budget_from_bounds(
    bounds: &TheoryBounds,
    sigma: f64,
    t: u64,
    delta: f64,
    dependence_factor: f64,
    slack: f64,
) -> f64 {
    epsilon_budget(bounds.kappa(), sigma, t, delta, dependence_factor, slack)
}

/// Scores one gate: the empirical `(1 − delta)` quantile of the pooled
/// absolute errors against `budget`. An empty pool never passes (a vacuous
/// gate would silently certify nothing).
pub fn quantile_gate(
    name: impl Into<String>,
    abs_errors: &[f64],
    delta: f64,
    budget: f64,
    enforced: bool,
) -> GateOutcome {
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let observed = percentile(abs_errors, (1.0 - delta) * 100.0).unwrap_or(f64::INFINITY);
    GateOutcome {
        name: name.into(),
        delta,
        observed_quantile: observed,
        budget,
        samples: abs_errors.len(),
        enforced,
        passed: !abs_errors.is_empty() && observed <= budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_matches_the_closed_form() {
        let eps = epsilon_budget(1.0, 1.0, 100, 0.05, 1.0, 1.0);
        // z_{0.975} / 10.
        assert!((eps - 1.959_963_984_540_054 / 10.0).abs() < 1e-9, "{eps}");
        // Dependence and slack multiply straight through.
        let inflated = epsilon_budget(1.0, 1.0, 100, 0.05, 2.0, 1.25);
        assert!((inflated - eps * 2.5).abs() < 1e-12);
        // More samples tighten the budget.
        assert!(epsilon_budget(1.0, 1.0, 400, 0.05, 1.0, 1.0) < eps);
    }

    #[test]
    fn budget_from_bounds_uses_kappa() {
        let b = TheoryBounds::new(499_500, 24_975, 5, 0.005, 1.0, 0.5, 1000);
        let eps = epsilon_budget_from_bounds(&b, 1.0, 1000, 0.05, 1.0, 1.0);
        assert!((eps - epsilon_budget(b.kappa(), 1.0, 1000, 0.05, 1.0, 1.0)).abs() < 1e-15);
        assert!(b.kappa() > 1.0);
    }

    #[test]
    fn gate_passes_when_the_quantile_clears_the_budget() {
        // 100 small errors, 3 large outliers: the 95% quantile ignores the
        // outliers, exactly as the probabilistic bound allows.
        let mut errors = vec![0.01f64; 100];
        errors.extend([5.0, 6.0, 7.0]);
        let g = quantile_gate("all_pairs", &errors, 0.05, 0.05, true);
        assert!(g.passed, "{g:?}");
        assert!(g.observed_quantile <= 0.05);
        assert_eq!(g.samples, 103);
        assert!(g.margin() > 1.0);

        // A tighter quantile (delta = 0.01) now sees the outliers.
        let g = quantile_gate("all_pairs", &errors, 0.01, 0.05, true);
        assert!(!g.passed, "{g:?}");
        assert!(g.margin() < 1.0);
    }

    #[test]
    fn empty_pool_never_passes() {
        let g = quantile_gate("signal_pairs", &[], 0.2, 1.0, true);
        assert!(!g.passed);
        assert_eq!(g.samples, 0);
    }

    #[test]
    fn unenforced_flag_is_carried_through() {
        let g = quantile_gate("emergent", &[10.0], 0.2, 0.1, false);
        assert!(!g.enforced);
        assert!(!g.passed);
    }

    #[test]
    fn gate_outcome_round_trips_through_serde() {
        let g = quantile_gate("all_pairs", &[0.1, 0.2], 0.05, 0.5, true);
        let json = serde_json::to_string(&g).unwrap();
        let back: GateOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    #[should_panic(expected = "positive stream time")]
    fn zero_time_budget_panics() {
        epsilon_budget(1.0, 1.0, 0, 0.05, 1.0, 1.0);
    }
}
