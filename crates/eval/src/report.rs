//! Serialisable experiment tables.
//!
//! Every experiment binary in `ascs-bench` emits one or more
//! [`ExperimentTable`]s: a title, column headers and rows of cells. Tables
//! can be rendered as GitHub-flavoured markdown (for EXPERIMENTS.md) or
//! serialised to JSON (for machine comparison between runs).

use serde::{Deserialize, Serialize};

/// One table cell: either text or a number (numbers are formatted with a
/// table-wide precision when rendered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableCell {
    /// Free-form text.
    Text(String),
    /// A numeric value.
    Number(f64),
    /// An integer count.
    Integer(i64),
}

impl From<&str> for TableCell {
    fn from(s: &str) -> Self {
        Self::Text(s.to_owned())
    }
}

impl From<String> for TableCell {
    fn from(s: String) -> Self {
        Self::Text(s)
    }
}

impl From<f64> for TableCell {
    fn from(v: f64) -> Self {
        Self::Number(v)
    }
}

impl From<i64> for TableCell {
    fn from(v: i64) -> Self {
        Self::Integer(v)
    }
}

impl From<u64> for TableCell {
    fn from(v: u64) -> Self {
        Self::Integer(v as i64)
    }
}

impl From<usize> for TableCell {
    fn from(v: usize) -> Self {
        Self::Integer(v as i64)
    }
}

/// A titled table of experiment results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Table title (e.g. "Table 2: mean of top-1000 correlations").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row must have exactly `columns.len()` cells.
    pub rows: Vec<Vec<TableCell>>,
    /// Decimal places used when rendering numbers.
    pub precision: usize,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Sets the numeric rendering precision.
    pub fn with_precision(mut self, precision: usize) -> Self {
        self.precision = precision;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<TableCell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match the {} columns of '{}'",
            row.len(),
            self.columns.len(),
            self.title
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn render_cell(&self, cell: &TableCell) -> String {
        match cell {
            TableCell::Text(s) => s.clone(),
            TableCell::Number(v) => format!("{:.*}", self.precision, v),
            TableCell::Integer(v) => v.to_string(),
        }
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| self.render_cell(c)).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// Serialises the table to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment tables always serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ExperimentTable {
        let mut t = ExperimentTable::new("Demo", vec!["dataset", "CS", "ASCS"]);
        t.push_row(vec!["gisette".into(), 0.35_f64.into(), 0.97_f64.into()]);
        t.push_row(vec!["url".into(), 0.439_f64.into(), 0.979_f64.into()]);
        t
    }

    #[test]
    fn markdown_rendering_has_header_and_rows() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| dataset | CS | ASCS |"));
        assert!(md.contains("| gisette | 0.350 | 0.970 |"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn precision_is_configurable() {
        let t = sample_table().with_precision(1);
        assert!(t.to_markdown().contains("| url | 0.4 | 1.0 |"));
    }

    #[test]
    fn json_round_trip() {
        let t = sample_table();
        let json = t.to_json();
        let back: ExperimentTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(TableCell::from("x"), TableCell::Text("x".into()));
        assert_eq!(TableCell::from(2.5), TableCell::Number(2.5));
        assert_eq!(TableCell::from(7u64), TableCell::Integer(7));
        assert_eq!(TableCell::from(7usize), TableCell::Integer(7));
        assert_eq!(TableCell::from(-3i64), TableCell::Integer(-3));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = ExperimentTable::new("Empty", vec!["a"]);
        assert!(t.is_empty());
        t.push_row(vec![1u64.into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = ExperimentTable::new("Bad", vec!["a", "b"]);
        t.push_row(vec![1u64.into()]);
    }
}
