//! Streaming exact-covariance oracle with checkpoint snapshots.
//!
//! [`ExactMatrix`](crate::ExactMatrix) computes ground truth from a finished
//! sample collection; drift scenarios need ground truth **per phase**, i.e.
//! the exact cumulative matrix at several stream times. Recomputing the
//! matrix from scratch at every checkpoint costs `O(checkpoints · n · d²)`;
//! [`StreamingExact`] instead maintains the same single-pass accumulators
//! incrementally (`O(n · d²)` total) and snapshots them whenever the stream
//! time crosses a configured checkpoint.
//!
//! Snapshots are full [`ExactMatrix`] values, so everything built on the
//! batch oracle — signal-set selection, percentile signal strength, F1
//! scoring — works unchanged on any checkpoint.

use crate::exact::ExactMatrix;
use ascs_core::{codec, num_pairs, CodecError, EstimandKind, PairIndexer, Sample};

/// One checkpoint snapshot: the exact cumulative matrix after `t` samples.
#[derive(Debug, Clone)]
pub struct ExactSnapshot {
    /// Stream time (number of samples folded in).
    pub t: u64,
    /// The exact cumulative covariance/correlation matrix at `t`.
    pub matrix: ExactMatrix,
}

/// Streaming single-pass exact covariance/correlation accumulator.
#[derive(Debug, Clone)]
pub struct StreamingExact {
    indexer: PairIndexer,
    estimand: EstimandKind,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    cross: Vec<f64>,
    dense_scratch: Vec<f64>,
    n: u64,
    checkpoints: Vec<u64>,
    next_checkpoint: usize,
    snapshots: Vec<ExactSnapshot>,
}

impl StreamingExact {
    /// Creates an oracle for `dim`-dimensional samples that snapshots the
    /// exact matrix whenever the sample count reaches a checkpoint.
    ///
    /// # Panics
    /// Panics if `dim` is out of the dense range (see
    /// [`ExactMatrix::from_samples`]) or the checkpoints are not strictly
    /// increasing positive stream times.
    pub fn new(dim: u64, estimand: EstimandKind, checkpoints: Vec<u64>) -> Self {
        assert!(dim >= 2, "need at least two features");
        assert!(
            dim <= 20_000,
            "dense exact accumulators for d = {dim} would not fit in memory"
        );
        assert!(
            checkpoints.windows(2).all(|w| w[0] < w[1]),
            "checkpoints must be strictly increasing"
        );
        assert!(
            checkpoints.first().is_none_or(|&c| c > 0),
            "checkpoints must be positive stream times"
        );
        let d = dim as usize;
        let p = num_pairs(dim) as usize;
        Self {
            indexer: PairIndexer::new(dim),
            estimand,
            sum: vec![0.0; d],
            sum_sq: vec![0.0; d],
            cross: vec![0.0; p],
            dense_scratch: vec![0.0; d],
            n: 0,
            checkpoints,
            next_checkpoint: 0,
            snapshots: Vec::new(),
        }
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> u64 {
        self.indexer.dim()
    }

    /// Number of samples folded in so far.
    pub fn sample_count(&self) -> u64 {
        self.n
    }

    /// The configured checkpoints.
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    /// Snapshots taken so far (one per crossed checkpoint, in order).
    pub fn snapshots(&self) -> &[ExactSnapshot] {
        &self.snapshots
    }

    /// Folds one sample into the accumulators, snapshotting if the new
    /// sample count is a checkpoint.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn push(&mut self, sample: &Sample) {
        assert_eq!(
            sample.dim(),
            self.dim(),
            "inconsistent sample dimensionality"
        );
        let d = self.dense_scratch.len();
        self.dense_scratch.fill(0.0);
        for (i, v) in sample.nonzeros() {
            self.dense_scratch[i as usize] = v;
        }
        for a in 0..d {
            let va = self.dense_scratch[a];
            self.sum[a] += va;
            self.sum_sq[a] += va * va;
            if va == 0.0 {
                continue;
            }
            for b in (a + 1)..d {
                let vb = self.dense_scratch[b];
                if vb != 0.0 {
                    self.cross[self.indexer.index(a as u64, b as u64) as usize] += va * vb;
                }
            }
        }
        self.n += 1;
        while self
            .checkpoints
            .get(self.next_checkpoint)
            .is_some_and(|&c| c == self.n)
        {
            let matrix = self.current_matrix();
            self.snapshots.push(ExactSnapshot { t: self.n, matrix });
            self.next_checkpoint += 1;
        }
    }

    /// Serializes the oracle — accumulators, checkpoint plan and already
    /// taken snapshots — so a drift evaluation can stop mid-stream and
    /// resume later with bit-identical ground truth.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_STREAMING_EXACT)?;
        codec::write_u64(w, self.dim())?;
        codec::write_u8(w, self.estimand as u8)?;
        codec::write_u64(w, self.n)?;
        // The accumulator lengths are functions of `dim`, so they travel
        // without explicit length fields.
        codec::write_f64_slice(w, &self.sum)?;
        codec::write_f64_slice(w, &self.sum_sq)?;
        codec::write_f64_slice(w, &self.cross)?;
        codec::write_u64(w, self.checkpoints.len() as u64)?;
        for &c in &self.checkpoints {
            codec::write_u64(w, c)?;
        }
        codec::write_u64(w, self.next_checkpoint as u64)?;
        codec::write_u64(w, self.snapshots.len() as u64)?;
        for snap in &self.snapshots {
            codec::write_u64(w, snap.t)?;
            codec::write_u64(w, snap.matrix.sample_count())?;
            codec::write_f64_slice(w, snap.matrix.values())?;
        }
        Ok(())
    }

    /// Restores an oracle saved by [`StreamingExact::save`], re-validating
    /// every constructor invariant so corrupt bytes surface as a
    /// [`CodecError`] rather than a panic later.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_STREAMING_EXACT)?;
        let dim = codec::read_u64(r)?;
        if !(2..=20_000).contains(&dim) {
            return Err(CodecError::Corrupt(
                "oracle dimensionality outside the dense range",
            ));
        }
        let estimand = match codec::read_u8(r)? {
            0 => EstimandKind::Covariance,
            1 => EstimandKind::Correlation,
            _ => return Err(CodecError::Corrupt("unknown estimand kind")),
        };
        let n = codec::read_u64(r)?;
        let d = dim as usize;
        let p = num_pairs(dim) as usize;
        let sum = codec::read_f64_vec(r, d)?;
        let sum_sq = codec::read_f64_vec(r, d)?;
        let cross = codec::read_f64_vec(r, p)?;
        let num_checkpoints = codec::read_len(r, 1 << 20, "checkpoint list length out of range")?;
        let mut checkpoints = Vec::with_capacity(num_checkpoints);
        for _ in 0..num_checkpoints {
            checkpoints.push(codec::read_u64(r)?);
        }
        let increasing = checkpoints.windows(2).all(|w| w[0] < w[1]);
        if !increasing || checkpoints.first().is_some_and(|&c| c == 0) {
            return Err(CodecError::Corrupt(
                "checkpoints must be strictly increasing positive stream times",
            ));
        }
        let next_checkpoint = codec::read_len(
            r,
            num_checkpoints as u64,
            "checkpoint cursor beyond the checkpoint list",
        )?;
        let num_snapshots =
            codec::read_len(r, num_checkpoints as u64, "more snapshots than checkpoints")?;
        let mut snapshots = Vec::with_capacity(num_snapshots);
        for _ in 0..num_snapshots {
            let t = codec::read_u64(r)?;
            let samples = codec::read_u64(r)?;
            let values = codec::read_f64_vec(r, p)?;
            snapshots.push(ExactSnapshot {
                t,
                matrix: ExactMatrix::from_parts(dim, values, estimand, samples),
            });
        }
        Ok(Self {
            indexer: PairIndexer::new(dim),
            estimand,
            sum,
            sum_sq,
            cross,
            dense_scratch: vec![0.0; d],
            n,
            checkpoints,
            next_checkpoint,
            snapshots,
        })
    }

    /// The exact cumulative matrix over everything pushed so far.
    ///
    /// # Panics
    /// Panics when no samples have been pushed.
    pub fn current_matrix(&self) -> ExactMatrix {
        assert!(self.n > 0, "cannot compute an exact matrix of nothing");
        let d = self.dense_scratch.len();
        let n = self.n as f64;
        let mean: Vec<f64> = self.sum.iter().map(|s| s / n).collect();
        let var: Vec<f64> = self
            .sum_sq
            .iter()
            .zip(&mean)
            .map(|(ss, m)| (ss / n - m * m).max(0.0))
            .collect();
        let mut values = vec![0.0f64; self.cross.len()];
        for a in 0..d {
            for b in (a + 1)..d {
                let key = self.indexer.index(a as u64, b as u64) as usize;
                let cov = self.cross[key] / n - mean[a] * mean[b];
                values[key] = match self.estimand {
                    EstimandKind::Covariance => cov,
                    EstimandKind::Correlation => {
                        let denom = (var[a] * var[b]).sqrt();
                        if denom > 0.0 {
                            cov / denom
                        } else {
                            0.0
                        }
                    }
                };
            }
        }
        ExactMatrix::from_parts(self.dim(), values, self.estimand, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_core::Sample;

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        // Deterministic, slightly structured samples (feature 1 tracks
        // feature 0).
        (0..n)
            .map(|i| {
                let x = ((i as u64 ^ seed).wrapping_mul(0x9E37_79B9) % 17) as f64 / 8.0 - 1.0;
                let y = 0.8 * x + ((i % 5) as f64 - 2.0) * 0.1;
                let z = ((i % 7) as f64 - 3.0) * 0.3;
                Sample::dense(vec![x, y, z])
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_at_every_checkpoint() {
        for estimand in [EstimandKind::Covariance, EstimandKind::Correlation] {
            let all = samples(60, 3);
            let mut oracle = StreamingExact::new(3, estimand, vec![10, 25, 60]);
            for s in &all {
                oracle.push(s);
            }
            assert_eq!(oracle.sample_count(), 60);
            assert_eq!(oracle.snapshots().len(), 3);
            for snap in oracle.snapshots() {
                let batch = ExactMatrix::from_samples(&all[..snap.t as usize], estimand);
                assert_eq!(snap.matrix.num_pairs(), batch.num_pairs());
                for key in 0..batch.num_pairs() {
                    let (a, b) = (snap.matrix.value_by_key(key), batch.value_by_key(key));
                    assert!(
                        (a - b).abs() < 1e-12,
                        "{estimand:?} t={} key={key}: streaming {a} vs batch {b}",
                        snap.t
                    );
                }
            }
        }
    }

    #[test]
    fn current_matrix_reflects_the_prefix() {
        let all = samples(30, 9);
        let mut oracle = StreamingExact::new(3, EstimandKind::Covariance, vec![]);
        for s in &all[..20] {
            oracle.push(s);
        }
        let batch = ExactMatrix::from_samples(&all[..20], EstimandKind::Covariance);
        let streaming = oracle.current_matrix();
        for key in 0..batch.num_pairs() {
            assert!((streaming.value_by_key(key) - batch.value_by_key(key)).abs() < 1e-12);
        }
        assert_eq!(streaming.sample_count(), 20);
    }

    #[test]
    fn sparse_and_dense_pushes_agree() {
        let dense = [
            Sample::dense(vec![1.0, 0.0, 3.0, 0.0]),
            Sample::dense(vec![0.0, 2.0, 0.0, 1.0]),
            Sample::dense(vec![2.0, 1.0, 3.0, 0.0]),
        ];
        let sparse = [
            Sample::sparse(4, vec![(0, 1.0), (2, 3.0)]),
            Sample::sparse(4, vec![(1, 2.0), (3, 1.0)]),
            Sample::sparse(4, vec![(0, 2.0), (1, 1.0), (2, 3.0)]),
        ];
        let mut od = StreamingExact::new(4, EstimandKind::Covariance, vec![3]);
        let mut os = StreamingExact::new(4, EstimandKind::Covariance, vec![3]);
        for (a, b) in dense.iter().zip(&sparse) {
            od.push(a);
            os.push(b);
        }
        let (ma, mb) = (&od.snapshots()[0].matrix, &os.snapshots()[0].matrix);
        for key in 0..ma.num_pairs() {
            assert!((ma.value_by_key(key) - mb.value_by_key(key)).abs() < 1e-12);
        }
    }

    #[test]
    fn unreached_checkpoints_produce_no_snapshots() {
        let mut oracle = StreamingExact::new(3, EstimandKind::Covariance, vec![5, 100]);
        for s in samples(10, 1) {
            oracle.push(&s);
        }
        assert_eq!(oracle.snapshots().len(), 1);
        assert_eq!(oracle.snapshots()[0].t, 5);
        assert_eq!(oracle.checkpoints(), &[5, 100]);
    }

    #[test]
    fn saved_oracle_resumes_bit_identically() {
        let all = samples(60, 11);
        let mut uninterrupted = StreamingExact::new(3, EstimandKind::Correlation, vec![10, 40, 55]);
        let mut front = StreamingExact::new(3, EstimandKind::Correlation, vec![10, 40, 55]);
        for s in &all[..25] {
            uninterrupted.push(s);
            front.push(s);
        }
        let mut bytes = Vec::new();
        front.save(&mut bytes).unwrap();
        let mut resumed = StreamingExact::restore(&mut bytes.as_slice()).unwrap();
        for s in &all[25..] {
            uninterrupted.push(s);
            resumed.push(s);
        }
        assert_eq!(resumed.sample_count(), uninterrupted.sample_count());
        assert_eq!(resumed.checkpoints(), uninterrupted.checkpoints());
        assert_eq!(resumed.snapshots().len(), uninterrupted.snapshots().len());
        for (a, b) in resumed.snapshots().iter().zip(uninterrupted.snapshots()) {
            assert_eq!(a.t, b.t);
            for key in 0..a.matrix.num_pairs() {
                assert_eq!(
                    a.matrix.value_by_key(key).to_bits(),
                    b.matrix.value_by_key(key).to_bits()
                );
            }
        }
        let (ma, mb) = (resumed.current_matrix(), uninterrupted.current_matrix());
        for key in 0..ma.num_pairs() {
            assert_eq!(
                ma.value_by_key(key).to_bits(),
                mb.value_by_key(key).to_bits()
            );
        }
    }

    #[test]
    fn truncated_or_corrupt_oracle_bytes_never_panic() {
        let mut oracle = StreamingExact::new(3, EstimandKind::Covariance, vec![5]);
        for s in samples(8, 4) {
            oracle.push(&s);
        }
        let mut bytes = Vec::new();
        oracle.save(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                StreamingExact::restore(&mut &bytes[..cut]),
                Err(ascs_core::CodecError::Truncated)
            ));
        }
        let mut bad_estimand = bytes.clone();
        bad_estimand[15] = 9; // header (7) + dim (8) + estimand byte
        assert!(matches!(
            StreamingExact::restore(&mut bad_estimand.as_slice()),
            Err(ascs_core::CodecError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_checkpoints_are_rejected() {
        StreamingExact::new(3, EstimandKind::Covariance, vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "positive stream times")]
    fn zero_checkpoint_is_rejected() {
        StreamingExact::new(3, EstimandKind::Covariance, vec![0, 10]);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_oracle_has_no_matrix() {
        StreamingExact::new(3, EstimandKind::Covariance, vec![]).current_matrix();
    }
}
