//! Exact covariance / correlation matrices for moderate dimensionality.
//!
//! The paper's rigorous evaluation restricts itself to 1000 features so the
//! exact empirical correlation matrix (≈ 500k unique entries) can be
//! computed and used as ground truth. [`ExactMatrix`] does exactly that
//! with a single pass of Welford-style accumulators per pair.

use ascs_core::{num_pairs, EstimandKind, PairIndexer, Sample};
use ascs_numerics::percentile;

/// The exact upper-triangular covariance or correlation matrix of a sample
/// collection, stored as a flat vector indexed by the linear pair key.
#[derive(Debug, Clone)]
pub struct ExactMatrix {
    indexer: PairIndexer,
    values: Vec<f64>,
    estimand: EstimandKind,
    samples: u64,
}

impl ExactMatrix {
    /// Computes the exact matrix from a sample collection.
    ///
    /// Complexity is `O(n · d²)`; intended for `d` up to a few thousand.
    ///
    /// # Panics
    /// Panics if the collection is empty, dimensionalities disagree, or `d`
    /// is large enough that the dense pair storage would not fit in memory.
    pub fn from_samples(samples: &[Sample], estimand: EstimandKind) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot compute an exact matrix of nothing"
        );
        let dim = samples[0].dim();
        assert!(dim >= 2, "need at least two features");
        assert!(
            dim <= 20_000,
            "dense exact matrix for d = {dim} would need more than 1.6 GB; \
             restrict the feature set first (the paper uses 1000 features)"
        );
        let p = num_pairs(dim) as usize;
        let n = samples.len() as f64;

        // Single pass: accumulate per-feature sums and per-pair product sums.
        let d = dim as usize;
        let mut sum = vec![0.0f64; d];
        let mut sum_sq = vec![0.0f64; d];
        let mut cross = vec![0.0f64; p];
        let indexer = PairIndexer::new(dim);

        let mut dense_scratch = vec![0.0f64; d];
        for sample in samples {
            assert_eq!(sample.dim(), dim, "inconsistent sample dimensionality");
            // Materialise the sample densely once (cheap at d ≤ 20k).
            for v in dense_scratch.iter_mut() {
                *v = 0.0;
            }
            for (i, v) in sample.nonzeros() {
                dense_scratch[i as usize] = v;
            }
            for a in 0..d {
                let va = dense_scratch[a];
                sum[a] += va;
                sum_sq[a] += va * va;
                if va == 0.0 {
                    continue;
                }
                // Only pairs whose first coordinate is non-zero can change;
                // the inner loop still has to visit non-zero b's only.
                for b in (a + 1)..d {
                    let vb = dense_scratch[b];
                    if vb != 0.0 {
                        cross[indexer.index(a as u64, b as u64) as usize] += va * vb;
                    }
                }
            }
        }

        let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();
        let var: Vec<f64> = sum_sq
            .iter()
            .zip(mean.iter())
            .map(|(ss, m)| (ss / n - m * m).max(0.0))
            .collect();

        let mut values = vec![0.0f64; p];
        for a in 0..d {
            for b in (a + 1)..d {
                let key = indexer.index(a as u64, b as u64) as usize;
                let cov = cross[key] / n - mean[a] * mean[b];
                values[key] = match estimand {
                    EstimandKind::Covariance => cov,
                    EstimandKind::Correlation => {
                        let denom = (var[a] * var[b]).sqrt();
                        if denom > 0.0 {
                            cov / denom
                        } else {
                            0.0
                        }
                    }
                };
            }
        }

        Self {
            indexer,
            values,
            estimand,
            samples: samples.len() as u64,
        }
    }

    /// Assembles a matrix from precomputed values — the constructor the
    /// streaming oracle ([`crate::oracle::StreamingExact`]) uses to emit
    /// checkpoint snapshots without re-walking the sample prefix.
    pub(crate) fn from_parts(
        dim: u64,
        values: Vec<f64>,
        estimand: EstimandKind,
        samples: u64,
    ) -> Self {
        let indexer = PairIndexer::new(dim);
        assert_eq!(
            values.len() as u64,
            num_pairs(dim),
            "value vector does not cover the pair universe"
        );
        Self {
            indexer,
            values,
            estimand,
            samples,
        }
    }

    /// What the stored values are (covariance or correlation).
    pub fn estimand(&self) -> EstimandKind {
        self.estimand
    }

    /// Number of samples the matrix was computed from.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> u64 {
        self.indexer.dim()
    }

    /// Number of unique pairs `p`.
    pub fn num_pairs(&self) -> u64 {
        self.values.len() as u64
    }

    /// Exact value for the pair `(a, b)`.
    pub fn value(&self, a: u64, b: u64) -> f64 {
        self.values[self.indexer.index(a, b) as usize]
    }

    /// Exact value for a linear pair key.
    pub fn value_by_key(&self, key: u64) -> f64 {
        self.values[key as usize]
    }

    /// The flat upper-triangular value vector (indexed by pair key).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Keys of the `k` pairs with the largest absolute exact value, sorted
    /// descending by |value| (ties broken by key for determinism).
    pub fn top_keys_by_magnitude(&self, k: usize) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..self.values.len() as u64).collect();
        keys.sort_unstable_by(|&x, &y| {
            self.values[y as usize]
                .abs()
                .total_cmp(&self.values[x as usize].abs())
                .then(x.cmp(&y))
        });
        keys.truncate(k);
        keys
    }

    /// The keys whose absolute value is at least `threshold` — the signal
    /// set induced by a magnitude cut.
    pub fn signal_keys_above(&self, threshold: f64) -> Vec<u64> {
        (0..self.values.len() as u64)
            .filter(|&k| self.values[k as usize].abs() >= threshold)
            .collect()
    }

    /// The signal set defined as the top `alpha · p` pairs by magnitude —
    /// the definition Section 8.1 uses when the exact matrix is available.
    pub fn signal_keys_top_alpha(&self, alpha: f64) -> Vec<u64> {
        let count = ((self.values.len() as f64) * alpha.clamp(0.0, 1.0)).round() as usize;
        self.top_keys_by_magnitude(count)
    }

    /// The `(1 − alpha)` percentile of the absolute values — the signal
    /// strength `u` of Section 8.1.
    pub fn signal_strength(&self, alpha: f64) -> f64 {
        let abs: Vec<f64> = self.values.iter().map(|v| v.abs()).collect();
        percentile(&abs, (1.0 - alpha.clamp(0.0, 1.0)) * 100.0).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_core::Sample;

    fn toy_samples() -> Vec<Sample> {
        // Feature 1 = 2 * feature 0; feature 2 independent-ish pattern.
        vec![
            Sample::dense(vec![1.0, 2.0, 5.0]),
            Sample::dense(vec![2.0, 4.0, -1.0]),
            Sample::dense(vec![3.0, 6.0, 4.0]),
            Sample::dense(vec![4.0, 8.0, 0.0]),
        ]
    }

    #[test]
    fn covariance_matches_hand_computation() {
        let m = ExactMatrix::from_samples(&toy_samples(), EstimandKind::Covariance);
        // Feature 0: values 1..4, mean 2.5, population var 1.25.
        // Cov(0, 1) = 2 * Var(0) = 2.5.
        assert!((m.value(0, 1) - 2.5).abs() < 1e-12);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.num_pairs(), 3);
        assert_eq!(m.sample_count(), 4);
    }

    #[test]
    fn correlation_of_linearly_dependent_features_is_one() {
        let m = ExactMatrix::from_samples(&toy_samples(), EstimandKind::Correlation);
        assert!((m.value(0, 1) - 1.0).abs() < 1e-12);
        assert!(m.value(0, 2).abs() < 1.0);
    }

    #[test]
    fn value_by_key_matches_pair_lookup() {
        let m = ExactMatrix::from_samples(&toy_samples(), EstimandKind::Correlation);
        let indexer = PairIndexer::new(3);
        for a in 0..3u64 {
            for b in (a + 1)..3u64 {
                assert_eq!(m.value(a, b), m.value_by_key(indexer.index(a, b)));
            }
        }
    }

    #[test]
    fn sparse_and_dense_samples_agree() {
        let dense = vec![
            Sample::dense(vec![1.0, 0.0, 3.0, 0.0]),
            Sample::dense(vec![0.0, 2.0, 0.0, 1.0]),
            Sample::dense(vec![2.0, 1.0, 3.0, 0.0]),
        ];
        let sparse = vec![
            Sample::sparse(4, vec![(0, 1.0), (2, 3.0)]),
            Sample::sparse(4, vec![(1, 2.0), (3, 1.0)]),
            Sample::sparse(4, vec![(0, 2.0), (1, 1.0), (2, 3.0)]),
        ];
        let md = ExactMatrix::from_samples(&dense, EstimandKind::Covariance);
        let ms = ExactMatrix::from_samples(&sparse, EstimandKind::Covariance);
        for key in 0..md.num_pairs() {
            assert!((md.value_by_key(key) - ms.value_by_key(key)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_variance_feature_has_zero_correlation() {
        let samples = vec![
            Sample::dense(vec![5.0, 1.0]),
            Sample::dense(vec![5.0, 2.0]),
            Sample::dense(vec![5.0, 3.0]),
        ];
        let m = ExactMatrix::from_samples(&samples, EstimandKind::Correlation);
        assert_eq!(m.value(0, 1), 0.0);
    }

    #[test]
    fn top_keys_are_sorted_by_magnitude() {
        let samples = toy_samples();
        let m = ExactMatrix::from_samples(&samples, EstimandKind::Correlation);
        let top = m.top_keys_by_magnitude(3);
        assert_eq!(top.len(), 3);
        let vals: Vec<f64> = top.iter().map(|&k| m.value_by_key(k).abs()).collect();
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        // Top-1 must be the perfectly correlated pair (0, 1) = key 0.
        assert_eq!(top[0], 0);
    }

    #[test]
    fn signal_selection_by_threshold_and_alpha() {
        let m = ExactMatrix::from_samples(&toy_samples(), EstimandKind::Correlation);
        let strong = m.signal_keys_above(0.99);
        assert_eq!(strong, vec![0]);
        let top_third = m.signal_keys_top_alpha(1.0 / 3.0);
        assert_eq!(top_third.len(), 1);
        assert_eq!(top_third[0], 0);
        let u = m.signal_strength(1.0 / 3.0);
        assert!(u > 0.5, "u = {u}");
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_sample_set_panics() {
        let _ = ExactMatrix::from_samples(&[], EstimandKind::Covariance);
    }

    #[test]
    #[should_panic(expected = "inconsistent sample dimensionality")]
    fn mismatched_dimensions_panic() {
        let samples = vec![Sample::dense(vec![1.0, 2.0]), Sample::dense(vec![1.0])];
        let _ = ExactMatrix::from_samples(&samples, EstimandKind::Covariance);
    }
}
