//! Evaluation metrics of Section 3: mean true value of the reported top
//! set, and the (maximum) F1 score of signal identification.

use std::collections::HashSet;

/// Mean of the true (ground-truth) values of the `k` pairs an algorithm
/// reported as its top set.
///
/// * `reported` — pair keys ordered by the algorithm's estimate, best
///   first (e.g. the output of `CovarianceEstimator::top_pairs`);
/// * `true_value` — lookup of the exact value for a key (usually the
///   absolute exact correlation);
/// * `k` — how many of the reported pairs to score (Table 2 uses 1000,
///   Table 4 uses fractions of `α·p`).
///
/// Returns `None` when nothing was reported.
pub fn mean_true_value_of_top(
    reported: &[u64],
    mut true_value: impl FnMut(u64) -> f64,
    k: usize,
) -> Option<f64> {
    let take = k.min(reported.len());
    if take == 0 {
        return None;
    }
    let sum: f64 = reported[..take].iter().map(|&key| true_value(key)).sum();
    Some(sum / take as f64)
}

/// One point of a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrCurvePoint {
    /// Number of reported pairs at this point (the cut-off rank).
    pub reported: usize,
    /// Precision among the reported pairs.
    pub precision: f64,
    /// Recall of the true signal set.
    pub recall: f64,
    /// F1 score at this cut-off.
    pub f1: f64,
}

/// Precision/recall/F1 as the report-set size sweeps from 1 to
/// `ranked.len()`.
///
/// * `ranked` — pair keys ordered by the algorithm's estimate, best first;
/// * `signal_keys` — the ground-truth signal set.
///
/// Returns an empty vector when either input is empty.
pub fn precision_recall_curve(ranked: &[u64], signal_keys: &HashSet<u64>) -> Vec<PrCurvePoint> {
    if ranked.is_empty() || signal_keys.is_empty() {
        return Vec::new();
    }
    let total_signals = signal_keys.len() as f64;
    let mut hits = 0usize;
    let mut out = Vec::with_capacity(ranked.len());
    for (i, key) in ranked.iter().enumerate() {
        if signal_keys.contains(key) {
            hits += 1;
        }
        let reported = i + 1;
        let precision = hits as f64 / reported as f64;
        let recall = hits as f64 / total_signals;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        out.push(PrCurvePoint {
            reported,
            precision,
            recall,
            f1,
        });
    }
    out
}

/// The maximum F1 score over all report-set sizes — the y-axis of Figure 6.
///
/// Returns 0 when either input is empty.
pub fn max_f1_score(ranked: &[u64], signal_keys: &HashSet<u64>) -> f64 {
    precision_recall_curve(ranked, signal_keys)
        .iter()
        .map(|p| p.f1)
        .fold(0.0, f64::max)
}

/// F1 score at a fixed report-set size `k` (used when the paper fixes the
/// number of reported pairs, e.g. "top 500 signal correlations").
pub fn f1_at_k(ranked: &[u64], signal_keys: &HashSet<u64>, k: usize) -> f64 {
    let curve = precision_recall_curve(ranked, signal_keys);
    if curve.is_empty() || k == 0 {
        return 0.0;
    }
    let idx = k.min(curve.len()) - 1;
    curve[idx].f1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_true_value_scores_the_prefix() {
        let reported = vec![10, 20, 30, 40];
        let truth = |k: u64| match k {
            10 => 0.9,
            20 => 0.8,
            30 => 0.1,
            _ => 0.0,
        };
        let top2 = mean_true_value_of_top(&reported, truth, 2).unwrap();
        assert!((top2 - 0.85).abs() < 1e-12);
        let all = mean_true_value_of_top(&reported, truth, 10).unwrap();
        assert!((all - 0.45).abs() < 1e-12);
        assert_eq!(mean_true_value_of_top(&[], truth, 3), None);
    }

    #[test]
    fn perfect_ranking_reaches_f1_of_one() {
        let signals: HashSet<u64> = [1, 2, 3].into_iter().collect();
        let ranked = vec![2, 3, 1, 7, 8, 9];
        let best = max_f1_score(&ranked, &signals);
        assert!((best - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_ranking_scores_low() {
        let signals: HashSet<u64> = (0..10).collect();
        let ranked: Vec<u64> = (100..200).collect(); // no signal ever reported
        assert_eq!(max_f1_score(&ranked, &signals), 0.0);
    }

    #[test]
    fn interleaved_ranking_has_intermediate_f1() {
        let signals: HashSet<u64> = [1, 2, 3, 4].into_iter().collect();
        let ranked = vec![1, 100, 2, 101, 3, 102, 4];
        let best = max_f1_score(&ranked, &signals);
        assert!(best > 0.5 && best < 1.0, "best = {best}");
    }

    #[test]
    fn curve_recall_is_monotone_and_ends_at_total_recall() {
        let signals: HashSet<u64> = [5, 6, 7].into_iter().collect();
        let ranked = vec![5, 1, 6, 2, 7, 3];
        let curve = precision_recall_curve(&ranked, &signals);
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
        // Precision at the first point is 1 (first reported key is a signal).
        assert_eq!(curve[0].precision, 1.0);
    }

    #[test]
    fn empty_inputs_yield_empty_curve_and_zero_f1() {
        let signals: HashSet<u64> = [1].into_iter().collect();
        assert!(precision_recall_curve(&[], &signals).is_empty());
        assert_eq!(max_f1_score(&[], &signals), 0.0);
        let empty: HashSet<u64> = HashSet::new();
        assert_eq!(max_f1_score(&[1, 2], &empty), 0.0);
    }

    #[test]
    fn f1_at_k_matches_curve() {
        let signals: HashSet<u64> = [1, 2].into_iter().collect();
        let ranked = vec![1, 9, 2, 8];
        let curve = precision_recall_curve(&ranked, &signals);
        assert_eq!(f1_at_k(&ranked, &signals, 3), curve[2].f1);
        // k beyond the ranking length clamps to the last point.
        assert_eq!(f1_at_k(&ranked, &signals, 50), curve[3].f1);
        assert_eq!(f1_at_k(&ranked, &signals, 0), 0.0);
    }

    #[test]
    fn max_f1_is_at_least_f1_at_any_k() {
        let signals: HashSet<u64> = [2, 4, 6, 8].into_iter().collect();
        let ranked = vec![2, 3, 4, 5, 6, 7, 8, 9];
        let best = max_f1_score(&ranked, &signals);
        for k in 1..=ranked.len() {
            assert!(best >= f1_at_k(&ranked, &signals, k) - 1e-12);
        }
    }
}
