//! Precomputed hash plans: amortising hashing across an entire stream.
//!
//! The ASCS ingestion loop offers `d(d−1)/2` pair updates per sample, and
//! for a fixed feature dimension those are the *same* pair keys every
//! sample. Hashing each key once per update (the PR 2 fused discipline) is
//! therefore still `K` bucket hashes + `K` sign hashes of pure recomputation
//! per update. A [`HashPlan`] removes that recomputation entirely: all of a
//! key set's `(bucket, sign)` locations are computed **once** — in parallel
//! for large sets — into a contiguous structure-of-arrays arena, and every
//! subsequent sample (and every query sweep) replays plan entries instead of
//! hashing.
//!
//! The arena layout is slot-major: one plan *slot* owns `K` consecutive
//! `u32` bucket columns plus one packed sign bitmask, 4·K + 4 bytes per
//! slot. Ingestion walks slots in emission order, so plan reads are a pure
//! sequential stream the hardware prefetcher hides completely; the only
//! remaining irregular accesses are the sketch-table buckets themselves,
//! which the plan-driven executors in `ascs-count-sketch` block and
//! look-ahead over (see `CountSketch::estimate_many`).

use crate::family::{HashFamily, RowLocations, MAX_ROWS};

/// Plan sizes at or above this many slots are built on multiple scoped
/// threads (when the machine has them). Below it the spawn overhead exceeds
/// the hashing work.
const PARALLEL_BUILD_THRESHOLD: usize = 1 << 16;

/// A precomputed, reusable table of every row's `(bucket, sign)` for a key
/// set, laid out as a contiguous structure-of-arrays arena.
///
/// Slots are positions `0..len` in the order the keys were supplied; for the
/// dense pair universe of the ASCS estimator (`keys = 0..p`) the slot **is**
/// the key, so resolving an update to its plan entry is free.
///
/// ```
/// use ascs_sketch_hash::{HashFamily, HashPlan};
/// let family = HashFamily::new(5, 1 << 10, 42);
/// let plan = HashPlan::build_dense(&family, 1000);
/// assert_eq!(plan.len(), 1000);
/// for slot in 0..1000 {
///     assert_eq!(plan.locations(slot), family.locate_all(slot as u64));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashPlan {
    rows: usize,
    range: usize,
    seed: u64,
    len: usize,
    /// Slot-major bucket arena: `buckets[slot * rows + row]`.
    buckets: Vec<u32>,
    /// One packed sign bitmask per slot (bit `r` set ⇔ row `r` is `−1.0`).
    sign_masks: Vec<u32>,
}

impl HashPlan {
    /// Builds a plan for the dense key set `0..len` — the form the ASCS
    /// estimator uses, where linear pair keys are their own slots. Large
    /// plans are hashed on multiple threads.
    ///
    /// # Panics
    /// Panics if the family has more than 32 rows (the sign bitmask width)
    /// or more than `u32::MAX` buckets per row.
    pub fn build_dense(family: &HashFamily, len: usize) -> Self {
        Self::build_with(family, len, |slot| slot as u64)
    }

    /// Builds a plan for an explicit key set; slot `i` holds the locations
    /// of `keys[i]`.
    ///
    /// # Panics
    /// See [`HashPlan::build_dense`].
    pub fn build_from_keys(family: &HashFamily, keys: &[u64]) -> Self {
        Self::build_with(family, keys.len(), |slot| keys[slot])
    }

    fn build_with(family: &HashFamily, len: usize, key_of: impl Fn(usize) -> u64 + Sync) -> Self {
        let rows = family.rows();
        assert!(
            rows <= 32,
            "hash plans support at most 32 rows (sign bitmask width), family has {rows}"
        );
        assert!(
            family.range() <= u32::MAX as usize,
            "hash plans support at most 2^32 buckets per row"
        );
        let mut buckets = vec![0u32; len * rows];
        let mut sign_masks = vec![0u32; len];

        let fill = |first_slot: usize,
                    bucket_chunk: &mut [u32],
                    mask_chunk: &mut [u32],
                    family: &HashFamily| {
            for (i, mask) in mask_chunk.iter_mut().enumerate() {
                let key = key_of(first_slot + i);
                let mut m = 0u32;
                for (row, hasher) in family.row_hashers().iter().enumerate() {
                    bucket_chunk[i * rows + row] = hasher.bucket(key, family.range()) as u32;
                    m |= (hasher.sign_bit(key) as u32) << row;
                }
                *mask = m;
            }
        };

        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        if len >= PARALLEL_BUILD_THRESHOLD && threads > 1 {
            let chunk = len.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, (bucket_chunk, mask_chunk)) in buckets
                    .chunks_mut(chunk * rows)
                    .zip(sign_masks.chunks_mut(chunk))
                    .enumerate()
                {
                    let fill = &fill;
                    scope.spawn(move || fill(t * chunk, bucket_chunk, mask_chunk, family));
                }
            });
        } else {
            fill(0, &mut buckets, &mut sign_masks, family);
        }

        Self {
            rows,
            range: family.range(),
            seed: family.seed(),
            len,
            buckets,
            sign_masks,
        }
    }

    /// Number of slots (keys) covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan covers no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows `K` per slot.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row `R` of the family the plan was derived from.
    #[inline]
    pub fn range(&self) -> usize {
        self.range
    }

    /// Seed of the family the plan was derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan was built from a family with this geometry and
    /// seed — the compatibility check plan-driven sketch executors assert.
    #[inline]
    pub fn matches(&self, family: &HashFamily) -> bool {
        self.rows == family.rows() && self.range == family.range() && self.seed == family.seed()
    }

    /// Memory footprint of the arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.buckets.len() * 4 + self.sign_masks.len() * 4
    }

    /// Bucket of `slot` in `row`.
    #[inline]
    pub fn bucket(&self, slot: usize, row: usize) -> usize {
        self.buckets[slot * self.rows + row] as usize
    }

    /// Packed sign bitmask of `slot`.
    #[inline]
    pub fn sign_mask(&self, slot: usize) -> u32 {
        self.sign_masks[slot]
    }

    /// One slot's arena entry: its `K` bucket columns and its sign bitmask.
    /// The slice borrow lets hot loops iterate without bounds checks.
    #[inline]
    pub fn entry(&self, slot: usize) -> (&[u32], u32) {
        let start = slot * self.rows;
        (
            &self.buckets[start..start + self.rows],
            self.sign_masks[slot],
        )
    }

    /// Reconstructs the stack-format [`RowLocations`] of `slot`, for interop
    /// with the per-key fused APIs.
    ///
    /// # Panics
    /// Panics if the plan has more than [`MAX_ROWS`] rows (the stack format
    /// is capped; the arena itself is not).
    #[inline]
    pub fn locations(&self, slot: usize) -> RowLocations {
        assert!(
            self.rows <= MAX_ROWS,
            "RowLocations supports at most {MAX_ROWS} rows, plan has {}",
            self.rows
        );
        let (cols, mask) = self.entry(slot);
        let mut buckets = [0u32; MAX_ROWS];
        buckets[..self.rows].copy_from_slice(cols);
        RowLocations::from_raw(self.rows as u32, mask, buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_plan_matches_per_key_hashing() {
        let family = HashFamily::new(5, 513, 19);
        let plan = HashPlan::build_dense(&family, 2000);
        assert_eq!(plan.len(), 2000);
        assert!(!plan.is_empty());
        assert_eq!(plan.rows(), 5);
        assert_eq!(plan.range(), 513);
        assert_eq!(plan.seed(), family.seed());
        assert!(plan.matches(&family));
        for slot in 0..2000usize {
            let locs = family.locate_all(slot as u64);
            assert_eq!(plan.locations(slot), locs);
            assert_eq!(plan.sign_mask(slot), locs.sign_mask());
            let (cols, mask) = plan.entry(slot);
            assert_eq!(mask, locs.sign_mask());
            for (row, &b) in cols.iter().enumerate() {
                assert_eq!(b as usize, locs.bucket(row));
                assert_eq!(plan.bucket(slot, row), locs.bucket(row));
            }
        }
    }

    #[test]
    fn keyed_plan_maps_slots_to_supplied_keys() {
        let family = HashFamily::new(3, 64, 7);
        let keys = [5u64, 999, 0, 123_456_789];
        let plan = HashPlan::build_from_keys(&family, &keys);
        assert_eq!(plan.len(), 4);
        for (slot, &key) in keys.iter().enumerate() {
            assert_eq!(plan.locations(slot), family.locate_all(key));
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Above the parallel threshold the arena must be identical to the
        // sequential fill (the chunks partition the slot space exactly).
        let family = HashFamily::new(4, 1 << 12, 3);
        let n = PARALLEL_BUILD_THRESHOLD + 1234;
        let plan = HashPlan::build_dense(&family, n);
        for slot in (0..n).step_by(997) {
            assert_eq!(plan.locations(slot), family.locate_all(slot as u64));
        }
        assert_eq!(plan.locations(n - 1), family.locate_all(n as u64 - 1));
        assert_eq!(plan.arena_bytes(), n * 4 * 4 + n * 4);
    }

    #[test]
    fn mismatched_family_is_detected() {
        let family = HashFamily::new(5, 64, 1);
        let plan = HashPlan::build_dense(&family, 10);
        assert!(!plan.matches(&HashFamily::new(5, 64, 2)));
        assert!(!plan.matches(&HashFamily::new(4, 64, 1)));
        assert!(!plan.matches(&HashFamily::new(5, 128, 1)));
    }

    #[test]
    #[should_panic(expected = "at most 32 rows")]
    fn oversized_row_count_is_rejected() {
        let family = HashFamily::new(33, 8, 1);
        let _ = HashPlan::build_dense(&family, 4);
    }
}
