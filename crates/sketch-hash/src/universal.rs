//! 2-universal (pairwise independent) multiply-shift hashing.
//!
//! The theoretical analysis of count sketch (and of the collision terms in
//! Theorems 1–2 of the ASCS paper) only requires pairwise independence of
//! the bucket hash. [`MultiplyShiftHash`] implements the classic
//! Dietzfelbinger multiply-add-shift scheme, which is provably 2-universal
//! for power-of-two ranges; it is provided both as a drop-in alternative to
//! the mixer-based [`RowHasher`](crate::RowHasher) and as the reference
//! implementation against which the mixer family is empirically compared in
//! benchmarks.

use crate::mix::SplitMix64;

/// Multiply-add-shift hash `h(x) = ((a·x + b) >> (64 − ℓ))` onto a
/// power-of-two range `2^ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShiftHash {
    mult: u64,
    add: u64,
    shift: u32,
    range: usize,
}

impl MultiplyShiftHash {
    /// Creates a hash onto `[0, range)` where `range` must be a power of
    /// two. `seed` determines the (odd) multiplier and additive constant.
    ///
    /// # Panics
    /// Panics if `range` is zero or not a power of two.
    pub fn new(range: usize, seed: u64) -> Self {
        assert!(
            range.is_power_of_two(),
            "multiply-shift range must be a power of two"
        );
        let bits = range.trailing_zeros();
        let mut rng = SplitMix64::new(seed);
        Self {
            mult: rng.next_odd_u64(),
            add: rng.next_u64(),
            shift: 64 - bits,
            range,
        }
    }

    /// The output range.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Hashes `key` to a bucket.
    #[inline]
    pub fn bucket(&self, key: u64) -> usize {
        if self.range == 1 {
            return 0;
        }
        (self.mult.wrapping_mul(key).wrapping_add(self.add) >> self.shift) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_in_range_for_all_power_of_two_sizes() {
        for bits in 0..=16 {
            let range = 1usize << bits;
            let h = MultiplyShiftHash::new(range, 123 + bits as u64);
            for key in 0..1000u64 {
                assert!(h.bucket(key) < range, "bits={bits}");
            }
        }
    }

    #[test]
    fn range_of_one_maps_everything_to_zero() {
        let h = MultiplyShiftHash::new(1, 5);
        for key in 0..100u64 {
            assert_eq!(h.bucket(key), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_range_panics() {
        let _ = MultiplyShiftHash::new(12, 0);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = MultiplyShiftHash::new(256, 1);
        let b = MultiplyShiftHash::new(256, 1);
        let c = MultiplyShiftHash::new(256, 2);
        let va: Vec<usize> = (0..64).map(|k| a.bucket(k)).collect();
        let vb: Vec<usize> = (0..64).map(|k| b.bucket(k)).collect();
        let vc: Vec<usize> = (0..64).map(|k| c.bucket(k)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn empirical_collision_rate_matches_pairwise_independence() {
        // For a 2-universal family, P[h(x) = h(y)] ≤ 1/R for x ≠ y. Estimate
        // the collision probability over many seeds for one fixed pair.
        let range = 64;
        let mut collisions = 0u32;
        let trials = 20_000u32;
        for seed in 0..trials {
            let h = MultiplyShiftHash::new(range, u64::from(seed));
            if h.bucket(123_456) == h.bucket(987_654_321) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / f64::from(trials);
        assert!(
            rate < 2.0 / range as f64,
            "collision rate {rate} too high for 2-universality"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let range = 32;
        let h = MultiplyShiftHash::new(range, 99);
        let n = 32_000u64;
        let mut counts = vec![0u64; range];
        for key in 0..n {
            counts[h.bucket(key)] += 1;
        }
        let expected = n as f64 / range as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // df = 31; allow a generous margin (multiply-shift on sequential keys
        // is more structured than a full mixer but still well spread).
        assert!(chi2 < 200.0, "chi-square too high: {chi2}");
    }
}
