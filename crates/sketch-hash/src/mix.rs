//! 64-bit mixing primitives.
//!
//! Both mixers below are bijections on `u64` with strong avalanche
//! behaviour: flipping any single input bit flips roughly half of the output
//! bits. That property is what lets a single multiply-xor-shift chain stand
//! in for the "independent uniform hash functions" of the count-sketch
//! analysis at a cost of a few nanoseconds per item.

/// SplitMix64 output function (Steele, Lea & Flood; also used by Java's
/// `SplittableRandom`). A bijective finaliser with excellent avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MurmurHash3's 64-bit finaliser (`fmix64`). Another bijective avalanche
/// mixer, used here to decorrelate the sign hash from the bucket hash.
#[inline]
pub fn avalanche64(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^= z >> 33;
    z = z.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^= z >> 33;
    z
}

/// A tiny deterministic PRNG built on [`splitmix64`].
///
/// Used to derive per-row seeds and the odd multipliers of the
/// multiply-shift family. Not meant for statistical work — the workload
/// generators use `rand_chacha` instead — but ideal for cheap, reproducible
/// seed derivation inside the data structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next odd 64-bit value (multiply-shift hashing requires an
    /// odd multiplier).
    #[inline]
    pub fn next_odd_u64(&mut self) -> u64 {
        self.next_u64() | 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(12345), splitmix64(12345));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn splitmix64_known_vector() {
        // First output of SplitMix64 seeded with 0 (widely published vector).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn avalanche_flips_about_half_the_bits() {
        // For a sample of inputs and single-bit flips, the Hamming distance
        // between outputs should average near 32 bits.
        let mut total = 0u32;
        let mut trials = 0u32;
        for i in 0..64u64 {
            for bit in 0..64 {
                let a = splitmix64(i * 0x9E37_79B9);
                let b = splitmix64((i * 0x9E37_79B9) ^ (1 << bit));
                total += (a ^ b).count_ones();
                trials += 1;
            }
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (avg - 32.0).abs() < 2.0,
            "avalanche average Hamming distance was {avg}"
        );
    }

    #[test]
    fn murmur_avalanche_flips_about_half_the_bits() {
        let mut total = 0u32;
        let mut trials = 0u32;
        for i in 0..64u64 {
            for bit in 0..64 {
                let a = avalanche64(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
                let b = avalanche64(i.wrapping_mul(0x1234_5678_9ABC_DEF1) ^ (1 << bit));
                total += (a ^ b).count_ones();
                trials += 1;
            }
        }
        let avg = total as f64 / trials as f64;
        assert!((avg - 32.0).abs() < 2.0);
    }

    #[test]
    fn mixers_differ_from_each_other() {
        let mut same = 0;
        for i in 0..1000u64 {
            if splitmix64(i) == avalanche64(i) {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }

    #[test]
    fn prng_streams_from_different_seeds_differ() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn next_odd_is_odd() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(rng.next_odd_u64() & 1, 1);
        }
    }

    #[test]
    fn mixers_are_bijective_on_small_domain() {
        // Injectivity spot check: no collisions among 100k consecutive inputs.
        use std::collections::HashSet;
        let mut seen = HashSet::with_capacity(100_000);
        for i in 0..100_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }
}
