//! Versioned binary codec for sketch lifecycle state.
//!
//! Every serialized record starts with a fixed header — the 4-byte magic
//! [`MAGIC`], a little-endian [`VERSION`], and a one-byte record tag — so a
//! reader can reject foreign bytes, future formats and mismatched record
//! types *before* trusting any length field. Payloads are explicit
//! little-endian primitives (never raw struct dumps): integers via
//! `to_le_bytes`, floats via `f64::to_bits` so non-finite values (NaN,
//! ±inf) round-trip bit-exactly.
//!
//! Nested records (a count sketch inside an ASCS sketch inside a sharded
//! worker set) each carry their own header, which keeps every `restore`
//! self-describing and makes one-byte corruption detectable close to where
//! it lands. All length fields are validated against caps before any
//! allocation, and bulk float payloads are read in bounded chunks, so a
//! corrupt header cannot trigger a huge up-front allocation.
//!
//! Restore never panics on truncated, corrupt or version-bumped input — it
//! returns a typed [`CodecError`] instead.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::family::HashFamily;

/// Magic bytes opening every record header.
pub const MAGIC: [u8; 4] = *b"ASKC";

/// Current format version. Readers reject any other version with
/// [`CodecError::UnsupportedVersion`]; the policy is a bump on any layout
/// change, with no in-place migration (old checkpoints are re-ingested).
pub const VERSION: u16 = 1;

/// Record tag for [`crate::HashFamily`].
pub const TAG_HASH_FAMILY: u8 = 7;
/// Record tag for a count sketch table.
pub const TAG_COUNT_SKETCH: u8 = 1;
/// Record tag for a top-k tracker.
pub const TAG_TOP_K_TRACKER: u8 = 2;
/// Record tag for an ASCS sketch (gate state + nested sketch/tracker).
pub const TAG_ASCS_SKETCH: u8 = 3;
/// Record tag for a sharded ASCS worker set.
pub const TAG_SHARDED_ASCS: u8 = 4;
/// Record tag for a full covariance-estimator checkpoint.
pub const TAG_ESTIMATOR: u8 = 5;
/// Record tag for a streaming exact oracle.
pub const TAG_STREAMING_EXACT: u8 = 6;
/// Record tag for a stream context (per-feature running moments).
pub const TAG_STREAM_CONTEXT: u8 = 8;
/// Record tag for a durable-checkpoint manifest (the commit point of a
/// generation-numbered on-disk checkpoint).
pub const TAG_DURABLE_MANIFEST: u8 = 9;
/// Record tag for one write-ahead-log record (an accepted sample).
pub const TAG_WAL_RECORD: u8 = 10;
/// Record tag for a retired sliding-window segment (block index + nested
/// count-sketch record) — the spill format of the windowed backend.
pub const TAG_WINDOW_SEGMENT: u8 = 11;
/// Record tag for a full sliding-window sketch ring.
pub const TAG_WINDOWED_SKETCH: u8 = 12;
/// Record tag for an exponential-decay sketch (generation stack).
pub const TAG_DECAYED_SKETCH: u8 = 13;

/// Hash-family rows are capped on restore so a corrupt header cannot ask
/// for an absurd number of row hashers.
const MAX_FAMILY_ROWS: u64 = 1 << 16;
/// Bucket ranges beyond this are rejected as corrupt (the workspace never
/// goes near it; the real allocation guard is the table-word cap).
const MAX_FAMILY_RANGE: u64 = 1 << 40;

/// Typed error for every save/restore/merge failure. `restore` returns
/// this instead of panicking, whatever the input bytes look like.
#[derive(Debug)]
pub enum CodecError {
    /// An underlying I/O error (other than a short read).
    Io(io::Error),
    /// The input ended before the record did.
    Truncated,
    /// The first four bytes are not [`MAGIC`] — not a sketch record.
    BadMagic([u8; 4]),
    /// The record was written by a different format version.
    UnsupportedVersion(u16),
    /// The header tag does not match the record type being restored.
    WrongRecord {
        /// The tag the caller expected.
        expected: u8,
        /// The tag found in the header.
        found: u8,
    },
    /// A CRC-framed record's checksum does not match its payload — the
    /// bytes were torn or tampered with after being written.
    ChecksumMismatch {
        /// The checksum stored in the frame header.
        expected: u32,
        /// The checksum recomputed over the payload actually read.
        found: u32,
    },
    /// A payload field failed validation; the message names the field.
    Corrupt(&'static str),
    /// The record restored fine but cannot be merged into the receiver
    /// (mismatched geometry, seed or schedule).
    Incompatible(&'static str),
    /// The in-memory state cannot be checkpointed (e.g. a filter backend
    /// with no codec).
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(err) => write!(f, "i/o error: {err}"),
            CodecError::Truncated => write!(f, "input truncated mid-record"),
            CodecError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (reader speaks {VERSION})"
                )
            }
            CodecError::WrongRecord { expected, found } => {
                write!(
                    f,
                    "wrong record type: expected tag {expected}, found {found}"
                )
            }
            CodecError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expected:#010x}, payload hashes to {found:#010x}"
                )
            }
            CodecError::Corrupt(what) => write!(f, "corrupt record: {what}"),
            CodecError::Incompatible(what) => write!(f, "incompatible sketches: {what}"),
            CodecError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(err: io::Error) -> Self {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(err)
        }
    }
}

/// Writes the record header: magic, version, tag.
pub fn write_header<W: Write>(w: &mut W, tag: u8) -> Result<(), CodecError> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_u8(w, tag)
}

/// Reads and validates a record header against the expected tag.
pub fn read_header<R: Read>(r: &mut R, expected: u8) -> Result<(), CodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let found = read_u8(r)?;
    if found != expected {
        return Err(CodecError::WrongRecord { expected, found });
    }
    Ok(())
}

/// Writes one byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> Result<(), CodecError> {
    w.write_all(&[v]).map_err(CodecError::from)
}

/// Reads one byte.
pub fn read_u8<R: Read>(r: &mut R) -> Result<u8, CodecError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a little-endian `u16`.
pub fn write_u16<W: Write>(w: &mut W, v: u16) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::from)
}

/// Reads a little-endian `u16`.
pub fn read_u16<R: Read>(r: &mut R) -> Result<u16, CodecError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Writes a little-endian `u64`.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::from)
}

/// Reads a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, CodecError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f64` as its IEEE-754 bit pattern (round-trips NaN and ±inf).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), CodecError> {
    write_u64(w, v.to_bits())
}

/// Reads an `f64` from its IEEE-754 bit pattern.
pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, CodecError> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Writes a boolean as a single 0/1 byte.
pub fn write_bool<W: Write>(w: &mut W, v: bool) -> Result<(), CodecError> {
    write_u8(w, u8::from(v))
}

/// Reads a boolean; any byte other than 0 or 1 is corrupt.
pub fn read_bool<R: Read>(r: &mut R) -> Result<bool, CodecError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Corrupt("boolean flag is neither 0 nor 1")),
    }
}

/// Reads a `u64` length field that must fit in `usize` and stay at or
/// below `cap`; `what` names the field in the error.
pub fn read_len<R: Read>(r: &mut R, cap: u64, what: &'static str) -> Result<usize, CodecError> {
    let len = read_u64(r)?;
    if len > cap {
        return Err(CodecError::Corrupt(what));
    }
    usize::try_from(len).map_err(|_| CodecError::Corrupt(what))
}

/// How many floats travel per bulk-I/O chunk (32 KiB of bytes).
const F64_CHUNK: usize = 4096;

/// Writes a float slice as consecutive IEEE-754 bit patterns, chunked so
/// large tables do not go through one `write_all` call per value.
pub fn write_f64_slice<W: Write>(w: &mut W, values: &[f64]) -> Result<(), CodecError> {
    let mut buf = [0u8; 8 * F64_CHUNK];
    for chunk in values.chunks(F64_CHUNK) {
        for (i, v) in chunk.iter().enumerate() {
            buf[8 * i..8 * (i + 1)].copy_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&buf[..8 * chunk.len()])?;
    }
    Ok(())
}

/// Reads `len` floats written by [`write_f64_slice`]. The vector grows
/// chunk by chunk, so a corrupt length fails on [`CodecError::Truncated`]
/// long before it could force a giant allocation.
pub fn read_f64_vec<R: Read>(r: &mut R, len: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::with_capacity(len.min(F64_CHUNK));
    let mut buf = [0u8; 8 * F64_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(F64_CHUNK);
        r.read_exact(&mut buf[..8 * take])?;
        out.reserve(take);
        for i in 0..take {
            let mut bits = [0u8; 8];
            bits.copy_from_slice(&buf[8 * i..8 * (i + 1)]);
            out.push(f64::from_bits(u64::from_le_bytes(bits)));
        }
        remaining -= take;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// CRC-32 framing (write-ahead-log records)
// ---------------------------------------------------------------------

/// Lookup table for the reflected IEEE CRC-32 polynomial (0xEDB88320),
/// generated at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib/gzip polynomial) of `bytes`. Used to frame
/// write-ahead-log records so a torn or bit-flipped record is detected
/// before any of its payload is trusted.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Writes one length-prefixed, CRC32-framed record:
/// `[payload length: u32 LE][crc32(payload): u32 LE][payload]`.
///
/// # Errors
/// [`CodecError::Corrupt`] if the payload exceeds `u32::MAX` bytes, or any
/// I/O error from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), CodecError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| CodecError::Corrupt("frame payload exceeds u32::MAX bytes"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one record written by [`write_frame`]. Returns `Ok(None)` on a
/// clean end of input (EOF exactly at a frame boundary) — the normal end
/// of a fully flushed log.
///
/// # Errors
/// * [`CodecError::Truncated`] — the input ended inside a frame (a torn
///   tail after a crash);
/// * [`CodecError::Corrupt`] — the length prefix exceeds `cap` bytes;
/// * [`CodecError::ChecksumMismatch`] — the payload does not hash to the
///   stored CRC.
pub fn read_frame<R: Read>(r: &mut R, cap: u32) -> Result<Option<Vec<u8>>, CodecError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..]).map_err(CodecError::from)?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(CodecError::Truncated)
            };
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header);
    if len > cap {
        return Err(CodecError::Corrupt("frame length exceeds the record cap"));
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != expected {
        return Err(CodecError::ChecksumMismatch { expected, found });
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Durable filesystem abstraction
// ---------------------------------------------------------------------

/// A writable file handle that can be forced to stable storage. The
/// durability layer writes exclusively through this trait so tests can
/// inject torn writes, short writes, failed fsyncs and full disks.
pub trait DurableFile: Write + Send {
    /// Flushes file content (and metadata) to stable storage — `fsync`.
    fn sync(&mut self) -> io::Result<()>;
}

impl DurableFile for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_all()
    }
}

/// The filesystem operations the durability layer performs. Production
/// uses [`StdFs`]; the testkit's `FaultFs` wraps it with scripted fault
/// injection. Recovery reads also route through [`DurableFs::open_read`]
/// (default: plain `std::fs`), so a scripted crash point can fire *while*
/// the WAL is being replayed — corruption tests still flip real bytes on
/// disk.
pub trait DurableFs: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &std::path::Path) -> io::Result<Box<dyn DurableFile>>;
    /// Atomically renames `from` onto `to` (same directory).
    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &std::path::Path) -> io::Result<()>;
    /// Fsyncs a **directory**, making renames/creates/removes inside it
    /// durable. A rename alone only rewrites the in-memory directory
    /// entry; until the directory itself is synced, a power loss can
    /// resurrect the old name or lose the new one.
    fn sync_dir(&self, dir: &std::path::Path) -> io::Result<()>;
    /// Opens a file for reading. The default reads the real filesystem;
    /// fault-injecting implementations may count each read as an
    /// operation and die mid-file.
    fn open_read(&self, path: &std::path::Path) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }
}

/// The production [`DurableFs`]: plain `std::fs` operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl DurableFs for StdFs {
    fn create(&self, path: &std::path::Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &std::path::Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &std::path::Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }
}

/// Fsyncs the directory containing `path` (or `path` itself when it has no
/// parent). See [`DurableFs::sync_dir`] for why renames need this.
pub fn fsync_parent_dir(path: &std::path::Path) -> io::Result<()> {
    StdFs.sync_dir(parent_dir(path))
}

fn parent_dir(path: &std::path::Path) -> &std::path::Path {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir,
        _ => std::path::Path::new("."),
    }
}

/// Writes a checkpoint to `path` **atomically and durably**: the record is
/// serialized into a sibling `<path>.tmp`, flushed and fsynced, renamed
/// over the destination, and then the parent **directory** is fsynced —
/// a rename alone is not durable, since the directory entry itself lives
/// in a page that must reach stable storage. A crash (or a failing
/// `write` closure) at any point leaves either the previous checkpoint or
/// nothing at the final path — never a truncated record masquerading as
/// the latest checkpoint.
///
/// The closure receives a buffered writer and emits one codec record (or
/// several back to back); any error aborts the save, removes the temp file
/// (best effort) and leaves the destination untouched.
///
/// # Errors
/// Any [`CodecError`] the closure fails with, or [`CodecError::Io`] /
/// [`CodecError::Truncated`] from the filesystem operations themselves.
pub fn save_to_path<F>(path: impl AsRef<std::path::Path>, write: F) -> Result<(), CodecError>
where
    F: FnOnce(&mut io::BufWriter<Box<dyn DurableFile>>) -> Result<(), CodecError>,
{
    save_to_path_with(&StdFs, path, write)
}

/// [`save_to_path`] over an explicit [`DurableFs`] — the entry point the
/// durability layer and the fault-injection tests use. The operation
/// order is the commit protocol under test: create temp → write → fsync
/// file → rename → fsync directory.
///
/// # Errors
/// Same contract as [`save_to_path`].
pub fn save_to_path_with<F>(
    fs: &dyn DurableFs,
    path: impl AsRef<std::path::Path>,
    write: F,
) -> Result<(), CodecError>
where
    F: FnOnce(&mut io::BufWriter<Box<dyn DurableFile>>) -> Result<(), CodecError>,
{
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = fs.create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        w.get_mut().sync()?;
        drop(w);
        fs.rename(&tmp, path)?;
        fs.sync_dir(parent_dir(path))?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs.remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint written by [`save_to_path`] (or any codec record on
/// disk): opens `path` buffered and hands the reader to the closure. A
/// missing file surfaces as [`CodecError::Io`]; a torn or tampered record
/// surfaces as whatever typed error the closure's decoder returns.
///
/// # Errors
/// Any [`CodecError`] the closure fails with, or [`CodecError::Io`] when
/// the file cannot be opened.
pub fn load_from_path<T, F>(path: impl AsRef<std::path::Path>, read: F) -> Result<T, CodecError>
where
    F: FnOnce(&mut io::BufReader<std::fs::File>) -> Result<T, CodecError>,
{
    let file = std::fs::File::open(path.as_ref())?;
    read(&mut io::BufReader::new(file))
}

/// [`load_from_path`] over an explicit [`DurableFs`] — the entry point the
/// recovery path uses so scripted filesystem faults can fire while a
/// checkpoint or WAL segment is being *read*, not just written.
///
/// # Errors
/// Same contract as [`load_from_path`].
pub fn load_from_path_with<T, F>(
    fs: &dyn DurableFs,
    path: impl AsRef<std::path::Path>,
    read: F,
) -> Result<T, CodecError>
where
    F: FnOnce(&mut io::BufReader<Box<dyn Read + Send>>) -> Result<T, CodecError>,
{
    let file = fs.open_read(path.as_ref())?;
    read(&mut io::BufReader::new(file))
}

// ---------------------------------------------------------------------
// Fault-site registry
// ---------------------------------------------------------------------

/// Canonical fault-site names of the durable-filesystem layer. A chaos
/// harness registers these up front and requires every one to have fired
/// at least once across a run — proving the scripted faults actually
/// exercised their injection points instead of silently missing.
pub const FS_FAULT_SITES: &[&str] = &[
    SITE_FS_TORN_WRITE,
    SITE_FS_SHORT_WRITE,
    SITE_FS_FAIL_SYNC,
    SITE_FS_FAIL_DIR_SYNC,
    SITE_FS_ENOSPC,
    SITE_FS_CRASH,
];

/// A write that lands a prefix and then errors.
pub const SITE_FS_TORN_WRITE: &str = "fs.torn_write";
/// A write that accepts fewer bytes than offered.
pub const SITE_FS_SHORT_WRITE: &str = "fs.short_write";
/// A file fsync that fails.
pub const SITE_FS_FAIL_SYNC: &str = "fs.fail_sync";
/// A directory fsync that fails.
pub const SITE_FS_FAIL_DIR_SYNC: &str = "fs.fail_dir_sync";
/// A write rejected by an exhausted byte budget (`StorageFull`).
pub const SITE_FS_ENOSPC: &str = "fs.enospc";
/// The whole-filesystem crash point (including mid-recovery reads).
pub const SITE_FS_CRASH: &str = "fs.crash_at_op";

/// Thread-safe named counters over fault-injection sites: `register` a
/// site up front (count 0), `record` every time its fault fires, then
/// read the coverage map. Sites registered but never recorded are the
/// coverage holes [`FaultSiteRegistry::unfired`] reports.
#[derive(Debug, Default)]
pub struct FaultSiteRegistry {
    sites: std::sync::Mutex<std::collections::BTreeMap<&'static str, u64>>,
}

impl FaultSiteRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::BTreeMap<&'static str, u64>> {
        self.sites
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Declares a site (idempotent; keeps any existing count).
    pub fn register(&self, site: &'static str) {
        self.lock().entry(site).or_insert(0);
    }

    /// Counts one firing of `site`, registering it if needed.
    pub fn record(&self, site: &'static str) {
        *self.lock().entry(site).or_insert(0) += 1;
    }

    /// The full coverage map, sorted by site name.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        self.lock().iter().map(|(&s, &n)| (s, n)).collect()
    }

    /// Registered sites that never fired.
    pub fn unfired(&self) -> Vec<&'static str> {
        self.lock()
            .iter()
            .filter(|(_, &n)| n == 0)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Total firings across all sites.
    pub fn total_fired(&self) -> u64 {
        self.lock().values().sum()
    }
}

impl HashFamily {
    /// Serializes the family as `(rows, range, seed)` — every row hasher is
    /// a pure function of the seed, so nothing else needs to travel.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        write_header(w, TAG_HASH_FAMILY)?;
        write_u64(w, self.rows() as u64)?;
        write_u64(w, self.range() as u64)?;
        write_u64(w, self.seed())
    }

    /// Restores a family saved by [`HashFamily::save`], re-deriving the row
    /// hashers from the seed.
    pub fn restore<R: Read>(r: &mut R) -> Result<Self, CodecError> {
        read_header(r, TAG_HASH_FAMILY)?;
        let rows = read_u64(r)?;
        if rows == 0 || rows > MAX_FAMILY_ROWS {
            return Err(CodecError::Corrupt("hash family row count out of range"));
        }
        let range = read_u64(r)?;
        if range == 0 || range > MAX_FAMILY_RANGE {
            return Err(CodecError::Corrupt("hash family bucket range out of range"));
        }
        let seed = read_u64(r)?;
        Ok(HashFamily::new(rows as usize, range as usize, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_roundtrip_rederives_identical_hashers() {
        let family = HashFamily::new(5, 1 << 14, 0xDEAD_BEEF);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        let back = HashFamily::restore(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.rows(), family.rows());
        assert_eq!(back.range(), family.range());
        assert_eq!(back.seed(), family.seed());
        for (a, b) in family.row_hashers().iter().zip(back.row_hashers()) {
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(a.bucket(key, family.range()), b.bucket(key, back.range()));
                assert_eq!(a.sign(key), b.sign(key));
            }
        }
    }

    #[test]
    fn header_rejects_magic_version_and_tag_mismatches() {
        let family = HashFamily::new(3, 64, 9);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            HashFamily::restore(&mut bad_magic.as_slice()),
            Err(CodecError::BadMagic(_))
        ));

        let mut bumped = bytes.clone();
        bumped[4] = 2;
        assert!(matches!(
            HashFamily::restore(&mut bumped.as_slice()),
            Err(CodecError::UnsupportedVersion(2))
        ));

        let mut wrong_tag = bytes.clone();
        wrong_tag[6] = TAG_COUNT_SKETCH;
        assert!(matches!(
            HashFamily::restore(&mut wrong_tag.as_slice()),
            Err(CodecError::WrongRecord { .. })
        ));
    }

    #[test]
    fn truncated_input_is_reported_not_panicked() {
        let family = HashFamily::new(4, 128, 77);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            let err = HashFamily::restore(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, CodecError::Truncated));
        }
    }

    /// A unique scratch path under the system temp dir (no tempfile dep).
    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ascs-codec-test-{}-{tag}.ckpt", std::process::id()))
    }

    #[test]
    fn save_to_path_roundtrips_through_disk() {
        let path = scratch_path("roundtrip");
        let family = HashFamily::new(5, 1 << 12, 0xFEED);
        save_to_path(&path, |w| family.save(w)).unwrap();
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = load_from_path(&path, HashFamily::restore).unwrap();
        assert_eq!(back.seed(), family.seed());
        assert_eq!(back.rows(), family.rows());
        assert_eq!(back.range(), family.range());
        std::fs::remove_file(&path).unwrap();
    }

    /// A failing save — here a closure that writes half a record and then
    /// errors, simulating a crash mid-serialization — must leave the
    /// *previous* checkpoint in place and clean up its temp file.
    #[test]
    fn failed_save_preserves_the_previous_checkpoint() {
        let path = scratch_path("torn-save");
        let good = HashFamily::new(4, 256, 11);
        save_to_path(&path, |w| good.save(w)).unwrap();

        let err = save_to_path(&path, |w| {
            write_header(w, TAG_HASH_FAMILY)?;
            write_u64(w, 4)?;
            // Partial write, then the simulated crash.
            Err(CodecError::Io(io::Error::other("disk died mid-save")))
        })
        .unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));

        // No orphaned temp file, and the prior checkpoint restores cleanly.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp file leaked");
        let back = load_from_path(&path, HashFamily::restore).unwrap();
        assert_eq!(back.seed(), good.seed());
        std::fs::remove_file(&path).unwrap();
    }

    /// Reading torn bytes directly (as if a non-atomic writer had crashed)
    /// yields a typed error, never a panic or a half-restored value.
    #[test]
    fn torn_file_restores_to_a_typed_error() {
        let path = scratch_path("torn-read");
        let family = HashFamily::new(4, 256, 13);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_from_path(&path, HashFamily::restore).unwrap_err();
        assert!(matches!(err, CodecError::Truncated));
        std::fs::remove_file(&path).unwrap();

        let missing = scratch_path("never-written");
        assert!(matches!(
            load_from_path(&missing, HashFamily::restore),
            Err(CodecError::Io(_))
        ));
    }

    #[test]
    fn zero_rows_is_corrupt_not_a_constructor_panic() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, TAG_HASH_FAMILY).unwrap();
        write_u64(&mut bytes, 0).unwrap();
        write_u64(&mut bytes, 64).unwrap();
        write_u64(&mut bytes, 1).unwrap();
        assert!(matches!(
            HashFamily::restore(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn frames_roundtrip_and_stop_cleanly_at_eof() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first record").unwrap();
        write_frame(&mut log, b"").unwrap();
        write_frame(&mut log, &[0xAB; 300]).unwrap();
        let mut r = log.as_slice();
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"first record");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), vec![0xAB; 300]);
        assert!(read_frame(&mut r, 1024).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_tails_and_flipped_bits_are_typed_errors() {
        let mut log = Vec::new();
        write_frame(&mut log, b"payload bytes").unwrap();
        // Every possible torn tail inside the frame is Truncated.
        for cut in 1..log.len() {
            let err = read_frame(&mut &log[..cut], 1024).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
        // A flipped payload (or CRC) bit is a checksum mismatch; a flipped
        // length byte is either a cap rejection, a truncation or a
        // mismatch — never a panic and never a silently accepted frame.
        for i in 0..log.len() {
            let mut torn = log.clone();
            torn[i] ^= 0x40;
            match read_frame(&mut torn.as_slice(), 1 << 20) {
                Ok(Some(payload)) => panic!("byte {i}: corrupt frame accepted ({payload:?})"),
                Ok(None) => panic!("byte {i}: corrupt frame read as clean EOF"),
                Err(
                    CodecError::ChecksumMismatch { .. }
                    | CodecError::Truncated
                    | CodecError::Corrupt(_),
                ) => {}
                Err(other) => panic!("byte {i}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frame_lengths_are_capped_before_allocation() {
        let mut log = Vec::new();
        write_frame(&mut log, &[7u8; 100]).unwrap();
        assert!(matches!(
            read_frame(&mut log.as_slice(), 10),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn f64_slices_roundtrip_nonfinite_bits() {
        let values = vec![
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
        ];
        let mut bytes = Vec::new();
        write_f64_slice(&mut bytes, &values).unwrap();
        let back = read_f64_vec(&mut bytes.as_slice(), values.len()).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
