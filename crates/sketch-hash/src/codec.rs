//! Versioned binary codec for sketch lifecycle state.
//!
//! Every serialized record starts with a fixed header — the 4-byte magic
//! [`MAGIC`], a little-endian [`VERSION`], and a one-byte record tag — so a
//! reader can reject foreign bytes, future formats and mismatched record
//! types *before* trusting any length field. Payloads are explicit
//! little-endian primitives (never raw struct dumps): integers via
//! `to_le_bytes`, floats via `f64::to_bits` so non-finite values (NaN,
//! ±inf) round-trip bit-exactly.
//!
//! Nested records (a count sketch inside an ASCS sketch inside a sharded
//! worker set) each carry their own header, which keeps every `restore`
//! self-describing and makes one-byte corruption detectable close to where
//! it lands. All length fields are validated against caps before any
//! allocation, and bulk float payloads are read in bounded chunks, so a
//! corrupt header cannot trigger a huge up-front allocation.
//!
//! Restore never panics on truncated, corrupt or version-bumped input — it
//! returns a typed [`CodecError`] instead.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::family::HashFamily;

/// Magic bytes opening every record header.
pub const MAGIC: [u8; 4] = *b"ASKC";

/// Current format version. Readers reject any other version with
/// [`CodecError::UnsupportedVersion`]; the policy is a bump on any layout
/// change, with no in-place migration (old checkpoints are re-ingested).
pub const VERSION: u16 = 1;

/// Record tag for [`crate::HashFamily`].
pub const TAG_HASH_FAMILY: u8 = 7;
/// Record tag for a count sketch table.
pub const TAG_COUNT_SKETCH: u8 = 1;
/// Record tag for a top-k tracker.
pub const TAG_TOP_K_TRACKER: u8 = 2;
/// Record tag for an ASCS sketch (gate state + nested sketch/tracker).
pub const TAG_ASCS_SKETCH: u8 = 3;
/// Record tag for a sharded ASCS worker set.
pub const TAG_SHARDED_ASCS: u8 = 4;
/// Record tag for a full covariance-estimator checkpoint.
pub const TAG_ESTIMATOR: u8 = 5;
/// Record tag for a streaming exact oracle.
pub const TAG_STREAMING_EXACT: u8 = 6;
/// Record tag for a stream context (per-feature running moments).
pub const TAG_STREAM_CONTEXT: u8 = 8;

/// Hash-family rows are capped on restore so a corrupt header cannot ask
/// for an absurd number of row hashers.
const MAX_FAMILY_ROWS: u64 = 1 << 16;
/// Bucket ranges beyond this are rejected as corrupt (the workspace never
/// goes near it; the real allocation guard is the table-word cap).
const MAX_FAMILY_RANGE: u64 = 1 << 40;

/// Typed error for every save/restore/merge failure. `restore` returns
/// this instead of panicking, whatever the input bytes look like.
#[derive(Debug)]
pub enum CodecError {
    /// An underlying I/O error (other than a short read).
    Io(io::Error),
    /// The input ended before the record did.
    Truncated,
    /// The first four bytes are not [`MAGIC`] — not a sketch record.
    BadMagic([u8; 4]),
    /// The record was written by a different format version.
    UnsupportedVersion(u16),
    /// The header tag does not match the record type being restored.
    WrongRecord {
        /// The tag the caller expected.
        expected: u8,
        /// The tag found in the header.
        found: u8,
    },
    /// A payload field failed validation; the message names the field.
    Corrupt(&'static str),
    /// The record restored fine but cannot be merged into the receiver
    /// (mismatched geometry, seed or schedule).
    Incompatible(&'static str),
    /// The in-memory state cannot be checkpointed (e.g. a filter backend
    /// with no codec).
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(err) => write!(f, "i/o error: {err}"),
            CodecError::Truncated => write!(f, "input truncated mid-record"),
            CodecError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (reader speaks {VERSION})"
                )
            }
            CodecError::WrongRecord { expected, found } => {
                write!(
                    f,
                    "wrong record type: expected tag {expected}, found {found}"
                )
            }
            CodecError::Corrupt(what) => write!(f, "corrupt record: {what}"),
            CodecError::Incompatible(what) => write!(f, "incompatible sketches: {what}"),
            CodecError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(err: io::Error) -> Self {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(err)
        }
    }
}

/// Writes the record header: magic, version, tag.
pub fn write_header<W: Write>(w: &mut W, tag: u8) -> Result<(), CodecError> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_u8(w, tag)
}

/// Reads and validates a record header against the expected tag.
pub fn read_header<R: Read>(r: &mut R, expected: u8) -> Result<(), CodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let found = read_u8(r)?;
    if found != expected {
        return Err(CodecError::WrongRecord { expected, found });
    }
    Ok(())
}

/// Writes one byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> Result<(), CodecError> {
    w.write_all(&[v]).map_err(CodecError::from)
}

/// Reads one byte.
pub fn read_u8<R: Read>(r: &mut R) -> Result<u8, CodecError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a little-endian `u16`.
pub fn write_u16<W: Write>(w: &mut W, v: u16) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::from)
}

/// Reads a little-endian `u16`.
pub fn read_u16<R: Read>(r: &mut R) -> Result<u16, CodecError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Writes a little-endian `u64`.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::from)
}

/// Reads a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, CodecError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f64` as its IEEE-754 bit pattern (round-trips NaN and ±inf).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), CodecError> {
    write_u64(w, v.to_bits())
}

/// Reads an `f64` from its IEEE-754 bit pattern.
pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, CodecError> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Writes a boolean as a single 0/1 byte.
pub fn write_bool<W: Write>(w: &mut W, v: bool) -> Result<(), CodecError> {
    write_u8(w, u8::from(v))
}

/// Reads a boolean; any byte other than 0 or 1 is corrupt.
pub fn read_bool<R: Read>(r: &mut R) -> Result<bool, CodecError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Corrupt("boolean flag is neither 0 nor 1")),
    }
}

/// Reads a `u64` length field that must fit in `usize` and stay at or
/// below `cap`; `what` names the field in the error.
pub fn read_len<R: Read>(r: &mut R, cap: u64, what: &'static str) -> Result<usize, CodecError> {
    let len = read_u64(r)?;
    if len > cap {
        return Err(CodecError::Corrupt(what));
    }
    usize::try_from(len).map_err(|_| CodecError::Corrupt(what))
}

/// How many floats travel per bulk-I/O chunk (32 KiB of bytes).
const F64_CHUNK: usize = 4096;

/// Writes a float slice as consecutive IEEE-754 bit patterns, chunked so
/// large tables do not go through one `write_all` call per value.
pub fn write_f64_slice<W: Write>(w: &mut W, values: &[f64]) -> Result<(), CodecError> {
    let mut buf = [0u8; 8 * F64_CHUNK];
    for chunk in values.chunks(F64_CHUNK) {
        for (i, v) in chunk.iter().enumerate() {
            buf[8 * i..8 * (i + 1)].copy_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&buf[..8 * chunk.len()])?;
    }
    Ok(())
}

/// Reads `len` floats written by [`write_f64_slice`]. The vector grows
/// chunk by chunk, so a corrupt length fails on [`CodecError::Truncated`]
/// long before it could force a giant allocation.
pub fn read_f64_vec<R: Read>(r: &mut R, len: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::with_capacity(len.min(F64_CHUNK));
    let mut buf = [0u8; 8 * F64_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(F64_CHUNK);
        r.read_exact(&mut buf[..8 * take])?;
        out.reserve(take);
        for i in 0..take {
            let mut bits = [0u8; 8];
            bits.copy_from_slice(&buf[8 * i..8 * (i + 1)]);
            out.push(f64::from_bits(u64::from_le_bytes(bits)));
        }
        remaining -= take;
    }
    Ok(out)
}

/// Writes a checkpoint to `path` **atomically**: the record is serialized
/// into a sibling `<path>.tmp`, flushed and fsynced, then renamed over the
/// destination. A crash (or a failing `write` closure) at any point leaves
/// either the previous checkpoint or nothing at the final path — never a
/// truncated record masquerading as the latest checkpoint.
///
/// The closure receives a buffered writer and emits one codec record (or
/// several back to back); any error aborts the save, removes the temp file
/// (best effort) and leaves the destination untouched.
///
/// # Errors
/// Any [`CodecError`] the closure fails with, or [`CodecError::Io`] /
/// [`CodecError::Truncated`] from the filesystem operations themselves.
pub fn save_to_path<F>(path: impl AsRef<std::path::Path>, write: F) -> Result<(), CodecError>
where
    F: FnOnce(&mut io::BufWriter<std::fs::File>) -> Result<(), CodecError>,
{
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint written by [`save_to_path`] (or any codec record on
/// disk): opens `path` buffered and hands the reader to the closure. A
/// missing file surfaces as [`CodecError::Io`]; a torn or tampered record
/// surfaces as whatever typed error the closure's decoder returns.
///
/// # Errors
/// Any [`CodecError`] the closure fails with, or [`CodecError::Io`] when
/// the file cannot be opened.
pub fn load_from_path<T, F>(path: impl AsRef<std::path::Path>, read: F) -> Result<T, CodecError>
where
    F: FnOnce(&mut io::BufReader<std::fs::File>) -> Result<T, CodecError>,
{
    let file = std::fs::File::open(path.as_ref())?;
    read(&mut io::BufReader::new(file))
}

impl HashFamily {
    /// Serializes the family as `(rows, range, seed)` — every row hasher is
    /// a pure function of the seed, so nothing else needs to travel.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        write_header(w, TAG_HASH_FAMILY)?;
        write_u64(w, self.rows() as u64)?;
        write_u64(w, self.range() as u64)?;
        write_u64(w, self.seed())
    }

    /// Restores a family saved by [`HashFamily::save`], re-deriving the row
    /// hashers from the seed.
    pub fn restore<R: Read>(r: &mut R) -> Result<Self, CodecError> {
        read_header(r, TAG_HASH_FAMILY)?;
        let rows = read_u64(r)?;
        if rows == 0 || rows > MAX_FAMILY_ROWS {
            return Err(CodecError::Corrupt("hash family row count out of range"));
        }
        let range = read_u64(r)?;
        if range == 0 || range > MAX_FAMILY_RANGE {
            return Err(CodecError::Corrupt("hash family bucket range out of range"));
        }
        let seed = read_u64(r)?;
        Ok(HashFamily::new(rows as usize, range as usize, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_roundtrip_rederives_identical_hashers() {
        let family = HashFamily::new(5, 1 << 14, 0xDEAD_BEEF);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        let back = HashFamily::restore(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.rows(), family.rows());
        assert_eq!(back.range(), family.range());
        assert_eq!(back.seed(), family.seed());
        for (a, b) in family.row_hashers().iter().zip(back.row_hashers()) {
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(a.bucket(key, family.range()), b.bucket(key, back.range()));
                assert_eq!(a.sign(key), b.sign(key));
            }
        }
    }

    #[test]
    fn header_rejects_magic_version_and_tag_mismatches() {
        let family = HashFamily::new(3, 64, 9);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            HashFamily::restore(&mut bad_magic.as_slice()),
            Err(CodecError::BadMagic(_))
        ));

        let mut bumped = bytes.clone();
        bumped[4] = 2;
        assert!(matches!(
            HashFamily::restore(&mut bumped.as_slice()),
            Err(CodecError::UnsupportedVersion(2))
        ));

        let mut wrong_tag = bytes.clone();
        wrong_tag[6] = TAG_COUNT_SKETCH;
        assert!(matches!(
            HashFamily::restore(&mut wrong_tag.as_slice()),
            Err(CodecError::WrongRecord { .. })
        ));
    }

    #[test]
    fn truncated_input_is_reported_not_panicked() {
        let family = HashFamily::new(4, 128, 77);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            let err = HashFamily::restore(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, CodecError::Truncated));
        }
    }

    /// A unique scratch path under the system temp dir (no tempfile dep).
    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ascs-codec-test-{}-{tag}.ckpt", std::process::id()))
    }

    #[test]
    fn save_to_path_roundtrips_through_disk() {
        let path = scratch_path("roundtrip");
        let family = HashFamily::new(5, 1 << 12, 0xFEED);
        save_to_path(&path, |w| family.save(w)).unwrap();
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = load_from_path(&path, HashFamily::restore).unwrap();
        assert_eq!(back.seed(), family.seed());
        assert_eq!(back.rows(), family.rows());
        assert_eq!(back.range(), family.range());
        std::fs::remove_file(&path).unwrap();
    }

    /// A failing save — here a closure that writes half a record and then
    /// errors, simulating a crash mid-serialization — must leave the
    /// *previous* checkpoint in place and clean up its temp file.
    #[test]
    fn failed_save_preserves_the_previous_checkpoint() {
        let path = scratch_path("torn-save");
        let good = HashFamily::new(4, 256, 11);
        save_to_path(&path, |w| good.save(w)).unwrap();

        let err = save_to_path(&path, |w| {
            write_header(w, TAG_HASH_FAMILY)?;
            write_u64(w, 4)?;
            // Partial write, then the simulated crash.
            Err(CodecError::Io(io::Error::other("disk died mid-save")))
        })
        .unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));

        // No orphaned temp file, and the prior checkpoint restores cleanly.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp file leaked");
        let back = load_from_path(&path, HashFamily::restore).unwrap();
        assert_eq!(back.seed(), good.seed());
        std::fs::remove_file(&path).unwrap();
    }

    /// Reading torn bytes directly (as if a non-atomic writer had crashed)
    /// yields a typed error, never a panic or a half-restored value.
    #[test]
    fn torn_file_restores_to_a_typed_error() {
        let path = scratch_path("torn-read");
        let family = HashFamily::new(4, 256, 13);
        let mut bytes = Vec::new();
        family.save(&mut bytes).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_from_path(&path, HashFamily::restore).unwrap_err();
        assert!(matches!(err, CodecError::Truncated));
        std::fs::remove_file(&path).unwrap();

        let missing = scratch_path("never-written");
        assert!(matches!(
            load_from_path(&missing, HashFamily::restore),
            Err(CodecError::Io(_))
        ));
    }

    #[test]
    fn zero_rows_is_corrupt_not_a_constructor_panic() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, TAG_HASH_FAMILY).unwrap();
        write_u64(&mut bytes, 0).unwrap();
        write_u64(&mut bytes, 64).unwrap();
        write_u64(&mut bytes, 1).unwrap();
        assert!(matches!(
            HashFamily::restore(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn f64_slices_roundtrip_nonfinite_bits() {
        let values = vec![
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
        ];
        let mut bytes = Vec::new();
        write_f64_slice(&mut bytes, &values).unwrap();
        let back = read_f64_vec(&mut bytes.as_slice(), values.len()).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
