//! Per-row hashers and the `K`-row hash family used by sketches.

use crate::mix::{avalanche64, splitmix64, SplitMix64};

/// Maximum number of rows supported by the stack-allocated fused path
/// ([`RowLocations`]). Sketches use `K ≤ 10` in practice (the paper runs
/// `K = 5`), so the cap never binds outside of adversarial configurations;
/// callers with more rows must fall back to the per-row APIs.
pub const MAX_ROWS: usize = 16;

/// Builds `±1.0` from a raw sign bit (`0` → `+1.0`, `1` → `−1.0`), branch
/// free: the bit pattern of `1.0` with the sign bit spliced in. Every sign
/// materialisation in the fused read/write paths goes through this one
/// function so the paths cannot desynchronise.
#[inline]
pub fn sign_from_bit(bit: u64) -> f64 {
    debug_assert!(bit <= 1);
    f64::from_bits(0x3FF0_0000_0000_0000 | (bit << 63))
}

/// The location an item hashes to in one sketch row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLocation {
    /// Row (hash table) index, `0 ≤ row < K`.
    pub row: usize,
    /// Bucket within the row, `0 ≤ bucket < R`.
    pub bucket: usize,
    /// Sign hash value, `+1` or `-1`.
    pub sign: i8,
}

/// All of one key's `(bucket, sign)` locations across the `K` rows of a
/// family, stack allocated so the hot ingestion path can hash a key **once**
/// and reuse the locations for the gate read, the insertion and the
/// post-insert estimate (the hash-once, read-once discipline).
///
/// The representation is deliberately compact — `u32` buckets plus a sign
/// *bitmask* (72 bytes total) rather than full-width arrays — because this
/// struct is materialised once per offered update on the hottest path in
/// the system and oversized stack traffic there eats the fusion win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLocations {
    len: u32,
    /// Bit `r` set ⇔ row `r`'s sign is `−1.0`.
    sign_mask: u32,
    buckets: [u32; MAX_ROWS],
}

impl RowLocations {
    /// Assembles locations from raw parts (used by the precomputed
    /// [`crate::HashPlan`] to hand out entries in the stack format the fused
    /// sketch APIs consume).
    #[inline]
    pub(crate) fn from_raw(len: u32, sign_mask: u32, buckets: [u32; MAX_ROWS]) -> Self {
        Self {
            len,
            sign_mask,
            buckets,
        }
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no rows are covered (never produced by [`HashFamily`],
    /// which requires at least one row).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket of row `row`.
    #[inline]
    pub fn bucket(&self, row: usize) -> usize {
        debug_assert!(row < self.len());
        self.buckets[row] as usize
    }

    /// Sign of row `row` as `±1.0` (branch free, from the sign bitmask).
    #[inline]
    pub fn sign(&self, row: usize) -> f64 {
        debug_assert!(row < self.len());
        sign_from_bit(u64::from(self.sign_mask >> row) & 1)
    }

    /// The buckets as a slice (one entry per covered row). Iterating this
    /// slice lets the hot loops elide per-element bounds checks.
    #[inline]
    pub fn buckets(&self) -> &[u32] {
        &self.buckets[..self.len as usize]
    }

    /// The raw sign bitmask (bit `r` set ⇔ row `r`'s sign is `−1.0`).
    #[inline]
    pub fn sign_mask(&self) -> u32 {
        self.sign_mask
    }

    /// Iterates over `(bucket, sign)` in row order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        let mask = self.sign_mask;
        self.buckets()
            .iter()
            .enumerate()
            .map(move |(row, &b)| (b as usize, sign_from_bit(u64::from(mask >> row) & 1)))
    }
}

/// One sketch row's pair of hash functions: a bucket hash `h : u64 → [R]`
/// and a sign hash `s : u64 → {+1, −1}`.
///
/// Bucket and sign are derived from two *different* mixers over
/// seed-perturbed keys so that they behave as independent functions — using
/// a single mixer for both would correlate the bucket choice with the sign
/// and bias the count-sketch estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowHasher {
    bucket_seed: u64,
    sign_seed: u64,
}

impl RowHasher {
    /// Creates a row hasher from a seed.
    pub fn new(seed: u64) -> Self {
        // Derive two decorrelated sub-seeds.
        let bucket_seed = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
        let sign_seed = splitmix64(seed ^ 0xE703_7ED1_A0B4_28DB);
        Self {
            bucket_seed,
            sign_seed,
        }
    }

    /// Bucket index for `key` among `range` buckets.
    ///
    /// Uses the fixed-point multiply trick (`(hash * range) >> 64`) instead
    /// of a modulo, which is both faster and avoids the slight bias a modulo
    /// introduces when `range` does not divide `2^64`.
    #[inline]
    pub fn bucket(&self, key: u64, range: usize) -> usize {
        debug_assert!(range > 0, "bucket range must be positive");
        let h = splitmix64(key ^ self.bucket_seed);
        (((h as u128) * (range as u128)) >> 64) as usize
    }

    /// Sign hash for `key`: `+1` or `-1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i8 {
        let h = avalanche64(key ^ self.sign_seed);
        if h & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// The raw sign bit for `key`: `0` for `+1`, `1` for `−1`.
    #[inline]
    pub fn sign_bit(&self, key: u64) -> u64 {
        avalanche64(key ^ self.sign_seed) & 1
    }

    /// Sign as `f64` (`+1.0` / `-1.0`), the form the sketch arithmetic uses.
    ///
    /// Branch free: `±1.0` is built directly from the bit pattern of `1.0`
    /// with the sign bit taken from the low hash bit, so the per-update path
    /// carries no data-dependent branch.
    #[inline]
    pub fn sign_f64(&self, key: u64) -> f64 {
        sign_from_bit(self.sign_bit(key))
    }
}

/// A family of `K` independent [`RowHasher`]s sharing one bucket range `R`.
///
/// ```
/// use ascs_sketch_hash::HashFamily;
/// let family = HashFamily::new(5, 1 << 10, 42);
/// assert_eq!(family.rows(), 5);
/// assert_eq!(family.range(), 1024);
/// let locations: Vec<_> = family.locate(987654321).collect();
/// assert_eq!(locations.len(), 5);
/// for loc in locations {
///     assert!(loc.bucket < 1024);
///     assert!(loc.sign == 1 || loc.sign == -1);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    rows: Vec<RowHasher>,
    range: usize,
    seed: u64,
}

impl HashFamily {
    /// Creates a family with `rows` hash rows of `range` buckets each,
    /// derived deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `range == 0`.
    pub fn new(rows: usize, range: usize, seed: u64) -> Self {
        assert!(rows > 0, "a hash family needs at least one row");
        assert!(range > 0, "a hash family needs at least one bucket");
        let mut derive = SplitMix64::new(seed);
        let rows = (0..rows)
            .map(|_| RowHasher::new(derive.next_u64()))
            .collect();
        Self { rows, range, seed }
    }

    /// Number of rows `K`.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Buckets per row `R`.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Seed the family was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The row hashers themselves.
    pub fn row_hashers(&self) -> &[RowHasher] {
        &self.rows
    }

    /// Bucket of `key` in row `row`.
    #[inline]
    pub fn bucket(&self, row: usize, key: u64) -> usize {
        self.rows[row].bucket(key, self.range)
    }

    /// Sign of `key` in row `row`.
    #[inline]
    pub fn sign(&self, row: usize, key: u64) -> i8 {
        self.rows[row].sign(key)
    }

    /// Iterates over the `(row, bucket, sign)` locations of `key` in every
    /// row. Allocation free.
    #[inline]
    pub fn locate(&self, key: u64) -> impl Iterator<Item = RowLocation> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(move |(row, hasher)| RowLocation {
                row,
                bucket: hasher.bucket(key, self.range),
                sign: hasher.sign(key),
            })
    }

    /// Computes every row's `(bucket, sign)` for `key` in a single pass into
    /// a stack-allocated [`RowLocations`]. This is the entry point of the
    /// hash-once ingestion discipline: callers hash a key exactly once and
    /// reuse the locations for reads and writes alike.
    ///
    /// # Panics
    /// Panics if the family has more than [`MAX_ROWS`] rows or more than
    /// `u32::MAX` buckets per row (a >32 GB table — far beyond any budget
    /// this system runs with).
    #[inline]
    pub fn locate_all(&self, key: u64) -> RowLocations {
        assert!(
            self.rows.len() <= MAX_ROWS,
            "locate_all supports at most {MAX_ROWS} rows, family has {}",
            self.rows.len()
        );
        assert!(
            self.range <= u32::MAX as usize,
            "locate_all supports at most 2^32 buckets per row"
        );
        let mut buckets = [0u32; MAX_ROWS];
        let mut sign_mask = 0u32;
        for (row, hasher) in self.rows.iter().enumerate() {
            buckets[row] = hasher.bucket(key, self.range) as u32;
            sign_mask |= (hasher.sign_bit(key) as u32) << row;
        }
        RowLocations {
            len: self.rows.len() as u32,
            sign_mask,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_stay_in_range() {
        let family = HashFamily::new(4, 37, 7);
        for key in 0..10_000u64 {
            for loc in family.locate(key) {
                assert!(loc.bucket < 37);
            }
        }
    }

    #[test]
    fn hashing_is_deterministic_per_seed() {
        let a = HashFamily::new(3, 100, 11);
        let b = HashFamily::new(3, 100, 11);
        let c = HashFamily::new(3, 100, 12);
        let key = 123_456_789u64;
        let la: Vec<_> = a.locate(key).collect();
        let lb: Vec<_> = b.locate(key).collect();
        let lc: Vec<_> = c.locate(key).collect();
        assert_eq!(la, lb);
        assert_ne!(la, lc);
    }

    #[test]
    fn rows_are_decorrelated() {
        // Two rows of the same family should not produce identical bucket
        // sequences.
        let family = HashFamily::new(2, 1 << 12, 3);
        let mut identical = 0;
        for key in 0..4096u64 {
            if family.bucket(0, key) == family.bucket(1, key) {
                identical += 1;
            }
        }
        // Random chance of agreement is 1/4096 per key → expect ~1.
        assert!(
            identical < 20,
            "rows look correlated: {identical} agreements"
        );
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let range = 64;
        let family = HashFamily::new(1, range, 5);
        let n = 64_000u64;
        let mut counts = vec![0u64; range];
        for key in 0..n {
            counts[family.bucket(0, key)] += 1;
        }
        let expected = n as f64 / range as f64;
        // Chi-square statistic against uniform; df = 63, mean 63, std ~11.2.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 120.0,
            "bucket distribution chi-square too high: {chi2}"
        );
    }

    #[test]
    fn signs_are_balanced() {
        let family = HashFamily::new(1, 16, 21);
        let n = 100_000u64;
        let mut plus = 0i64;
        for key in 0..n {
            plus += i64::from(family.sign(0, key) == 1);
        }
        let frac = plus as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.01,
            "sign hash is unbalanced: fraction of +1 = {frac}"
        );
    }

    #[test]
    fn sign_and_bucket_are_independent() {
        // P(+1 | bucket parity) should be ~0.5 for both parities.
        let family = HashFamily::new(1, 128, 33);
        let mut counts = [[0u64; 2]; 2];
        for key in 0..100_000u64 {
            let b = family.bucket(0, key) % 2;
            let s = usize::from(family.sign(0, key) == 1);
            counts[b][s] += 1;
        }
        for bucket in &counts {
            let total = bucket[0] + bucket[1];
            let frac = bucket[1] as f64 / total as f64;
            assert!(
                (frac - 0.5).abs() < 0.02,
                "sign correlated with bucket parity"
            );
        }
    }

    #[test]
    fn sign_f64_matches_sign() {
        let family = HashFamily::new(2, 8, 77);
        for key in 0..1000u64 {
            for row in 0..2 {
                assert_eq!(
                    family.row_hashers()[row].sign_f64(key),
                    f64::from(family.sign(row, key))
                );
            }
        }
    }

    #[test]
    fn single_bucket_range_always_maps_to_zero() {
        let family = HashFamily::new(3, 1, 9);
        for key in 0..100u64 {
            for loc in family.locate(key) {
                assert_eq!(loc.bucket, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = HashFamily::new(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_range_panics() {
        let _ = HashFamily::new(1, 0, 1);
    }

    #[test]
    fn locate_yields_rows_in_order() {
        let family = HashFamily::new(6, 50, 4);
        let rows: Vec<usize> = family.locate(42).map(|l| l.row).collect();
        assert_eq!(rows, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn locate_all_matches_per_row_hashing() {
        let family = HashFamily::new(7, 513, 19);
        for key in (0..5000u64).step_by(13) {
            let locs = family.locate_all(key);
            assert_eq!(locs.len(), 7);
            assert!(!locs.is_empty());
            for (row, (bucket, sign)) in locs.iter().enumerate() {
                assert_eq!(bucket, family.bucket(row, key));
                assert_eq!(sign, family.row_hashers()[row].sign_f64(key));
                assert_eq!(locs.bucket(row), bucket);
                assert_eq!(locs.sign(row), sign);
            }
        }
    }

    #[test]
    fn branchless_sign_is_exactly_plus_or_minus_one() {
        let family = HashFamily::new(3, 8, 23);
        for key in 0..10_000u64 {
            for hasher in family.row_hashers() {
                let s = hasher.sign_f64(key);
                assert!(s == 1.0 || s == -1.0, "sign {s} is not ±1.0");
                assert!(s.to_bits() == 1.0f64.to_bits() || s.to_bits() == (-1.0f64).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn locate_all_rejects_oversized_families() {
        let family = HashFamily::new(MAX_ROWS + 1, 10, 1);
        let _ = family.locate_all(0);
    }
}
