//! Seeded hash families for sketching data structures.
//!
//! A count sketch needs, for each of its `K` rows, two functions over the
//! item universe `{0, 1, …, p-1}`:
//!
//! * a **bucket hash** `h_e : [p] → [R]` distributing items across the `R`
//!   buckets of the row, and
//! * a **sign hash** `s_e : [p] → {+1, −1}` randomising the sign of each
//!   item's contribution so that colliding items cancel in expectation.
//!
//! The ASCS paper works with item universes of up to `p ≈ 1.4 × 10^14`
//! (pairs of 17M features), so hashing must be branch-free and allocation
//! free on the per-item path. This crate provides:
//!
//! * [`mix`] — 64-bit finalising mixers (SplitMix64 and a Murmur3-style
//!   avalanche) used as building blocks;
//! * [`RowHasher`] — one row's bucket + sign hash derived from a seed;
//! * [`HashFamily`] — `K` independent rows with convenience iteration;
//! * [`HashPlan`] — a precomputed structure-of-arrays arena of every row's
//!   `(bucket, sign)` for a key set, built once (in parallel for large
//!   sets) and replayed across samples so steady-state ingestion and query
//!   sweeps stop hashing entirely;
//! * [`MultiplyShiftHash`] — a 2-universal multiply-shift family matching
//!   the pairwise-independence assumption used in the paper's analysis;
//! * [`codec`] — the versioned binary format (magic + version + record
//!   tags, typed [`CodecError`]) underlying every sketch checkpoint; a
//!   family round-trips as just `(rows, range, seed)` because hashers are
//!   pure functions of the seed.
//!
//! All hashers are deterministic functions of their seed, so experiments are
//! reproducible end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod family;
pub mod mix;
pub mod plan;
pub mod universal;

pub use codec::CodecError;
pub use family::{sign_from_bit, HashFamily, RowHasher, RowLocation, RowLocations, MAX_ROWS};
pub use mix::{avalanche64, splitmix64, SplitMix64};
pub use plan::HashPlan;
pub use universal::MultiplyShiftHash;
