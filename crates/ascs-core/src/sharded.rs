//! Sharded parallel ingestion: N worker [`AscsSketch`]es partitioned by
//! key, merged via the count sketch's linearity.
//!
//! A count sketch is a linear function of its update stream, so a stream
//! partitioned **by key** across `N` workers and merged at the end produces
//! *exactly* the table a single sequential sketch would have built (the
//! per-bucket sums are the same numbers, reassociated). [`ShardedAscs`]
//! exploits this to scale the single hottest path of the system — trillion
//! scale pair-update ingestion — across OS threads with `std::thread`
//! scoped workers and no cross-thread synchronisation on the per-update
//! path: each worker owns its sketch outright and simply skips updates that
//! are not its own.
//!
//! For gated (ASCS) runs each worker applies the sampling gate against its
//! **shard-local** estimate. Keys are disjoint across shards, so a key's
//! own mass is fully visible to its worker; what a worker does not see is
//! the *collision noise* contributed by other shards' keys, which makes the
//! shard-local gate slightly **cleaner** than the sequential one (fewer
//! noise-inflated accepts). When no cross-key bucket collisions occur the
//! gate decisions — and therefore the merged estimates — are identical to
//! sequential ingestion; the equivalence tests pin both properties down.

use crate::ascs::{AscsSketch, SampleGate};
use crate::config::SketchGeometry;
use crate::hyper::HyperParameters;
use ascs_count_sketch::codec::{self, CodecError};
use ascs_count_sketch::{median_in_place, CountSketch, HashPlan, MAX_ROWS};
use ascs_sketch_hash::splitmix64;

/// One pair update routed through the sharded ingestion layer: the linear
/// pair key, the raw update value `x` (not yet scaled by `1/T`) and the
/// 1-based stream time `t` it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardUpdate {
    /// Linear pair key (the sketch item identifier).
    pub key: u64,
    /// Raw update value `X_i^{(t)}`.
    pub value: f64,
    /// 1-based stream time of the sample the update came from.
    pub t: u64,
}

/// Salt decorrelating the shard router from the sketch hash family, so that
/// shard assignment never aligns with bucket assignment.
pub(crate) const ROUTER_SALT: u64 = 0x9E6C_63D4_7D5F_B1A3;

/// Batch size below which [`ShardedAscs::offer_batch`] stays on the calling
/// thread — spawning workers for a handful of updates costs more than the
/// updates themselves.
const DEFAULT_PARALLEL_THRESHOLD: usize = 2048;

/// Hard cap on the shard count: the plan-driven slot router stores one
/// `u8` shard id per slot, and no machine this targets comes anywhere near
/// 256 useful ingestion threads. Checked up front by [`ShardedAscs::new`]
/// and [`ShardedAscs::vanilla`] (not just deep inside the first planned
/// batch) so an oversized configuration fails at construction time.
pub const MAX_SHARDS: usize = 256;

#[inline]
pub(crate) fn shard_for(key: u64, salt: u64, shards: usize) -> usize {
    if shards == 1 {
        0
    } else {
        (splitmix64(key ^ salt) % shards as u64) as usize
    }
}

/// `N` key-partitioned [`AscsSketch`] workers that ingest in parallel and
/// answer queries as if their tables had been merged.
#[derive(Debug, Clone)]
pub struct ShardedAscs {
    workers: Vec<AscsSketch>,
    router_salt: u64,
    parallel_threshold: usize,
    /// Reusable per-shard staging buffers for [`ShardedAscs::offer_batch`]:
    /// the batch is routed **once** on the calling thread, then each worker
    /// consumes only its own slice — no per-worker rescans of the batch.
    scratch: Vec<Vec<ShardUpdate>>,
    /// Precomputed slot → shard assignments for plan-driven ingestion
    /// (`slot_router[slot] == shard_of(slot)`), built lazily by
    /// [`ShardedAscs::build_slot_router`] so the planned batch path routes
    /// by table lookup instead of hashing every update's key.
    slot_router: Vec<u8>,
}

impl ShardedAscs {
    /// Creates `shards` gated workers sharing one `(geometry, seed)` so
    /// their tables are mergeable, with the same hyperparameters and stream
    /// length a sequential [`AscsSketch::new`] would get.
    ///
    /// # Panics
    /// Panics if `shards == 0`, `shards > MAX_SHARDS`, or the arguments
    /// would make [`AscsSketch::new`] panic.
    pub fn new(
        geometry: SketchGeometry,
        hyper: &HyperParameters,
        total_samples: u64,
        top_k_capacity: usize,
        seed: u64,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "sharded ingestion needs at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "sharded ingestion supports at most {MAX_SHARDS} shards (slot routing stores u8 shard ids), got {shards}"
        );
        let workers = (0..shards)
            .map(|_| AscsSketch::new(geometry, hyper, total_samples, top_k_capacity, seed))
            .collect();
        Self {
            workers,
            router_salt: splitmix64(seed ^ ROUTER_SALT),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            scratch: vec![Vec::new(); shards],
            slot_router: Vec::new(),
        }
    }

    /// Creates `shards` vanilla (always-ingest) workers — the parallel
    /// counterpart of [`AscsSketch::vanilla`]. Because no gate is involved,
    /// the merged table is exactly the sequential table regardless of
    /// collisions.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `shards > MAX_SHARDS`.
    pub fn vanilla(
        geometry: SketchGeometry,
        total_samples: u64,
        top_k_capacity: usize,
        seed: u64,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "sharded ingestion needs at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "sharded ingestion supports at most {MAX_SHARDS} shards (slot routing stores u8 shard ids), got {shards}"
        );
        let workers = (0..shards)
            .map(|_| AscsSketch::vanilla(geometry, total_samples, top_k_capacity, seed))
            .collect();
        Self {
            workers,
            router_salt: splitmix64(seed ^ ROUTER_SALT),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            scratch: vec![Vec::new(); shards],
            slot_router: Vec::new(),
        }
    }

    /// Overrides the batch size below which ingestion stays single
    /// threaded (tests use this to force the parallel path).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The worker sketches (read-only; shard `i` owns the keys
    /// [`ShardedAscs::shard_of`] maps to `i`).
    pub fn workers(&self) -> &[AscsSketch] {
        &self.workers
    }

    /// The shard owning `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        shard_for(key, self.router_salt, self.workers.len())
    }

    /// Routes a single update to its owning shard on the calling thread.
    pub fn offer(&mut self, key: u64, x: f64, t: u64) {
        let shard = self.shard_of(key);
        self.workers[shard].offer(key, x, t);
    }

    /// Ingests a batch of updates, fanning out across one scoped OS thread
    /// per shard when the batch is large enough to amortise the spawns.
    ///
    /// The batch is routed once on the calling thread into per-shard
    /// staging buffers; each worker then consumes only its own buffer. The
    /// routing preserves batch order within a shard, so the result is
    /// deterministic and independent of both the thread schedule and how
    /// the stream was cut into batches.
    pub fn offer_batch(&mut self, batch: &[ShardUpdate]) {
        let shards = self.workers.len();
        if shards == 1 || batch.len() < self.parallel_threshold {
            for u in batch {
                let shard = shard_for(u.key, self.router_salt, shards);
                self.workers[shard].offer(u.key, u.value, u.t);
            }
            return;
        }
        for buf in &mut self.scratch {
            buf.clear();
        }
        for u in batch {
            self.scratch[shard_for(u.key, self.router_salt, shards)].push(*u);
        }
        std::thread::scope(|scope| {
            for (worker, own) in self.workers.iter_mut().zip(self.scratch.iter()) {
                scope.spawn(move || {
                    // Consecutive updates overwhelmingly share a stream
                    // time, so the per-sample gate invariants are computed
                    // once per distinct `t`, not once per update.
                    let mut gate_t = u64::MAX;
                    let mut gate: Option<SampleGate> = None;
                    for u in own {
                        if gate_t != u.t {
                            gate = Some(worker.sample_gate(u.t));
                            gate_t = u.t;
                        }
                        worker.offer_gated(u.key, u.value, gate.expect("gate set above"));
                    }
                });
            }
        });
    }

    /// Precomputes the slot → shard routing table for the plan slots
    /// `0..len`, so [`ShardedAscs::offer_batch_planned`] routes each update
    /// with one byte load instead of a hash. Idempotent; extends an
    /// existing table when a larger plan arrives.
    ///
    /// # Panics
    /// Panics with more than [`MAX_SHARDS`] shards (the table stores `u8`
    /// shard ids). Unreachable through the public constructors, which
    /// enforce the cap up front; kept as defense in depth.
    pub fn build_slot_router(&mut self, len: usize) {
        let shards = self.workers.len();
        assert!(
            shards <= MAX_SHARDS,
            "slot routing supports at most {MAX_SHARDS} shards"
        );
        while self.slot_router.len() < len {
            let slot = self.slot_router.len() as u64;
            self.slot_router
                .push(shard_for(slot, self.router_salt, shards) as u8);
        }
    }

    /// Plan-driven counterpart of [`ShardedAscs::offer_batch`]: update keys
    /// are plan slots (the dense identification `slot == key`), routing
    /// uses the precomputed slot table, and each worker replays plan
    /// entries via [`AscsSketch::ingest_planned`] — so neither the router
    /// nor the workers hash anything per update. Produces exactly the state
    /// [`ShardedAscs::offer_batch`] would: the routing table agrees with
    /// [`ShardedAscs::shard_of`] by construction and the planned offer is
    /// bit-identical to the hashed offer.
    ///
    /// # Panics
    /// Panics if the plan does not match the workers' hash family, or if an
    /// update's key is outside the plan.
    pub fn offer_batch_planned(&mut self, plan: &HashPlan, batch: &[ShardUpdate]) {
        // One up-front check covers both the sequential and the parallel
        // path (per-update plan checks inside the workers are debug-only).
        self.workers[0].sketch().verify_plan(plan);
        self.build_slot_router(plan.len());
        let shards = self.workers.len();
        if shards == 1 || batch.len() < self.parallel_threshold {
            // The gate depends only on `t` and the shared schedule, so one
            // recomputation per distinct `t` covers every worker.
            let mut gate_t = u64::MAX;
            let mut gate: Option<SampleGate> = None;
            for u in batch {
                if gate_t != u.t {
                    gate = Some(self.workers[0].sample_gate(u.t));
                    gate_t = u.t;
                }
                let shard = usize::from(self.slot_router[u.key as usize]);
                self.workers[shard].offer_planned(plan, u.key, u.value, gate.expect("gate set"));
            }
            return;
        }
        for buf in &mut self.scratch {
            buf.clear();
        }
        for u in batch {
            self.scratch[usize::from(self.slot_router[u.key as usize])].push(*u);
        }
        std::thread::scope(|scope| {
            for (worker, own) in self.workers.iter_mut().zip(self.scratch.iter()) {
                scope.spawn(move || worker.ingest_planned(plan, own));
            }
        });
    }

    /// Merged point query: per row, the bucket contents of **all** workers
    /// are summed before the sign flip and median — exactly the estimate a
    /// materialised [`ShardedAscs::merged_sketch`] would return, at
    /// `O(shards · K)` cost instead of `O(shards · K · R)`.
    ///
    /// Degenerate geometries beyond [`MAX_ROWS`] rows (which the sequential
    /// sketch handles via its unfused fallback) take the materialised-merge
    /// path here, trading `O(shards · K · R)` per query for the same
    /// answer.
    pub fn estimate(&self, key: u64) -> f64 {
        if self.workers[0].sketch().rows() > MAX_ROWS {
            return self.merged_sketch().estimate(key);
        }
        let locs = self.workers[0].sketch().locate(key);
        let mut rows = [0.0f64; MAX_ROWS];
        let n = locs.len();
        for (row, (bucket, sign)) in locs.iter().enumerate() {
            let mut sum = 0.0;
            for worker in &self.workers {
                sum += worker.sketch().raw_bucket(row, bucket);
            }
            rows[row] = sum * sign;
        }
        median_in_place(&mut rows[..n])
    }

    /// Materialises the merged count sketch (the sum of all worker tables),
    /// for callers that need whole-table access.
    pub fn merged_sketch(&self) -> CountSketch {
        let mut merged = self.workers[0].sketch().clone();
        for worker in &self.workers[1..] {
            merged.merge(worker.sketch());
        }
        merged
    }

    /// The top tracked pairs across all shards, re-scored against the
    /// merged tables so the reported estimates match what
    /// [`ShardedAscs::estimate`] would answer. Keys are disjoint across
    /// shards, so the union needs no deduplication.
    pub fn top_pairs(&self) -> Vec<(u64, f64)> {
        let absolute = self.workers[0].absolute_gate();
        let capacity = self.workers[0].top_k_capacity();
        let mut merged: Vec<(u64, f64)> = Vec::new();
        for worker in &self.workers {
            for (key, _) in worker.top_pairs() {
                let est = self.estimate(key);
                merged.push((key, if absolute { est.abs() } else { est }));
            }
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(capacity);
        merged
    }

    /// Total updates inserted across all shards.
    pub fn inserted_updates(&self) -> u64 {
        self.workers.iter().map(AscsSketch::inserted_updates).sum()
    }

    /// Total updates skipped by the shard-local gates.
    pub fn skipped_updates(&self) -> u64 {
        self.workers.iter().map(AscsSketch::skipped_updates).sum()
    }

    /// Total sketch memory across all shards, in float-equivalent words.
    pub fn memory_words(&self) -> usize {
        self.workers.iter().map(AscsSketch::memory_words).sum()
    }

    /// Serializes the worker set: shard count, router salt, parallel
    /// threshold, then one nested [`AscsSketch`] record per worker. The
    /// staging scratch and the lazily built slot router are transient
    /// (rebuilt on demand) and do not travel.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_SHARDED_ASCS)?;
        codec::write_u64(w, self.workers.len() as u64)?;
        codec::write_u64(w, self.router_salt)?;
        codec::write_u64(w, self.parallel_threshold as u64)?;
        for worker in &self.workers {
            worker.save(w)?;
        }
        Ok(())
    }

    /// Restores a worker set saved by [`ShardedAscs::save`]. The shard
    /// count must be in `1..=MAX_SHARDS` (the same bound the constructors
    /// enforce), otherwise the record is [`CodecError::Corrupt`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_SHARDED_ASCS)?;
        let shards = codec::read_len(r, MAX_SHARDS as u64, "shard count out of range")?;
        if shards == 0 {
            return Err(CodecError::Corrupt("shard count out of range"));
        }
        let router_salt = codec::read_u64(r)?;
        let parallel_threshold =
            codec::read_len(r, u64::from(u32::MAX), "parallel threshold out of range")?;
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            workers.push(AscsSketch::restore(r)?);
        }
        Ok(Self {
            workers,
            router_salt,
            parallel_threshold: parallel_threshold.max(1),
            scratch: vec![Vec::new(); shards],
            slot_router: Vec::new(),
        })
    }

    /// Restores a checkpointed worker set and merges it into `self`
    /// shard-by-shard (worker `i` merges into worker `i`; both processes
    /// route identically because they share the router salt). Shard count
    /// or salt mismatches return [`CodecError::Incompatible`].
    pub fn merge_from_checkpoint<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), CodecError> {
        let other = Self::restore(r)?;
        self.merge_restored(&other)
    }

    /// Merges an already-restored worker set into `self`; see
    /// [`ShardedAscs::merge_from_checkpoint`].
    pub fn merge_restored(&mut self, other: &Self) -> Result<(), CodecError> {
        if self.workers.len() != other.workers.len() {
            return Err(CodecError::Incompatible("shard count mismatch"));
        }
        if self.router_salt != other.router_salt {
            return Err(CodecError::Incompatible("shard router salt mismatch"));
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.merge_restored(theirs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyper(t0: u64, theta: f64, tau0: f64) -> HyperParameters {
        HyperParameters {
            t0,
            theta,
            tau0,
            delta: 0.05,
            delta_star: 0.2,
        }
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let s = ShardedAscs::vanilla(SketchGeometry::new(3, 64), 100, 8, 5, 4);
        let mut seen = [false; 4];
        for key in 0..256u64 {
            let shard = s.shard_of(key);
            assert!(shard < 4);
            assert_eq!(shard, s.shard_of(key));
            seen[shard] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "a shard received no keys: {seen:?}"
        );
    }

    #[test]
    fn single_shard_is_the_sequential_sketch() {
        let geometry = SketchGeometry::new(5, 128);
        let hp = hyper(10, 0.3, 1e-3);
        let mut seq = AscsSketch::new(geometry, &hp, 100, 8, 7);
        let mut sharded = ShardedAscs::new(geometry, &hp, 100, 8, 7, 1);
        for t in 1..=100u64 {
            for key in 0..10u64 {
                let x = (key as f64 - 4.0) * 0.2;
                seq.offer(key, x, t);
                sharded.offer(key, x, t);
            }
        }
        for key in 0..10u64 {
            assert_eq!(seq.estimate(key), sharded.estimate(key));
        }
        assert_eq!(seq.inserted_updates(), sharded.inserted_updates());
        assert_eq!(seq.skipped_updates(), sharded.skipped_updates());
    }

    #[test]
    fn batch_ingestion_is_independent_of_batch_boundaries() {
        let geometry = SketchGeometry::new(5, 256);
        let build = || {
            ShardedAscs::new(geometry, &hyper(8, 0.2, 1e-3), 64, 16, 3, 4)
                .with_parallel_threshold(1)
        };
        let mut updates = Vec::new();
        for t in 1..=64u64 {
            for key in 0..20u64 {
                updates.push(ShardUpdate {
                    key,
                    value: ((key + t) % 7) as f64 * 0.25 - 0.75,
                    t,
                });
            }
        }
        let mut whole = build();
        whole.offer_batch(&updates);
        let mut chunked = build();
        for chunk in updates.chunks(77) {
            chunked.offer_batch(chunk);
        }
        for key in 0..20u64 {
            assert_eq!(whole.estimate(key), chunked.estimate(key));
        }
        assert_eq!(whole.inserted_updates(), chunked.inserted_updates());
    }

    #[test]
    fn merged_sketch_agrees_with_cross_shard_estimates() {
        let geometry = SketchGeometry::new(5, 64);
        let mut s = ShardedAscs::vanilla(geometry, 32, 16, 11, 3).with_parallel_threshold(1);
        let updates: Vec<ShardUpdate> = (1..=32u64)
            .flat_map(|t| {
                (0..30u64).map(move |key| ShardUpdate {
                    key,
                    value: ((key * t) % 5) as f64 * 0.5 - 1.0,
                    t,
                })
            })
            .collect();
        s.offer_batch(&updates);
        let merged = s.merged_sketch();
        for key in 0..30u64 {
            assert_eq!(s.estimate(key), merged.estimate(key));
        }
        assert_eq!(merged.update_count(), s.inserted_updates());
    }

    #[test]
    fn top_pairs_surface_strong_keys_across_shards() {
        let geometry = SketchGeometry::new(5, 1024);
        let mut s = ShardedAscs::new(geometry, &hyper(10, 0.2, 1e-3), 100, 8, 9, 4);
        // Two strong keys that (with overwhelming probability) land in
        // different shards among 4, plus background weak keys.
        for t in 1..=100u64 {
            s.offer(1, 1.0, t);
            s.offer(2, 0.9, t);
            if t % 10 == 0 {
                s.offer(77, 0.01, t);
            }
        }
        let top = s.top_pairs();
        assert!(top.len() >= 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!((top[0].1 - 1.0).abs() < 0.05);
    }

    #[test]
    fn planned_batch_matches_hashed_batch_bit_for_bit() {
        let geometry = SketchGeometry::new(5, 256);
        let build = || {
            ShardedAscs::new(geometry, &hyper(8, 0.2, 1e-3), 64, 16, 3, 4)
                .with_parallel_threshold(1)
        };
        let updates: Vec<ShardUpdate> = (1..=64u64)
            .flat_map(|t| {
                (0..20u64).map(move |key| ShardUpdate {
                    key,
                    value: ((key + t) % 7) as f64 * 0.25 - 0.75,
                    t,
                })
            })
            .collect();
        let mut hashed = build();
        hashed.offer_batch(&updates);
        let mut planned = build();
        let plan = planned.workers()[0].sketch().build_plan(20);
        // Route through both the parallel path (one big batch) and the
        // sequential small-batch path (raised threshold).
        planned.offer_batch_planned(&plan, &updates[..updates.len() / 2]);
        planned.parallel_threshold = usize::MAX;
        planned.offer_batch_planned(&plan, &updates[updates.len() / 2..]);
        for (a, b) in hashed.workers().iter().zip(planned.workers()) {
            let ta = a.sketch().table();
            let tb = b.sketch().table();
            assert!(
                ta.iter().zip(tb).all(|(x, y)| x.to_bits() == y.to_bits()),
                "a worker table diverged between hashed and planned routing"
            );
        }
        assert_eq!(hashed.inserted_updates(), planned.inserted_updates());
        assert_eq!(hashed.skipped_updates(), planned.skipped_updates());
        // The slot router agrees with the hashing router everywhere.
        for slot in 0..20u64 {
            assert_eq!(
                usize::from(planned.slot_router[slot as usize]),
                planned.shard_of(slot)
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match this sketch")]
    fn planned_batch_rejects_foreign_plans_on_the_sequential_path() {
        // The small-batch path must enforce the plan contract too — in
        // release builds the per-update check inside the workers is
        // debug-only, so the batch entry point carries the real assert.
        let geometry = SketchGeometry::new(5, 64);
        let mut s = ShardedAscs::vanilla(geometry, 32, 8, 1, 2);
        let foreign = ShardedAscs::vanilla(geometry, 32, 8, 2, 2).workers()[0]
            .sketch()
            .build_plan(8);
        s.offer_batch_planned(
            &foreign,
            &[ShardUpdate {
                key: 0,
                value: 1.0,
                t: 1,
            }],
        );
    }

    #[test]
    fn memory_words_scales_with_shards() {
        let s = ShardedAscs::vanilla(SketchGeometry::new(4, 100), 10, 4, 1, 3);
        assert_eq!(s.memory_words(), 3 * 4 * 100);
        assert_eq!(s.shards(), 3);
        assert_eq!(s.workers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedAscs::vanilla(SketchGeometry::new(2, 16), 10, 4, 1, 0);
    }

    // Regression: the shard cap used to be checked only inside
    // build_slot_router, so a 257-shard set constructed fine and panicked
    // deep inside the first planned batch. Both constructors now fail fast.
    #[test]
    #[should_panic(expected = "at most 256 shards")]
    fn oversized_shard_count_panics_at_construction_vanilla() {
        let _ = ShardedAscs::vanilla(SketchGeometry::new(2, 16), 10, 4, 1, MAX_SHARDS + 1);
    }

    #[test]
    #[should_panic(expected = "at most 256 shards")]
    fn oversized_shard_count_panics_at_construction_gated() {
        let _ = ShardedAscs::new(
            SketchGeometry::new(2, 16),
            &hyper(2, 0.1, 1e-3),
            10,
            4,
            1,
            MAX_SHARDS + 1,
        );
    }

    #[test]
    fn max_shard_count_still_constructs() {
        let s = ShardedAscs::vanilla(SketchGeometry::new(2, 16), 10, 4, 1, MAX_SHARDS);
        assert_eq!(s.shards(), MAX_SHARDS);
    }

    #[test]
    fn oversized_row_count_works_end_to_end() {
        // Beyond MAX_ROWS both ingestion (per-worker unfused fallback) and
        // queries (materialised merge) must still work, matching the
        // sequential sketch's fallback contract.
        let geometry = SketchGeometry::new(MAX_ROWS + 1, 64);
        let mut s = ShardedAscs::new(geometry, &hyper(5, 0.3, 1e-3), 50, 8, 3, 2);
        for t in 1..=50 {
            s.offer(7, 1.0, t);
        }
        assert!((s.estimate(7) - 1.0).abs() < 0.05);
        assert_eq!(s.top_pairs()[0].0, 7);
    }
}
