//! Algorithm 3: choosing the ASCS hyperparameters from the theorem bounds.
//!
//! Given the problem parameters (`p`, `R`, `K`, `α`, `σ`, `u`, `T`) and the
//! acceptable miss probabilities `δ` (at the end of exploration) and `δ*`
//! (over the whole run), Algorithm 3 picks
//!
//! 1. the **exploration length** `T0` — the smallest `T0` whose Theorem 1
//!    bound is at most `δ`, so sampling starts as early as safely possible;
//! 2. the **threshold slope** `θ` — the largest `θ` whose Theorem 2 bound is
//!    at most `δ* − δ`, so the threshold rises as aggressively as safely
//!    possible.
//!
//! Both bounds are monotone in the searched parameter (decreasing in `T0`,
//! increasing in `θ`), so binary search suffices; the implementation
//! nevertheless verifies the bracketing endpoints and falls back to a linear
//! scan if the monotonicity assumption is ever violated numerically.

use crate::schedule::ThresholdSchedule;
use crate::theory::TheoryBounds;
use ascs_numerics::percentile;
use serde::{Deserialize, Serialize};

/// The data-dependent signal model ASCS needs before it can pick its
/// hyperparameters: the signal proportion, a lower bound on the signal
/// strength, and the noise scale of per-sample updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    /// Signal proportion `α`.
    pub alpha: f64,
    /// Signal strength lower bound `u`.
    pub u: f64,
    /// Noise scale `σ` of the per-sample updates `X_i`.
    pub sigma: f64,
}

impl SignalModel {
    /// Derives `u` and a small initial threshold `τ(T0)` from a pilot
    /// estimate `μ̂` of the mean vector (Section 8.1): `u` is the
    /// `(1 − α)`-percentile of `μ̂` and `τ(T0)` its 10th percentile (clamped
    /// to be non-negative and strictly below `u`).
    pub fn from_pilot_estimates(estimates: &[f64], alpha: f64, sigma: f64) -> Option<Self> {
        if estimates.is_empty() {
            return None;
        }
        let u = percentile(estimates, (1.0 - alpha) * 100.0)?;
        if u <= 0.0 {
            return None;
        }
        Some(Self { alpha, u, sigma })
    }

    /// The paper's recommendation for the initial threshold on a
    /// correlation-scale stream: `τ(T0) = 10⁻⁴`, clamped below `u`.
    pub fn default_tau0(&self) -> f64 {
        (1e-4_f64).min(self.u * 0.5)
    }
}

/// The hyperparameters Algorithm 3 produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParameters {
    /// Exploration length `T0`.
    pub t0: u64,
    /// Threshold slope `θ`.
    pub theta: f64,
    /// Initial threshold `τ(T0)`.
    pub tau0: f64,
    /// Exploration-phase miss probability target `δ`.
    pub delta: f64,
    /// Total miss probability target `δ*`.
    pub delta_star: f64,
}

impl HyperParameters {
    /// The linear threshold schedule these hyperparameters induce.
    pub fn schedule(&self, total: u64) -> ThresholdSchedule {
        ThresholdSchedule::linear(self.tau0, self.theta, self.t0, total)
    }
}

/// Errors the solver can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveError {
    /// `δ` is below the saturation probability, so no exploration length can
    /// satisfy the Theorem 1 bound. The payload is the saturation
    /// probability; pick `δ` above it (the paper uses `max(1.01·SP, 0.05)`).
    DeltaBelowSaturation(u64),
    /// Even the full stream length cannot push the bound below `δ`.
    NoFeasibleExploration,
    /// No slope `θ ≥ 0` keeps the Theorem 2 omission bound within the
    /// `δ* − δ` budget — even the constant schedule `τ(t) = τ(T0)` omits
    /// too many signals. Loosen `δ*` or lengthen exploration.
    NoFeasibleSlope,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeltaBelowSaturation(milli) => write!(
                f,
                "delta is below the saturation probability (~{}.{:03})",
                milli / 1000,
                milli % 1000
            ),
            Self::NoFeasibleExploration => {
                write!(f, "no exploration length satisfies the Theorem 1 bound")
            }
            Self::NoFeasibleSlope => {
                write!(f, "no threshold slope satisfies the Theorem 2 budget")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Algorithm 3 solver.
#[derive(Debug, Clone, Copy)]
pub struct HyperParameterSolver {
    bounds: TheoryBounds,
    /// Smallest exploration length considered (`γ` of the paper — the CLT
    /// warm-up constant). Defaults to 30.
    gamma: u64,
}

impl HyperParameterSolver {
    /// Creates a solver over the given bound calculator.
    pub fn new(bounds: TheoryBounds) -> Self {
        Self { bounds, gamma: 30 }
    }

    /// Overrides the CLT warm-up constant `γ` (minimum exploration length).
    pub fn with_gamma(mut self, gamma: u64) -> Self {
        self.gamma = gamma.max(1);
        self
    }

    /// The bound calculator used by the solver.
    pub fn bounds(&self) -> &TheoryBounds {
        &self.bounds
    }

    /// `δ` default from Section 8.1: `max(1.01 · SP, 0.05)`.
    pub fn default_delta(&self) -> f64 {
        (1.01 * self.bounds.saturation_probability()).max(0.05)
    }

    /// `δ*` default from Section 8.1: `δ + 0.15`.
    pub fn default_delta_star(&self, delta: f64) -> f64 {
        (delta + 0.15).min(0.999)
    }

    /// Line 2 of Algorithm 3: the minimum `T0 ∈ [γ, T]` whose Theorem 1
    /// bound is at most `delta`.
    pub fn solve_t0(&self, tau0: f64, delta: f64) -> Result<u64, SolveError> {
        let total = self.bounds.total as u64;
        let sp = self.bounds.saturation_probability();
        if delta <= sp {
            return Err(SolveError::DeltaBelowSaturation(
                (sp * 1000.0).round() as u64
            ));
        }
        let lo_start = self.gamma.min(total);
        if self.bounds.theorem1_miss_bound(total, tau0) > delta {
            return Err(SolveError::NoFeasibleExploration);
        }
        if self.bounds.theorem1_miss_bound(lo_start, tau0) <= delta {
            return Ok(lo_start);
        }
        // Invariant: bound(lo) > delta, bound(hi) <= delta.
        let mut lo = lo_start;
        let mut hi = total;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.bounds.theorem1_miss_bound(mid, tau0) <= delta {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// Line 3 of Algorithm 3: the maximum `θ ∈ (0, u)` whose Theorem 2
    /// bound is at most `budget = δ* − δ`. Returns 0 when even an
    /// arbitrarily small slope exceeds the budget (the schedule then
    /// degenerates to a constant threshold at `τ(T0)`).
    pub fn solve_theta(&self, t0: u64, tau0: f64, budget: f64) -> f64 {
        let u = self.bounds.u;
        let eps = u * 1e-6;
        if self.bounds.theorem2_omission_bound(eps, tau0, t0) > budget {
            return 0.0;
        }
        if self.bounds.theorem2_omission_bound(u - eps, tau0, t0) <= budget {
            return u - eps;
        }
        // Invariant: bound(lo) <= budget, bound(hi) > budget.
        let mut lo = eps;
        let mut hi = u - eps;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.bounds.theorem2_omission_bound(mid, tau0, t0) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Full Algorithm 3: solve for `T0` and `θ` given `τ(T0)`, `δ`, `δ*`.
    pub fn solve(
        &self,
        tau0: f64,
        delta: f64,
        delta_star: f64,
    ) -> Result<HyperParameters, SolveError> {
        assert!(delta_star > delta, "delta_star must exceed delta");
        let t0 = self.solve_t0(tau0, delta)?;
        let budget = delta_star - delta;
        let theta = self.solve_theta(t0, tau0, budget);
        // A zero slope is only a solution if the constant schedule itself
        // fits the budget; otherwise the Theorem 2 target is infeasible and
        // returning θ = 0 would hand back hyperparameters that violate the
        // bound they were solved against.
        if theta <= 0.0 && self.bounds.theorem2_omission_bound(0.0, tau0, t0) > budget {
            return Err(SolveError::NoFeasibleSlope);
        }
        Ok(HyperParameters {
            t0,
            theta,
            tau0,
            delta,
            delta_star,
        })
    }

    /// Convenience: solve with the Section 8.1 default `δ` / `δ*`.
    pub fn solve_with_defaults(&self, tau0: f64) -> Result<HyperParameters, SolveError> {
        let delta = self.default_delta();
        let delta_star = self.default_delta_star(delta);
        self.solve(tau0, delta, delta_star)
    }

    /// Algorithm 3 with a pragmatic fallback, for callers that must produce
    /// *some* run configuration even when the targets are infeasible:
    ///
    /// * When the Theorem 1 bound cannot reach `delta` for any exploration
    ///   length — very aggressive compression combined with a short stream,
    ///   where the bound (correctly) says exploration can never be
    ///   confident — the exploration falls back to the fixed fraction
    ///   `T0 = c·T` that Theorem 3 itself assumes, and `θ` is still
    ///   maximised against the Theorem 2 budget.
    /// * When only the slope is infeasible
    ///   ([`SolveError::NoFeasibleSlope`]), the *solved, Theorem-1-feasible*
    ///   `T0` is kept and the schedule degenerates to the constant threshold
    ///   `τ(t) = τ(T0)` (`θ = 0`) — the least-omission schedule available,
    ///   even though no schedule can meet the Theorem 2 budget here.
    ///
    /// The returned flag reports whether either fallback was taken; when it
    /// is `true` the hyperparameters are best-effort and do **not** certify
    /// the `δ`/`δ*` targets.
    pub fn solve_or_fallback(
        &self,
        tau0: f64,
        delta: f64,
        delta_star: f64,
        fallback_fraction: f64,
    ) -> (HyperParameters, bool) {
        match self.solve(tau0, delta, delta_star) {
            Ok(hp) => (hp, false),
            Err(SolveError::NoFeasibleSlope) => {
                // Theorem 1 was satisfiable — keep its minimal exploration
                // length rather than discarding it for the fixed fraction.
                let t0 = self
                    .solve_t0(tau0, delta)
                    .expect("NoFeasibleSlope implies solve_t0 succeeded");
                (
                    HyperParameters {
                        t0,
                        theta: 0.0,
                        tau0,
                        delta,
                        delta_star,
                    },
                    true,
                )
            }
            Err(_) => {
                let total = self.bounds.total as u64;
                let c = fallback_fraction.clamp(0.01, 0.9);
                let t0 = ((total as f64 * c).round() as u64).clamp(self.gamma.min(total), total);
                let theta = self.solve_theta(t0, tau0, (delta_star - delta).max(1e-3));
                (
                    HyperParameters {
                        t0,
                        theta,
                        tau0,
                        delta,
                        delta_star,
                    },
                    true,
                )
            }
        }
    }
}

/// Accumulates the mean square of observed updates to estimate the noise
/// scale `σ` (the relaxation of Section 7.2: approximate `E[Var(X_i)]` by
/// the mean of `X_i²` over an exploratory prefix of the stream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SigmaEstimator {
    sum_sq: f64,
    count: u64,
}

impl SigmaEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed update value `x` (an `X_i^{(t)}`).
    pub fn push(&mut self, x: f64) {
        self.sum_sq += x * x;
        self.count += 1;
    }

    /// Records the implicit zero updates of pairs skipped thanks to sample
    /// sparsity; they still count towards the average variance.
    pub fn push_zeros(&mut self, n: u64) {
        self.count += n;
    }

    /// Number of updates recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated noise scale `σ = sqrt(mean(X²))`; `None` until at least one
    /// update has been recorded or if the estimate is degenerate (all
    /// zeros).
    pub fn sigma(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let s = (self.sum_sq / self.count as f64).sqrt();
        if s > 0.0 {
            Some(s)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_bounds() -> TheoryBounds {
        let p = 1000u64 * 999 / 2;
        TheoryBounds::new(p, (p / 20) as usize, 5, 0.005, 1.0, 0.5, 1000)
    }

    #[test]
    fn solver_finds_modest_exploration_length() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let t0 = solver.solve_t0(1e-4, 0.05).unwrap();
        assert!(t0 >= 30, "t0 = {t0}");
        assert!(t0 < 500, "exploration should be a fraction of T, got {t0}");
        // Minimality: one step earlier must violate the bound (unless we hit
        // the gamma floor).
        if t0 > 30 {
            assert!(solver.bounds().theorem1_miss_bound(t0 - 1, 1e-4) > 0.05);
        }
        assert!(solver.bounds().theorem1_miss_bound(t0, 1e-4) <= 0.05);
    }

    #[test]
    fn looser_delta_gives_shorter_exploration() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let strict = solver.solve_t0(1e-4, 0.05).unwrap();
        let loose = solver.solve_t0(1e-4, 0.20).unwrap();
        assert!(loose <= strict);
    }

    #[test]
    fn delta_below_saturation_is_rejected() {
        let bounds = table1_bounds().with_worst_case_collisions();
        let solver = HyperParameterSolver::new(bounds);
        // Worst-case SP for these parameters is large, so a tiny delta fails.
        let err = solver.solve_t0(1e-4, 1e-6).unwrap_err();
        assert!(matches!(err, SolveError::DeltaBelowSaturation(_)));
    }

    #[test]
    fn theta_solution_respects_budget_and_maximality() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let t0 = solver.solve_t0(1e-4, 0.05).unwrap();
        let budget = 0.15;
        let theta = solver.solve_theta(t0, 1e-4, budget);
        assert!(theta > 0.0 && theta < 0.5);
        assert!(solver.bounds().theorem2_omission_bound(theta, 1e-4, t0) <= budget + 1e-9);
        // A slightly larger theta must exceed the budget (maximality) unless
        // we are at the upper edge.
        if theta < 0.5 - 1e-3 {
            let over = solver
                .bounds()
                .theorem2_omission_bound(theta + 1e-3, 1e-4, t0);
            assert!(over >= budget - 1e-6, "theta not maximal: over={over}");
        }
    }

    #[test]
    fn tighter_budget_gives_smaller_theta() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let t0 = solver.solve_t0(1e-4, 0.05).unwrap();
        let tight = solver.solve_theta(t0, 1e-4, 0.05);
        let loose = solver.solve_theta(t0, 1e-4, 0.30);
        assert!(loose >= tight);
    }

    #[test]
    fn full_solve_produces_consistent_schedule() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let hp = solver.solve(1e-4, 0.05, 0.20).unwrap();
        assert_eq!(hp.delta, 0.05);
        assert_eq!(hp.delta_star, 0.20);
        let schedule = hp.schedule(1000);
        assert_eq!(schedule.tau(hp.t0), hp.tau0);
        assert!(schedule.tau(1000) > hp.tau0);
        // Final threshold stays below the signal strength: signals should
        // remain sampleable to the end.
        assert!(schedule.tau(1000) < 0.5);
    }

    #[test]
    fn default_delta_matches_section_8_1_rule() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let sp = solver.bounds().saturation_probability();
        let delta = solver.default_delta();
        assert!((delta - (1.01 * sp).max(0.05)).abs() < 1e-12);
        let ds = solver.default_delta_star(delta);
        assert!((ds - (delta + 0.15)).abs() < 1e-12);
    }

    #[test]
    fn solve_with_defaults_is_feasible_for_paper_setup() {
        let solver = HyperParameterSolver::new(table1_bounds());
        let hp = solver.solve_with_defaults(1e-4).unwrap();
        assert!(hp.t0 > 0 && hp.t0 < 1000);
        assert!(hp.theta >= 0.0 && hp.theta < 0.5);
    }

    #[test]
    fn gamma_floor_is_respected() {
        let solver = HyperParameterSolver::new(table1_bounds()).with_gamma(200);
        let t0 = solver.solve_t0(1e-4, 0.5).unwrap();
        assert!(t0 >= 200);
    }

    #[test]
    fn signal_model_from_pilot_percentiles() {
        // 1000 estimates: 980 noise near zero, 20 signals near 0.8. Choosing
        // α = 1% puts the (1 − α) percentile safely inside the signal block.
        let mut est: Vec<f64> = (0..980).map(|i| (i % 7) as f64 * 1e-3).collect();
        est.extend((0..20).map(|_| 0.8));
        let model = SignalModel::from_pilot_estimates(&est, 0.01, 1.0).unwrap();
        assert!(model.u > 0.5, "u = {}", model.u);
        assert!(model.default_tau0() < model.u);
    }

    #[test]
    fn signal_model_rejects_empty_or_nonpositive() {
        assert!(SignalModel::from_pilot_estimates(&[], 0.01, 1.0).is_none());
        let zeros = vec![0.0; 100];
        assert!(SignalModel::from_pilot_estimates(&zeros, 0.01, 1.0).is_none());
    }

    #[test]
    fn sigma_estimator_recovers_scale() {
        let mut s = SigmaEstimator::new();
        for i in 0..1000 {
            // Deterministic ±2 alternation: RMS = 2.
            s.push(if i % 2 == 0 { 2.0 } else { -2.0 });
        }
        assert!((s.sigma().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 1000);
    }

    #[test]
    fn sigma_estimator_counts_skipped_zeros() {
        let mut s = SigmaEstimator::new();
        s.push(3.0);
        s.push_zeros(8);
        // mean square = 9/9 = 1.
        assert!((s.sigma().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_estimator_degenerate_cases() {
        let s = SigmaEstimator::new();
        assert_eq!(s.sigma(), None);
        let mut z = SigmaEstimator::new();
        z.push_zeros(10);
        assert_eq!(z.sigma(), None);
    }
}
