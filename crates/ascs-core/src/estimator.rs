//! High-level one-pass covariance/correlation estimator.
//!
//! [`CovarianceEstimator`] wires together the streaming engine
//! ([`StreamContext`]), a sketch backend (ASCS, vanilla CS, Augmented
//! Sketch or Cold Filter) and the reporting machinery. Every experiment in
//! the benchmark harness — and every example — goes through this type, so
//! the backends are guaranteed to see byte-for-byte identical update
//! streams.

use crate::ascs::AscsSketch;
use crate::config::AscsConfig;
use crate::hyper::{HyperParameterSolver, HyperParameters, SolveError};
use crate::pair::PairIndexer;
use crate::serve::IngestError;
use crate::sharded::{ShardUpdate, ShardedAscs};
use crate::snr::SnrProbe;
use crate::stream::{Sample, StreamContext};
use crate::theory::TheoryBounds;
use crate::timeaware::{DecayedSketch, WindowedSketch, MAX_WINDOW_SEGMENTS};
use ascs_count_sketch::codec::{self, CodecError};
use ascs_count_sketch::{
    AugmentedSketch, ColdFilter, CountSketch, HashPlan, PointSketch, TopKTracker,
};
use serde::{Deserialize, Serialize};

/// Upper bound on the pair universe an ingestion plan may cover: the plan
/// arena costs `4(K + 1)` bytes per pair, so this caps it at ~1.2 GB for
/// `K = 5` — matching the enumeration bound of
/// [`CovarianceEstimator::all_estimates`]. Beyond it, planning per pair is
/// the wrong tool (the tracker-based reporting path is).
pub(crate) const MAX_PLANNED_PAIRS: u64 = 50_000_000;

/// Pair universes up to this size get a throwaway plan built inside
/// [`CovarianceEstimator::all_estimates`] when no ingestion plan is
/// attached: the build hashes each key once — the same work the point-query
/// loop would do — and the blocked sweep then beats the loop. Above it the
/// transient arena allocation outweighs the sweep win, so the plain loop
/// runs instead.
pub(crate) const TRANSIENT_PLAN_PAIRS: u64 = 8_000_000;

/// Why an ingestion plan could not be attached. Callers fall back to the
/// per-update hashed path, which every backend supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// The backend's filter stages hash independently of the count-sketch
    /// family, so a precomputed plan cannot drive them (ASketch / Cold
    /// Filter).
    UnsupportedBackend(SketchBackend),
    /// The pair universe is too large for a plan arena to fit in memory;
    /// use the tracker-based reporting path instead.
    UniverseTooLarge {
        /// Pairs the plan would have to cover.
        pairs: u64,
        /// The supported maximum.
        max: u64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnsupportedBackend(backend) => write!(
                f,
                "ingestion plans require a count-sketch-family backend \
                 (ASCS / vanilla CS), got {backend:?}"
            ),
            PlanError::UniverseTooLarge { pairs, max } => write!(
                f,
                "an ingestion plan over {pairs} pairs would not fit in memory (max {max})"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Which sketching strategy backs the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SketchBackend {
    /// Active Sampling Count Sketch (the paper's contribution).
    Ascs,
    /// ASCS sharded across `shards` key-partitioned worker sketches that
    /// ingest on parallel OS threads and answer queries as if merged (see
    /// [`ShardedAscs`]). Note: the per-update SNR probe is not supported on
    /// this backend (ingestion is deferred to a per-sample batch).
    ShardedAscs {
        /// Number of worker shards (each owns a full-geometry sketch).
        shards: usize,
    },
    /// Vanilla count sketch (Algorithm 1) — the primary baseline.
    VanillaCs,
    /// Augmented Sketch baseline (Roy et al. 2016) with the given filter
    /// capacity (number of exactly tracked hot pairs).
    AugmentedSketch {
        /// Number of filter slots.
        filter_capacity: usize,
    },
    /// Cold Filter baseline (Zhou et al. 2018).
    ColdFilter {
        /// Promotion threshold on accumulated |update| (on the `1/T`-scaled
        /// stream the sketch actually sees).
        threshold: f64,
        /// Buckets per row of the small filter structures.
        filter_range: usize,
    },
    /// Sliding-window covariance over the last `≈ segments · segment_len`
    /// samples: a ring of count-sketch segments merged by linearity at
    /// read time (see [`WindowedSketch`]). Ungated — the stationary-stream
    /// theorems do not cover the windowed estimand, and the gate is what
    /// freezes drift-emergent signals.
    Windowed {
        /// Samples per ring segment (`L`).
        segment_len: u64,
        /// Segments in the ring (`S`); the warm window spans
        /// `(S−1)·L+1 ..= S·L` samples.
        segments: usize,
    },
    /// Exponentially decayed covariance with per-sample decay `γ`,
    /// scale-on-read so tables are never rescaled in place (see
    /// [`DecayedSketch`]). Ungated, like [`SketchBackend::Windowed`].
    Decayed {
        /// Per-sample decay factor, strictly inside `(0, 1)`.
        gamma: f64,
    },
}

/// One reported pair: the feature indices, the linear key and the final
/// estimate of its mean (covariance or correlation, per the config).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportedPair {
    /// Linear pair key.
    pub key: u64,
    /// First feature index (`a < b`).
    pub a: u64,
    /// Second feature index.
    pub b: u64,
    /// Estimated mean of the pair's updates (≈ covariance or correlation).
    pub estimate: f64,
}

enum BackendState {
    Ascs(AscsSketch),
    Sharded {
        sketch: ShardedAscs,
        /// Per-sample update batch, flushed through
        /// [`ShardedAscs::offer_batch`] at the end of each sample.
        pending: Vec<ShardUpdate>,
    },
    Asketch {
        sketch: AugmentedSketch,
        tracker: TopKTracker,
    },
    Cold {
        sketch: ColdFilter,
        tracker: TopKTracker,
    },
    Windowed(WindowedSketch),
    Decayed(DecayedSketch),
}

impl BackendState {
    fn estimate(&self, key: u64) -> f64 {
        match self {
            Self::Ascs(a) => a.estimate(key),
            Self::Sharded { sketch, .. } => sketch.estimate(key),
            Self::Asketch { sketch, .. } => sketch.estimate(key),
            Self::Cold { sketch, .. } => sketch.estimate(key),
            Self::Windowed(w) => w.estimate(key),
            Self::Decayed(d) => d.estimate(key),
        }
    }

    /// The `k` top tracked pairs — partial selection over the retained set
    /// (the sharded layer's cross-shard merge already truncates internally).
    /// The time-aware backends keep no tracker (updates are raw, not
    /// `1/T`-scaled, so a running tracker would rank stale magnitudes);
    /// [`CovarianceEstimator::top_pairs`] ranks them by a whole-universe
    /// sweep instead.
    fn top_pairs(&self, k: usize) -> Vec<(u64, f64)> {
        match self {
            Self::Ascs(a) => a.top_pairs_limit(k),
            Self::Sharded { sketch, .. } => {
                let mut top = sketch.top_pairs();
                top.truncate(k);
                top
            }
            Self::Asketch { tracker, .. } | Self::Cold { tracker, .. } => tracker.top_descending(k),
            Self::Windowed(_) | Self::Decayed(_) => {
                unreachable!("time-aware backends are ranked by the estimator's sweep")
            }
        }
    }

    fn memory_words(&self) -> usize {
        match self {
            Self::Ascs(a) => a.memory_words(),
            Self::Sharded { sketch, .. } => sketch.memory_words(),
            Self::Asketch { sketch, .. } => sketch.memory_words(),
            Self::Cold { sketch, .. } => sketch.memory_words(),
            Self::Windowed(w) => w.memory_words(),
            Self::Decayed(d) => d.memory_words(),
        }
    }
}

/// One-pass estimator of the large entries of a covariance/correlation
/// matrix.
pub struct CovarianceEstimator {
    config: AscsConfig,
    ctx: StreamContext,
    backend: BackendState,
    backend_kind: SketchBackend,
    hyper: Option<HyperParameters>,
    probe: Option<SnrProbe>,
    /// Precomputed ingestion plan over the dense pair universe `0..p`
    /// (slot == pair key). When present, `process_sample` resolves each
    /// emitted pair to its plan slot and replays arena entries instead of
    /// hashing, and `all_estimates` runs one blocked sweep instead of `p`
    /// point queries. See [`CovarianceEstimator::with_ingestion_plan`].
    plan: Option<HashPlan>,
    t: u64,
    /// Samples rejected at the ingest boundary for carrying a non-finite
    /// value. Diagnostic state only — not serialized (quarantined samples
    /// never touched the estimator), so a resumed estimator restarts at 0.
    quarantined_samples: u64,
}

impl CovarianceEstimator {
    /// Builds an estimator. For the [`SketchBackend::Ascs`] backend the
    /// hyperparameters `(T0, θ)` are derived from the config via
    /// Algorithm 3; the other backends need no solving.
    pub fn new(config: AscsConfig, backend: SketchBackend) -> Result<Self, SolveError> {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ASCS configuration: {e}"));
        let hyper = match backend {
            SketchBackend::Ascs | SketchBackend::ShardedAscs { .. } => {
                let bounds = TheoryBounds::new(
                    config.num_pairs(),
                    config.geometry.range,
                    config.geometry.rows,
                    config.alpha,
                    config.sigma,
                    config.signal_strength,
                    config.total_samples,
                );
                let solver = HyperParameterSolver::new(bounds);
                Some(solver.solve(config.tau0, config.delta, config.delta_star)?)
            }
            _ => None,
        };
        Ok(Self::with_hyperparameters(config, backend, hyper))
    }

    /// Like [`CovarianceEstimator::new`], but never fails: when Algorithm 3
    /// cannot satisfy the Theorem 1 target (extremely aggressive
    /// compression with a short stream), the exploration length falls back
    /// to 10 % of the stream — the fixed-fraction setting Theorem 3 itself
    /// analyses. Returns the estimator plus a flag saying whether the
    /// fallback was used.
    pub fn new_or_fallback(config: AscsConfig, backend: SketchBackend) -> (Self, bool) {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ASCS configuration: {e}"));
        let (hyper, fell_back) = match backend {
            SketchBackend::Ascs | SketchBackend::ShardedAscs { .. } => {
                let bounds = TheoryBounds::new(
                    config.num_pairs(),
                    config.geometry.range,
                    config.geometry.rows,
                    config.alpha,
                    config.sigma,
                    config.signal_strength,
                    config.total_samples,
                );
                let solver = HyperParameterSolver::new(bounds);
                let (hp, fell_back) =
                    solver.solve_or_fallback(config.tau0, config.delta, config.delta_star, 0.1);
                (Some(hp), fell_back)
            }
            _ => (None, false),
        };
        (
            Self::with_hyperparameters(config, backend, hyper),
            fell_back,
        )
    }

    /// Builds an estimator with explicitly supplied hyperparameters
    /// (bypassing Algorithm 3) — used by the validation experiments that
    /// sweep `T0` and `θ` directly.
    pub fn with_hyperparameters(
        config: AscsConfig,
        backend: SketchBackend,
        hyper: Option<HyperParameters>,
    ) -> Self {
        let ctx = StreamContext::new(config.dim, config.update_mode, config.estimand);
        let backend_state = match backend {
            SketchBackend::Ascs => {
                let hp = hyper.expect("ASCS backend requires hyperparameters");
                BackendState::Ascs(AscsSketch::new(
                    config.geometry,
                    &hp,
                    config.total_samples,
                    config.top_k_capacity,
                    config.seed,
                ))
            }
            SketchBackend::ShardedAscs { shards } => {
                let hp = hyper.expect("sharded ASCS backend requires hyperparameters");
                BackendState::Sharded {
                    sketch: ShardedAscs::new(
                        config.geometry,
                        &hp,
                        config.total_samples,
                        config.top_k_capacity,
                        config.seed,
                        shards,
                    ),
                    pending: Vec::new(),
                }
            }
            SketchBackend::VanillaCs => BackendState::Ascs(AscsSketch::vanilla(
                config.geometry,
                config.total_samples,
                config.top_k_capacity,
                config.seed,
            )),
            SketchBackend::AugmentedSketch { filter_capacity } => BackendState::Asketch {
                sketch: AugmentedSketch::new(
                    config.geometry.rows,
                    config.geometry.range,
                    filter_capacity,
                    config.seed,
                ),
                tracker: TopKTracker::new(config.top_k_capacity),
            },
            SketchBackend::ColdFilter {
                threshold,
                filter_range,
            } => BackendState::Cold {
                sketch: ColdFilter::new(
                    config.geometry.rows,
                    config.geometry.range,
                    2,
                    filter_range,
                    threshold,
                    config.seed,
                ),
                tracker: TopKTracker::new(config.top_k_capacity),
            },
            SketchBackend::Windowed {
                segment_len,
                segments,
            } => BackendState::Windowed(WindowedSketch::new(
                config.geometry.rows,
                config.geometry.range,
                config.seed,
                segment_len,
                segments,
            )),
            SketchBackend::Decayed { gamma } => BackendState::Decayed(DecayedSketch::new(
                config.geometry.rows,
                config.geometry.range,
                config.seed,
                gamma,
            )),
        };
        Self {
            config,
            ctx,
            backend: backend_state,
            backend_kind: backend,
            hyper,
            probe: None,
            plan: None,
            t: 0,
            quarantined_samples: 0,
        }
    }

    /// Attaches a precomputed [`HashPlan`] over the dense pair universe
    /// `0..p` (built in parallel for large sets): every pair update of every
    /// subsequent sample resolves to its plan slot — the pair key itself, no
    /// map — and replays precomputed `(bucket, sign)` locations instead of
    /// re-hashing, and [`CovarianceEstimator::all_estimates`] answers all
    /// `p` queries in one cache-blocked sweep. Results are bit-identical to
    /// the unplanned path; only the work per update changes.
    ///
    /// For the sharded backend the slot → shard routing table is also
    /// precomputed, so shard partitioning stops hashing per update too.
    ///
    /// # Errors
    /// Returns [`PlanError::UnsupportedBackend`] on the ASketch / Cold
    /// Filter backends (their filter stages hash independently of the
    /// count-sketch family, so a plan cannot drive them) and
    /// [`PlanError::UniverseTooLarge`] on pair universes beyond 5·10⁷ (the
    /// plan arena would not fit in memory — use the tracker-based
    /// reporting path). In both cases the estimator is untouched and keeps
    /// hashing per update.
    pub fn with_ingestion_plan(mut self) -> Result<Self, PlanError> {
        self.attach_ingestion_plan()?;
        Ok(self)
    }

    /// In-place form of [`CovarianceEstimator::with_ingestion_plan`], for
    /// callers that want to fall back to the hashed path without losing
    /// the estimator on failure.
    ///
    /// # Errors
    /// Same conditions as [`CovarianceEstimator::with_ingestion_plan`]; on
    /// `Err` the estimator is unchanged.
    pub fn attach_ingestion_plan(&mut self) -> Result<(), PlanError> {
        let p = self.config.num_pairs();
        if p > MAX_PLANNED_PAIRS {
            return Err(PlanError::UniverseTooLarge {
                pairs: p,
                max: MAX_PLANNED_PAIRS,
            });
        }
        let plan = match &self.backend {
            BackendState::Ascs(a) => a.sketch().build_plan(p as usize),
            BackendState::Sharded { sketch, .. } => {
                sketch.workers()[0].sketch().build_plan(p as usize)
            }
            BackendState::Windowed(w) => w.build_plan(p as usize),
            BackendState::Decayed(d) => d.build_plan(p as usize),
            BackendState::Asketch { .. } | BackendState::Cold { .. } => {
                return Err(PlanError::UnsupportedBackend(self.backend_kind));
            }
        };
        if let BackendState::Sharded { sketch, .. } = &mut self.backend {
            sketch.build_slot_router(p as usize);
        }
        self.plan = Some(plan);
        Ok(())
    }

    /// The attached ingestion plan, if any.
    pub fn ingestion_plan(&self) -> Option<&HashPlan> {
        self.plan.as_ref()
    }

    /// Attaches an SNR probe that knows the ground-truth signal keys
    /// (Figure 5 instrumentation).
    ///
    /// # Panics
    /// Panics on the [`SketchBackend::ShardedAscs`] backend: sharded
    /// ingestion defers updates to a per-sample batch, so per-update
    /// insertion outcomes are not observable and the probe would silently
    /// record nothing — a meaningless (all-zero) SNR series. Probe a
    /// sequential backend instead.
    pub fn with_snr_probe(mut self, signal_keys: impl IntoIterator<Item = u64>) -> Self {
        assert!(
            !matches!(self.backend_kind, SketchBackend::ShardedAscs { .. }),
            "the SNR probe is not supported on the sharded backend \
             (per-update insertion outcomes are batched away)"
        );
        self.probe = Some(SnrProbe::new(signal_keys));
        self
    }

    /// The configuration this estimator runs with.
    pub fn config(&self) -> &AscsConfig {
        &self.config
    }

    /// The backend kind.
    pub fn backend(&self) -> SketchBackend {
        self.backend_kind
    }

    /// The hyperparameters Algorithm 3 produced (ASCS backend only).
    pub fn hyperparameters(&self) -> Option<&HyperParameters> {
        self.hyper.as_ref()
    }

    /// Number of samples processed so far.
    pub fn processed_samples(&self) -> u64 {
        self.t
    }

    /// The pair indexer (shared coordinates with the evaluation layer).
    pub fn indexer(&self) -> &PairIndexer {
        self.ctx.indexer()
    }

    /// The attached SNR probe, if any.
    pub fn snr_probe(&self) -> Option<&SnrProbe> {
        self.probe.as_ref()
    }

    /// Memory footprint of the sketch state in float-equivalent words.
    pub fn memory_words(&self) -> usize {
        self.backend.memory_words()
    }

    /// Number of updates inserted / skipped (skipped is only non-zero for
    /// the ASCS backend).
    pub fn update_counts(&self) -> (u64, u64) {
        match &self.backend {
            BackendState::Ascs(a) => (a.inserted_updates(), a.skipped_updates()),
            BackendState::Sharded { sketch, .. } => {
                (sketch.inserted_updates(), sketch.skipped_updates())
            }
            BackendState::Asketch { sketch, .. } => (sketch.sketch().update_count(), 0),
            BackendState::Cold { sketch, .. } => {
                (sketch.promoted_updates() + sketch.cold_updates(), 0)
            }
            BackendState::Windowed(w) => (w.ingested_updates(), 0),
            BackendState::Decayed(d) => (d.ingested_updates(), 0),
        }
    }

    /// Samples rejected for carrying NaN/±inf. A quarantined sample
    /// changes *nothing*: no stream time, no feature moments, no sketch
    /// state — one poisoned coordinate would otherwise corrupt every
    /// bucket its pair updates hash into, unrecoverably.
    pub fn quarantined_samples(&self) -> u64 {
        self.quarantined_samples
    }

    /// [`CovarianceEstimator::process_sample`] with the non-finite
    /// quarantine surfaced as a typed error: the whole sample is screened
    /// *before* any state is touched, so on `Err` the estimator is exactly
    /// as it was (apart from the quarantine counter) and previously learned
    /// estimates are unchanged.
    ///
    /// # Errors
    /// [`IngestError::NonFinite`] with the offending feature index and
    /// value when the sample carries NaN or ±inf.
    pub fn try_process_sample(&mut self, sample: &Sample) -> Result<u64, IngestError> {
        if let Some((index, value)) = sample.first_non_finite() {
            self.quarantined_samples += 1;
            return Err(IngestError::NonFinite { index, value });
        }
        Ok(self.ingest_sample(sample))
    }

    /// Processes one sample; returns the number of pair updates it emitted.
    /// Non-finite samples are quarantined (counted, then dropped, emitting
    /// 0 updates) — use [`CovarianceEstimator::try_process_sample`] to
    /// observe the rejection as a typed error instead.
    ///
    /// The per-sample invariants — the sampling gate (`τ(t−1)`, phase) and
    /// the `1/T` scaling — are hoisted out of the `O(d²)` pair-update loop:
    /// they depend only on `t`, so they are computed once here rather than
    /// once per emitted pair.
    pub fn process_sample(&mut self, sample: &Sample) -> u64 {
        self.try_process_sample(sample).unwrap_or(0)
    }

    /// The post-quarantine ingestion body shared by the checked and
    /// unchecked entry points.
    fn ingest_sample(&mut self, sample: &Sample) -> u64 {
        self.t += 1;
        let t = self.t;
        let inv_total = 1.0 / self.config.total_samples as f64;
        let gate = match &self.backend {
            BackendState::Ascs(a) => Some(a.sample_gate(t)),
            _ => None,
        };
        // The time-aware backends keep their own stream clock: advance it
        // (rotating window segments / the decay accumulator) before this
        // sample's updates land. A segment retired here has fallen out of
        // the window — the estimator's window semantics is to forget it
        // (standalone [`WindowedSketch`] users can spill it instead).
        match &mut self.backend {
            BackendState::Windowed(w) => {
                let _ = w.begin_sample();
            }
            BackendState::Decayed(d) => d.begin_sample(),
            _ => {}
        }
        let backend = &mut self.backend;
        let probe = &mut self.probe;
        let plan = self.plan.as_ref();
        if let Some(p) = probe.as_mut() {
            p.begin_sample();
        }
        let emitted = self.ctx.ingest(sample, |update| {
            let inserted = match backend {
                BackendState::Ascs(a) => {
                    let gate = gate.expect("gate set for ASCS");
                    // Dense pair keys are their own plan slots, so the
                    // planned path needs no key → slot map.
                    match plan {
                        Some(plan) => a.offer_planned(plan, update.key, update.value, gate),
                        None => a.offer_gated(update.key, update.value, gate),
                    }
                    .inserted
                }
                BackendState::Sharded { pending, .. } => {
                    // Deferred: the batch is flushed (in parallel) below.
                    pending.push(ShardUpdate {
                        key: update.key,
                        value: update.value,
                        t,
                    });
                    false
                }
                BackendState::Asketch { sketch, tracker } => {
                    sketch.update(update.key, update.value * inv_total);
                    tracker.offer(update.key, sketch.estimate(update.key).abs());
                    true
                }
                BackendState::Cold { sketch, tracker } => {
                    sketch.update(update.key, update.value * inv_total);
                    tracker.offer(update.key, sketch.estimate(update.key).abs());
                    true
                }
                // Raw values: the windowed/decayed estimates normalise at
                // read time (by window length / total decayed weight), not
                // by a fixed `1/T` at ingest.
                BackendState::Windowed(w) => {
                    match plan {
                        Some(plan) => w.ingest_planned(plan, update.key as usize, update.value),
                        None => w.ingest(update.key, update.value),
                    }
                    true
                }
                BackendState::Decayed(d) => {
                    match plan {
                        Some(plan) => d.ingest_planned(plan, update.key as usize, update.value),
                        None => d.ingest(update.key, update.value),
                    }
                    true
                }
            };
            if inserted {
                if let Some(p) = probe.as_mut() {
                    p.record_inserted(update.key, update.value);
                }
            }
        });
        if let BackendState::Sharded { sketch, pending } = &mut self.backend {
            match &self.plan {
                Some(plan) => sketch.offer_batch_planned(plan, pending),
                None => sketch.offer_batch(pending),
            }
            pending.clear();
        }
        if let Some(p) = probe.as_mut() {
            p.end_sample();
        }
        emitted
    }

    /// Processes every sample of an iterator.
    pub fn process_all<'a>(&mut self, samples: impl IntoIterator<Item = &'a Sample>) -> u64 {
        samples.into_iter().map(|s| self.process_sample(s)).sum()
    }

    /// Final estimate for the pair `(a, b)`.
    pub fn estimate_pair(&self, a: u64, b: u64) -> f64 {
        self.backend.estimate(self.ctx.indexer().index(a, b))
    }

    /// Final estimate for a linear pair key.
    pub fn estimate_key(&self, key: u64) -> f64 {
        self.backend.estimate(key)
    }

    /// Estimates for every pair key in `0..p` — only sensible for moderate
    /// dimensionality (the rigorous-evaluation setting of Section 8.3).
    ///
    /// For the count-sketch-family backends this runs as **one blocked
    /// sweep** ([`CountSketch::estimate_many`]) over the ingestion plan
    /// (building a throwaway plan when none is attached — the build hashes
    /// each key once, exactly what the point-query loop would have done)
    /// rather than `p` independent point queries; the sharded backend
    /// materialises its merged table once instead of summing across workers
    /// `p` times. Values are identical to per-key [`estimate_key`]
    /// (bit-identical for the sequential backends).
    ///
    /// [`estimate_key`]: CovarianceEstimator::estimate_key
    pub fn all_estimates(&self) -> Vec<f64> {
        let p = self.config.num_pairs();
        assert!(
            p <= MAX_PLANNED_PAIRS,
            "enumerating {p} pairs would be prohibitively slow; use top_pairs()"
        );
        match &self.backend {
            BackendState::Ascs(a) => self.sweep_estimates(a.sketch(), p),
            BackendState::Sharded { sketch, .. } => {
                self.sweep_estimates(&sketch.merged_sketch(), p)
            }
            // The merged table holds the same per-bucket sums, added in the
            // same order, as the per-key read path — so after the identical
            // normalising division the sweep is bit-identical to
            // `estimate_key`.
            BackendState::Windowed(w) => {
                let mut out = self.sweep_estimates(&w.merged_sketch(), p);
                let n = w.window_len();
                if n > 0 {
                    for v in &mut out {
                        *v /= n as f64;
                    }
                }
                out
            }
            BackendState::Decayed(d) => {
                let mut out = self.sweep_estimates(&d.merged_sketch(), p);
                if d.t() > 0 {
                    let norm = d.weight_norm();
                    for v in &mut out {
                        *v /= norm;
                    }
                }
                out
            }
            _ => (0..p).map(|key| self.backend.estimate(key)).collect(),
        }
    }

    /// Blocked whole-universe sweep over `sketch`, reusing the attached
    /// plan when present and the universe is still in bounds.
    fn sweep_estimates(&self, sketch: &CountSketch, p: u64) -> Vec<f64> {
        let mut out = Vec::new();
        match &self.plan {
            Some(plan) if plan.len() as u64 >= p => sketch.estimate_many(plan, &mut out),
            _ if p <= TRANSIENT_PLAN_PAIRS => {
                sketch.estimate_many(&sketch.build_plan(p as usize), &mut out);
            }
            _ => out.extend((0..p).map(|key| sketch.estimate(key))),
        }
        out.truncate(p as usize);
        out
    }

    /// The top tracked pairs (largest estimate magnitude first), decoded
    /// into feature coordinates. At most `k` pairs are returned; the
    /// selection is partial (heap-select of `k`) rather than a full sort of
    /// the tracker's retained set.
    pub fn top_pairs(&self, k: usize) -> Vec<ReportedPair> {
        let indexer = self.ctx.indexer();
        let ranked = match &self.backend {
            // No tracker on the time-aware backends: rank the whole
            // universe by current estimate magnitude (the configured
            // tracker capacity still bounds the retained set, matching the
            // other backends' reporting contract). Like the trackers, the
            // reported value is the |estimate| score.
            BackendState::Windowed(_) | BackendState::Decayed(_) => {
                let mut scored: Vec<(u64, f64)> = self
                    .all_estimates()
                    .into_iter()
                    .enumerate()
                    .map(|(key, v)| (key as u64, v.abs()))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scored.truncate(k.min(self.config.top_k_capacity));
                scored
            }
            _ => self.backend.top_pairs(k),
        };
        ranked
            .into_iter()
            .map(|(key, estimate)| {
                let (a, b) = indexer.pair(key);
                ReportedPair {
                    key,
                    a,
                    b,
                    estimate,
                }
            })
            .collect()
    }

    /// Checkpoints the full estimator state: configuration, backend kind,
    /// solved hyperparameters, sample counter, stream context and the
    /// backend sketch record. A [`CovarianceEstimator::resume`]d estimator
    /// continues the stream bit-identically to one that never stopped.
    ///
    /// The ingestion plan and the SNR probe are deliberately *not*
    /// serialized: the plan is a pure function of the sketch's hash family
    /// (re-attach it after resume via
    /// [`CovarianceEstimator::attach_ingestion_plan`] — planned and hashed
    /// ingestion are bit-identical anyway), and the probe is ground-truth
    /// instrumentation, not estimator state.
    ///
    /// # Errors
    /// Returns [`CodecError::Unsupported`] on the ASketch / Cold Filter
    /// backends — their filter stages have no checkpoint codec; only the
    /// count-sketch-family backends participate in the lifecycle.
    pub fn checkpoint<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        let backend_tag = match (&self.backend, self.backend_kind) {
            (BackendState::Ascs(_), SketchBackend::VanillaCs) => 2u8,
            (BackendState::Ascs(_), _) => 0u8,
            (BackendState::Sharded { .. }, _) => 1u8,
            (BackendState::Windowed(_), _) => 3u8,
            (BackendState::Decayed(_), _) => 4u8,
            (BackendState::Asketch { .. } | BackendState::Cold { .. }, _) => {
                return Err(CodecError::Unsupported(
                    "checkpointing requires a count-sketch-family backend (ASCS / vanilla CS)",
                ));
            }
        };
        codec::write_header(w, codec::TAG_ESTIMATOR)?;
        let c = &self.config;
        codec::write_u64(w, c.dim)?;
        codec::write_u64(w, c.total_samples)?;
        codec::write_u64(w, c.geometry.rows as u64)?;
        codec::write_u64(w, c.geometry.range as u64)?;
        codec::write_f64(w, c.alpha)?;
        codec::write_f64(w, c.signal_strength)?;
        codec::write_f64(w, c.sigma)?;
        codec::write_f64(w, c.delta)?;
        codec::write_f64(w, c.delta_star)?;
        codec::write_f64(w, c.tau0)?;
        codec::write_u8(w, c.estimand as u8)?;
        codec::write_u8(w, c.update_mode as u8)?;
        codec::write_u64(w, c.seed)?;
        codec::write_u64(w, c.top_k_capacity as u64)?;
        codec::write_u8(w, backend_tag)?;
        if let SketchBackend::ShardedAscs { shards } = self.backend_kind {
            codec::write_u64(w, shards as u64)?;
        }
        if let SketchBackend::Windowed {
            segment_len,
            segments,
        } = self.backend_kind
        {
            codec::write_u64(w, segment_len)?;
            codec::write_u64(w, segments as u64)?;
        }
        if let SketchBackend::Decayed { gamma } = self.backend_kind {
            codec::write_f64(w, gamma)?;
        }
        match &self.hyper {
            Some(hp) => {
                codec::write_bool(w, true)?;
                codec::write_u64(w, hp.t0)?;
                codec::write_f64(w, hp.theta)?;
                codec::write_f64(w, hp.tau0)?;
                codec::write_f64(w, hp.delta)?;
                codec::write_f64(w, hp.delta_star)?;
            }
            None => codec::write_bool(w, false)?,
        }
        codec::write_u64(w, self.t)?;
        self.ctx.save(w)?;
        match &self.backend {
            BackendState::Ascs(a) => a.save(w),
            BackendState::Sharded { sketch, .. } => sketch.save(w),
            BackendState::Windowed(win) => win.save(w),
            BackendState::Decayed(d) => d.save(w),
            // Unreachable: filtered out when computing backend_tag above.
            _ => Err(CodecError::Unsupported(
                "checkpointing requires a count-sketch-family backend (ASCS / vanilla CS)",
            )),
        }
    }

    /// Restores an estimator checkpointed by
    /// [`CovarianceEstimator::checkpoint`]. The restored configuration is
    /// re-validated, so corrupt bytes surface as [`CodecError`] rather than
    /// a panic downstream.
    pub fn resume<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_ESTIMATOR)?;
        let dim = codec::read_u64(r)?;
        let total_samples = codec::read_u64(r)?;
        let rows = codec::read_len(r, 1 << 16, "sketch row count out of range")?;
        let range = codec::read_len(r, 1 << 40, "sketch range out of range")?;
        let alpha = codec::read_f64(r)?;
        let signal_strength = codec::read_f64(r)?;
        let sigma = codec::read_f64(r)?;
        let delta = codec::read_f64(r)?;
        let delta_star = codec::read_f64(r)?;
        let tau0 = codec::read_f64(r)?;
        let estimand = match codec::read_u8(r)? {
            0 => crate::config::EstimandKind::Covariance,
            1 => crate::config::EstimandKind::Correlation,
            _ => return Err(CodecError::Corrupt("unknown estimand kind")),
        };
        let update_mode = match codec::read_u8(r)? {
            0 => crate::config::UpdateMode::Product,
            1 => crate::config::UpdateMode::Centered,
            _ => return Err(CodecError::Corrupt("unknown update mode")),
        };
        let seed = codec::read_u64(r)?;
        let top_k_capacity = codec::read_len(r, 1 << 28, "tracker capacity out of range")?;
        let config = AscsConfig {
            dim,
            total_samples,
            geometry: crate::config::SketchGeometry { rows, range },
            alpha,
            signal_strength,
            sigma,
            delta,
            delta_star,
            tau0,
            estimand,
            update_mode,
            seed,
            top_k_capacity,
        };
        if config.validate().is_err() {
            return Err(CodecError::Corrupt("checkpointed configuration is invalid"));
        }
        let backend_kind = match codec::read_u8(r)? {
            0 => SketchBackend::Ascs,
            1 => {
                let shards = codec::read_len(
                    r,
                    crate::sharded::MAX_SHARDS as u64,
                    "shard count out of range",
                )?;
                if shards == 0 {
                    return Err(CodecError::Corrupt("shard count out of range"));
                }
                SketchBackend::ShardedAscs { shards }
            }
            2 => SketchBackend::VanillaCs,
            3 => {
                let segment_len = codec::read_u64(r)?;
                let segments = codec::read_len(
                    r,
                    MAX_WINDOW_SEGMENTS as u64,
                    "window segment count out of range",
                )?;
                if segment_len == 0 || segments == 0 {
                    return Err(CodecError::Corrupt("window geometry out of range"));
                }
                SketchBackend::Windowed {
                    segment_len,
                    segments,
                }
            }
            4 => {
                let gamma = codec::read_f64(r)?;
                if !(gamma.is_finite() && gamma > 0.0 && gamma < 1.0) {
                    return Err(CodecError::Corrupt("decay factor outside (0, 1)"));
                }
                SketchBackend::Decayed { gamma }
            }
            _ => return Err(CodecError::Corrupt("unknown backend kind")),
        };
        let hyper = if codec::read_bool(r)? {
            let t0 = codec::read_u64(r)?;
            let theta = codec::read_f64(r)?;
            let tau0 = codec::read_f64(r)?;
            let delta = codec::read_f64(r)?;
            let delta_star = codec::read_f64(r)?;
            Some(HyperParameters {
                t0,
                theta,
                tau0,
                delta,
                delta_star,
            })
        } else {
            None
        };
        let t = codec::read_u64(r)?;
        let ctx = StreamContext::restore(r)?;
        if ctx.dim() != config.dim {
            return Err(CodecError::Corrupt(
                "stream context dimensionality disagrees with the configuration",
            ));
        }
        let backend = match backend_kind {
            SketchBackend::Ascs | SketchBackend::VanillaCs => {
                BackendState::Ascs(AscsSketch::restore(r)?)
            }
            SketchBackend::ShardedAscs { shards } => {
                let sketch = ShardedAscs::restore(r)?;
                if sketch.shards() != shards {
                    return Err(CodecError::Corrupt(
                        "sharded backend shard count disagrees with the backend kind",
                    ));
                }
                BackendState::Sharded {
                    sketch,
                    pending: Vec::new(),
                }
            }
            SketchBackend::Windowed {
                segment_len,
                segments,
            } => {
                let win = WindowedSketch::restore(r)?;
                if win.segment_len() != segment_len || win.segment_count() != segments {
                    return Err(CodecError::Corrupt(
                        "windowed ring geometry disagrees with the backend kind",
                    ));
                }
                if win.t() != t {
                    return Err(CodecError::Corrupt(
                        "windowed ring stream clock disagrees with the estimator",
                    ));
                }
                BackendState::Windowed(win)
            }
            SketchBackend::Decayed { gamma } => {
                let d = DecayedSketch::restore(r)?;
                if d.gamma().to_bits() != gamma.to_bits() {
                    return Err(CodecError::Corrupt(
                        "decay factor disagrees with the backend kind",
                    ));
                }
                if d.t() != t {
                    return Err(CodecError::Corrupt(
                        "decayed sketch stream clock disagrees with the estimator",
                    ));
                }
                BackendState::Decayed(d)
            }
            _ => unreachable!("backend tag decoding covers CS-family kinds only"),
        };
        Ok(Self {
            config,
            ctx,
            backend,
            backend_kind,
            hyper,
            probe: None,
            plan: None,
            t,
            quarantined_samples: 0,
        })
    }

    /// Restores another process's checkpoint and merges it into `self` via
    /// count sketch linearity: sketch tables, insert/skip counters and
    /// sample counts add; trackers are re-scored against the merged tables;
    /// per-feature moments combine with Chan's parallel update.
    ///
    /// Both estimators must have been built from the *same configuration*
    /// (geometry, seed, schedule, backend kind) over disjoint stream
    /// halves. When the update stream is linear — product-mode updates with
    /// an always-pass gate, or gate decisions that agree with sequential
    /// ingestion (disjoint keys, collision-free buckets) — the merged
    /// estimates are bit-identical to single-process sequential ingestion;
    /// see the ingestion-equivalence test suite for the exact conditions.
    ///
    /// # Errors
    /// [`CodecError::Incompatible`] when configurations or backend kinds
    /// differ; any [`CodecError`] the checkpoint itself fails with.
    pub fn merge_from_checkpoint<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), CodecError> {
        let other = Self::resume(r)?;
        if self.config != other.config {
            return Err(CodecError::Incompatible("estimator configuration mismatch"));
        }
        if self.backend_kind != other.backend_kind {
            return Err(CodecError::Incompatible("estimator backend kind mismatch"));
        }
        match (&mut self.backend, &other.backend) {
            (BackendState::Ascs(mine), BackendState::Ascs(theirs)) => {
                mine.merge_restored(theirs)?;
            }
            (
                BackendState::Sharded { sketch: mine, .. },
                BackendState::Sharded { sketch: theirs, .. },
            ) => {
                mine.merge_restored(theirs)?;
            }
            (BackendState::Windowed(_), BackendState::Windowed(_))
            | (BackendState::Decayed(_), BackendState::Decayed(_)) => {
                // Estimator-level merge glues *disjoint stream halves*
                // (`t` adds) — undefined for time-indexed state, where the
                // two halves occupy different windows / decay horizons.
                // Key-partitioned, time-aligned merges go through
                // `WindowedSketch::merge_restored` /
                // `DecayedSketch::merge_restored` instead.
                return Err(CodecError::Unsupported(
                    "time-aware backends cannot merge time-split checkpoints; \
                     merge time-aligned sketches via merge_restored instead",
                ));
            }
            _ => {
                return Err(CodecError::Incompatible("estimator backend kind mismatch"));
            }
        }
        self.ctx.merge_from(&other.ctx);
        self.t += other.t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EstimandKind, SketchGeometry, UpdateMode};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Builds a small low-SNR stream: `dim` features, the pair (0, 1) is a
    /// true signal (features 0 and 1 are strongly correlated), everything
    /// else is independent noise.
    fn correlated_stream(dim: usize, n: usize, rho: f64, seed: u64) -> Vec<Sample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0_f64)).collect();
                // Make feature 1 a noisy copy of feature 0.
                v[1] = rho * v[0] + (1.0 - rho) * rng.gen_range(-1.0..1.0);
                Sample::dense(v)
            })
            .collect()
    }

    fn config(dim: u64, total: u64, range: usize) -> AscsConfig {
        AscsConfig {
            dim,
            total_samples: total,
            geometry: SketchGeometry::new(5, range),
            alpha: 0.02,
            signal_strength: 0.1,
            sigma: 0.2,
            delta: 0.05,
            delta_star: 0.20,
            tau0: 1e-4,
            estimand: EstimandKind::Covariance,
            update_mode: UpdateMode::Product,
            seed: 11,
            top_k_capacity: 50,
        }
    }

    #[test]
    fn ascs_backend_solves_hyperparameters() {
        let est = CovarianceEstimator::new(config(50, 2000, 2000), SketchBackend::Ascs).unwrap();
        let hp = est.hyperparameters().unwrap();
        assert!(hp.t0 > 0 && hp.t0 < 2000);
        assert!(hp.theta >= 0.0 && hp.theta < 0.1);
    }

    #[test]
    fn vanilla_backend_never_skips() {
        let cfg = config(20, 200, 500);
        let samples = correlated_stream(20, 200, 0.9, 3);
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).unwrap();
        est.process_all(samples.iter());
        let (inserted, skipped) = est.update_counts();
        assert!(inserted > 0);
        assert_eq!(skipped, 0);
        assert_eq!(est.processed_samples(), 200);
    }

    #[test]
    fn signal_pair_is_recovered_by_both_cs_and_ascs() {
        let dim = 30u64;
        let n = 1500usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 7);
        for backend in [SketchBackend::VanillaCs, SketchBackend::Ascs] {
            let cfg = config(dim, n as u64, 4000);
            let mut est = CovarianceEstimator::new(cfg, backend).unwrap();
            est.process_all(samples.iter());
            let top = est.top_pairs(5);
            assert!(!top.is_empty(), "{backend:?} reported nothing");
            assert_eq!(
                (top[0].a, top[0].b),
                (0, 1),
                "{backend:?} failed to put the planted pair first: {top:?}"
            );
            // The estimate should be near the true covariance of the pair,
            // which for this construction is ≈ rho * Var(Y0) ≈ 0.95/3.
            assert!(top[0].estimate > 0.15, "{backend:?}: {}", top[0].estimate);
        }
    }

    #[test]
    fn ascs_skips_noise_updates_after_exploration() {
        let dim = 30u64;
        let n = 1500usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 13);
        let cfg = config(dim, n as u64, 1000);
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::Ascs).unwrap();
        est.process_all(samples.iter());
        let (inserted, skipped) = est.update_counts();
        assert!(skipped > 0, "ASCS never skipped anything");
        assert!(inserted > 0);
    }

    #[test]
    fn estimate_pair_matches_estimate_key() {
        let cfg = config(20, 100, 500);
        let samples = correlated_stream(20, 100, 0.9, 5);
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).unwrap();
        est.process_all(samples.iter());
        let key = est.indexer().index(0, 1);
        assert_eq!(est.estimate_pair(0, 1), est.estimate_key(key));
        assert_eq!(est.estimate_pair(1, 0), est.estimate_pair(0, 1));
    }

    #[test]
    fn all_estimates_covers_every_pair() {
        let cfg = config(10, 50, 200);
        let samples = correlated_stream(10, 50, 0.8, 9);
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).unwrap();
        est.process_all(samples.iter());
        let all = est.all_estimates();
        assert_eq!(all.len(), 45);
        let key = est.indexer().index(0, 1) as usize;
        assert_eq!(all[key], est.estimate_pair(0, 1));
    }

    #[test]
    fn planned_estimator_is_bit_identical_to_unplanned() {
        for backend in [
            SketchBackend::VanillaCs,
            SketchBackend::Ascs,
            SketchBackend::ShardedAscs { shards: 3 },
            SketchBackend::Windowed {
                segment_len: 32,
                segments: 3,
            },
            SketchBackend::Decayed { gamma: 0.97 },
        ] {
            let cfg = config(24, 300, 800);
            let samples = correlated_stream(24, 300, 0.9, 31);
            let mut plain = CovarianceEstimator::new(cfg, backend).unwrap();
            let mut planned = CovarianceEstimator::new(cfg, backend)
                .unwrap()
                .with_ingestion_plan()
                .unwrap();
            assert!(planned.ingestion_plan().is_some());
            assert_eq!(
                planned.ingestion_plan().unwrap().len() as u64,
                cfg.num_pairs()
            );
            for s in &samples {
                plain.process_sample(s);
                planned.process_sample(s);
            }
            assert_eq!(
                plain.update_counts(),
                planned.update_counts(),
                "{backend:?}: gate decisions diverged under the plan"
            );
            let a = plain.all_estimates();
            let b = planned.all_estimates();
            assert_eq!(a.len(), b.len());
            for (key, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x, y, "{backend:?}: estimate diverged at key {key}");
                assert_eq!(*y, planned.estimate_key(key as u64));
            }
            assert_eq!(
                plain
                    .top_pairs(10)
                    .iter()
                    .map(|p| p.key)
                    .collect::<Vec<_>>(),
                planned
                    .top_pairs(10)
                    .iter()
                    .map(|p| p.key)
                    .collect::<Vec<_>>(),
                "{backend:?}: top pairs diverged under the plan"
            );
        }
    }

    #[test]
    fn ingestion_plan_rejects_filter_backends_with_typed_error() {
        let cfg = config(20, 100, 500);
        let backend = SketchBackend::AugmentedSketch {
            filter_capacity: 16,
        };
        // Consuming form: the typed error lets callers rebuild and fall
        // back to the hashed path.
        let err = CovarianceEstimator::new(cfg, backend)
            .unwrap()
            .with_ingestion_plan()
            .err()
            .unwrap();
        assert!(matches!(err, PlanError::UnsupportedBackend(_)));
        assert!(err.to_string().contains("count-sketch-family backend"));
        // In-place form: the estimator survives the failure and keeps
        // working unplanned.
        let mut est = CovarianceEstimator::new(cfg, backend).unwrap();
        assert_eq!(
            est.attach_ingestion_plan(),
            Err(PlanError::UnsupportedBackend(backend))
        );
        assert!(est.ingestion_plan().is_none());
        est.process_sample(&Sample::dense(vec![1.0; 20]));
        assert_eq!(est.processed_samples(), 1);
    }

    #[test]
    fn ingestion_plan_rejects_oversized_pair_universes() {
        // 20_000 features → ~2·10^8 pairs, beyond the 5·10^7 plan cap. The
        // estimator itself constructs fine; only the plan is refused.
        let mut cfg = config(20_000, 100, 500);
        cfg.alpha = 1e-4;
        let err = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs)
            .unwrap()
            .with_ingestion_plan()
            .err()
            .unwrap();
        assert!(matches!(err, PlanError::UniverseTooLarge { .. }));
    }

    #[test]
    fn asketch_and_cold_filter_backends_run_end_to_end() {
        let dim = 20u64;
        let n = 400usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 21);
        for backend in [
            SketchBackend::AugmentedSketch {
                filter_capacity: 32,
            },
            SketchBackend::ColdFilter {
                threshold: 1e-3,
                filter_range: 128,
            },
        ] {
            let cfg = config(dim, n as u64, 1000);
            let mut est = CovarianceEstimator::new(cfg, backend).unwrap();
            est.process_all(samples.iter());
            let top = est.top_pairs(3);
            assert!(!top.is_empty());
            assert_eq!((top[0].a, top[0].b), (0, 1), "{backend:?}: {top:?}");
        }
    }

    #[test]
    fn sharded_backend_recovers_the_signal_like_sequential_ascs() {
        let dim = 30u64;
        let n = 1200usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 7);
        let cfg = config(dim, n as u64, 4000);
        let mut seq = CovarianceEstimator::new(cfg, SketchBackend::Ascs).unwrap();
        let mut sharded =
            CovarianceEstimator::new(cfg, SketchBackend::ShardedAscs { shards: 3 }).unwrap();
        for s in &samples {
            seq.process_sample(s);
            sharded.process_sample(s);
        }
        let top = sharded.top_pairs(5);
        assert!(!top.is_empty());
        assert_eq!((top[0].a, top[0].b), (0, 1), "sharded missed the signal");
        // Both gates see the same signal stream; the estimates of the
        // planted pair should be close (shard-local gating differs only in
        // collision noise visibility).
        let delta = (seq.estimate_pair(0, 1) - sharded.estimate_pair(0, 1)).abs();
        assert!(
            delta < 0.05,
            "sequential vs sharded estimate drifted: {delta}"
        );
        let (inserted, skipped) = sharded.update_counts();
        assert!(inserted > 0);
        assert!(skipped > 0, "sharded gate never engaged");
        assert_eq!(sharded.memory_words(), 3 * 5 * 4000);
    }

    #[test]
    #[should_panic(expected = "not supported on the sharded backend")]
    fn snr_probe_rejects_the_sharded_backend() {
        let cfg = config(20, 100, 500);
        let _ = CovarianceEstimator::new(cfg, SketchBackend::ShardedAscs { shards: 2 })
            .unwrap()
            .with_snr_probe([0]);
    }

    #[test]
    fn snr_probe_records_only_inserted_updates() {
        let dim = 20u64;
        let n = 600usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 17);
        let cfg = config(dim, n as u64, 800);
        let signal_key = PairIndexer::new(dim).index(0, 1);
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::Ascs)
            .unwrap()
            .with_snr_probe([signal_key]);
        est.process_all(samples.iter());
        let probe = est.snr_probe().unwrap();
        assert_eq!(probe.samples(), n);
        // Late-stream SNR must exceed early-stream SNR because ASCS filters
        // noise progressively.
        let early = probe.windowed_snr(0, 100).unwrap();
        // A `None` late window means no noise at all was ingested late,
        // which is an even stronger form of the claim.
        if let Some(l) = probe.windowed_snr(n - 100, n) {
            assert!(l > early, "early={early} late={l}");
        }
    }

    /// `top_pairs(k)` edge cases on every backend: `k = 0` returns empty,
    /// `k` beyond the retained set returns the whole retained set, and the
    /// ordering is estimate-desc with the key-asc tie-break throughout.
    #[test]
    fn top_pairs_edge_cases_across_all_backends() {
        let dim = 20u64;
        let n = 400usize;
        let samples = correlated_stream(dim as usize, n, 0.95, 23);
        for backend in [
            SketchBackend::VanillaCs,
            SketchBackend::Ascs,
            SketchBackend::ShardedAscs { shards: 3 },
            SketchBackend::AugmentedSketch {
                filter_capacity: 16,
            },
            SketchBackend::ColdFilter {
                threshold: 1e-3,
                filter_range: 64,
            },
            SketchBackend::Windowed {
                segment_len: 64,
                segments: 4,
            },
            SketchBackend::Decayed { gamma: 0.99 },
        ] {
            let cfg = config(dim, n as u64, 1000);
            let mut est = CovarianceEstimator::new(cfg, backend).unwrap();
            est.process_all(samples.iter());
            assert!(
                est.top_pairs(0).is_empty(),
                "{backend:?}: top_pairs(0) must be empty"
            );
            let everything = est.top_pairs(usize::MAX);
            assert!(
                !everything.is_empty() && everything.len() <= cfg.top_k_capacity,
                "{backend:?}: {} pairs retained",
                everything.len()
            );
            // Requesting more than retained returns exactly the retained set.
            assert_eq!(est.top_pairs(everything.len() + 100), everything);
            // Any prefix matches the full ranking (deterministic ordering:
            // estimate desc, ties by key asc).
            for k in [1usize, 3, everything.len()] {
                assert_eq!(est.top_pairs(k), everything[..k.min(everything.len())]);
            }
            for w in everything.windows(2) {
                let ord = w[1].estimate < w[0].estimate
                    || (w[1].estimate == w[0].estimate && w[1].key > w[0].key);
                assert!(ord, "{backend:?}: ordering violated: {w:?}");
            }
        }
    }

    /// The headline NaN-regression: a poisoned sample arriving mid-stream
    /// must leave every previously learned estimate bit-identical and the
    /// estimator fully usable afterwards, on every backend.
    #[test]
    fn nan_mid_stream_is_quarantined_and_estimates_survive() {
        let dim = 20u64;
        let n = 300usize;
        let samples = correlated_stream(dim as usize, n, 0.9, 29);
        for backend in [
            SketchBackend::VanillaCs,
            SketchBackend::Ascs,
            SketchBackend::ShardedAscs { shards: 3 },
            SketchBackend::AugmentedSketch {
                filter_capacity: 16,
            },
            SketchBackend::ColdFilter {
                threshold: 1e-3,
                filter_range: 64,
            },
            SketchBackend::Windowed {
                segment_len: 64,
                segments: 4,
            },
            SketchBackend::Decayed { gamma: 0.99 },
        ] {
            let cfg = config(dim, n as u64, 1000);
            let mut est = CovarianceEstimator::new(cfg, backend).unwrap();
            for s in &samples[..150] {
                est.process_sample(s);
            }
            let before: Vec<u64> = est.all_estimates().iter().map(|v| v.to_bits()).collect();
            let counts = est.update_counts();
            let mut poisoned = vec![0.5; dim as usize];
            poisoned[3] = f64::NAN;
            let err = est
                .try_process_sample(&Sample::dense(poisoned))
                .unwrap_err();
            // NaN != NaN, so compare the error structurally.
            match err {
                IngestError::NonFinite { index, value } => {
                    assert_eq!(index, 3);
                    assert!(value.is_nan());
                }
                other => panic!("{backend:?}: expected NonFinite, got {other:?}"),
            }
            // A sparse NaN through the lossy path counts too and emits 0.
            assert_eq!(
                est.process_sample(&Sample::sparse(dim, vec![(1, f64::INFINITY)])),
                0
            );
            assert_eq!(est.quarantined_samples(), 2, "{backend:?}");
            assert_eq!(est.processed_samples(), 150, "{backend:?}: t advanced");
            assert_eq!(est.update_counts(), counts, "{backend:?}");
            let after: Vec<u64> = est.all_estimates().iter().map(|v| v.to_bits()).collect();
            assert_eq!(before, after, "{backend:?}: estimates changed");
            // The stream continues unharmed.
            for s in &samples[150..] {
                est.process_sample(s);
            }
            assert_eq!(est.processed_samples(), n as u64, "{backend:?}");
        }
    }

    /// Mid-window / mid-horizon checkpoint → resume must continue the
    /// stream bit-identically on the time-aware backends, and the
    /// estimator-level time-split merge must be refused with a typed
    /// error (windows are time-indexed; gluing disjoint stream halves is
    /// undefined).
    #[test]
    fn time_aware_checkpoints_resume_bit_identically() {
        for backend in [
            SketchBackend::Windowed {
                segment_len: 32,
                segments: 3,
            },
            SketchBackend::Decayed { gamma: 0.95 },
        ] {
            let cfg = config(16, 240, 500);
            let samples = correlated_stream(16, 240, 0.9, 41);
            let mut full = CovarianceEstimator::new(cfg, backend).unwrap();
            let mut half = CovarianceEstimator::new(cfg, backend).unwrap();
            // 130 sits mid-block (130 = 4·32 + 2): the checkpoint captures
            // a partially filled head segment.
            for s in &samples[..130] {
                full.process_sample(s);
                half.process_sample(s);
            }
            let mut bytes = Vec::new();
            half.checkpoint(&mut bytes).unwrap();
            let mut resumed = CovarianceEstimator::resume(&mut bytes.as_slice()).unwrap();
            assert_eq!(resumed.backend(), backend);
            assert_eq!(resumed.processed_samples(), 130);
            for s in &samples[130..] {
                full.process_sample(s);
                resumed.process_sample(s);
            }
            let a = full.all_estimates();
            let b = resumed.all_estimates();
            for (key, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{backend:?}: resumed stream diverged at key {key}"
                );
            }
            let mut other = CovarianceEstimator::new(cfg, backend).unwrap();
            other.process_sample(&samples[0]);
            let mut other_bytes = Vec::new();
            other.checkpoint(&mut other_bytes).unwrap();
            assert!(
                matches!(
                    full.merge_from_checkpoint(&mut other_bytes.as_slice()),
                    Err(CodecError::Unsupported(_))
                ),
                "{backend:?}: time-split merge must be refused"
            );
        }
    }

    /// The semantic point of the windowed/decayed backends: after a
    /// covariance flip, the cumulative estimate is stuck between the
    /// phases while the time-aware estimates track the current one.
    #[test]
    fn time_aware_backends_track_a_covariance_flip() {
        let dim = 12usize;
        let n = 480usize;
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let mut v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0_f64)).collect();
                // Phase A: feature 1 copies feature 0; phase B: it copies
                // the negation.
                let rho = if i < n / 2 { 0.9 } else { -0.9 };
                v[1] = rho * v[0] + 0.1 * rng.gen_range(-1.0..1.0);
                Sample::dense(v)
            })
            .collect();
        let cfg = config(dim as u64, n as u64, 1000);
        let mut cumulative = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).unwrap();
        let mut windowed = CovarianceEstimator::new(
            cfg,
            SketchBackend::Windowed {
                segment_len: 40,
                segments: 3,
            },
        )
        .unwrap();
        let mut decayed =
            CovarianceEstimator::new(cfg, SketchBackend::Decayed { gamma: 0.98 }).unwrap();
        for s in &samples {
            cumulative.process_sample(s);
            windowed.process_sample(s);
            decayed.process_sample(s);
        }
        // The cumulative estimate averages the two phases (≈ 0); the
        // time-aware ones see only (mostly) phase B.
        let scale = n as f64 / n as f64; // T/t = 1 at the end of the stream
        let cum = cumulative.estimate_pair(0, 1) * scale;
        assert!(cum.abs() < 0.12, "cumulative should straddle: {cum}");
        assert!(
            windowed.estimate_pair(0, 1) < -0.2,
            "windowed missed phase B: {}",
            windowed.estimate_pair(0, 1)
        );
        assert!(
            decayed.estimate_pair(0, 1) < -0.2,
            "decayed missed phase B: {}",
            decayed.estimate_pair(0, 1)
        );
    }

    #[test]
    fn memory_words_reflects_geometry() {
        let cfg = config(20, 100, 500);
        let est = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).unwrap();
        assert_eq!(est.memory_words(), 5 * 500);
    }

    #[test]
    #[should_panic(expected = "invalid ASCS configuration")]
    fn invalid_config_panics() {
        let mut cfg = config(20, 100, 500);
        cfg.alpha = 2.0;
        let _ = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs);
    }
}
