//! Durable crash recovery for the serving core: generation-numbered disk
//! checkpoints, a CRC-framed write-ahead log of accepted samples, and a
//! [`RecoveryManager`] that cold-starts a killed process from the data
//! directory — with state proven bit-identical to an uninterrupted run.
//!
//! The design mirrors the in-memory recovery recipe of
//! [`crate::supervisor`], lifted across process death:
//!
//! * **Write-ahead log** — every accepted sample is encoded as a
//!   [`codec::TAG_WAL_RECORD`] payload and appended to the active segment
//!   file inside a CRC32 frame (`[len][crc][payload]`), *before* its pair
//!   updates are delivered to the shard queues. Segments rotate after a
//!   configurable record count; fsync cadence is a [`FsyncPolicy`].
//! * **Checkpoints** — a coordinated collect barrier captures the stream
//!   context and every shard sketch at one epoch. Each shard lands in its
//!   own file via the atomic [`codec::save_to_path_with`] commit protocol
//!   (tmp → fsync → rename → directory fsync), CRC32-framed so any bit
//!   flip is *detected* rather than restored as plausible state; the
//!   generation's manifest is written **last** and is the commit point —
//!   a crash mid-generation leaves shard files without a manifest, which
//!   recovery treats as if the checkpoint never happened.
//! * **Recovery** — [`RecoveryManager::recover`] scans the directory,
//!   validates generations newest-first (a torn or corrupt generation is
//!   discarded with a counter and the previous one is used), then replays
//!   the WAL tail through the *same* routing and gate-memoized apply loop
//!   as live ingestion, so the recovered sketches are bit-identical to a
//!   sequential run over the recovered prefix.
//! * **Degraded mode** — persistence failures never kill serving. Appends
//!   retry with bounded exponential backoff into fresh segments; when the
//!   budget is spent the store raises `durability_lost` and freezes
//!   `last_durable_epoch` while in-memory ingestion continues. A later
//!   successful checkpoint re-establishes durability (the checkpoint
//!   covers the gap the WAL lost) and clears the flag.
//!
//! Duplicate WAL records are possible by design (a retried append may
//! re-log a record whose first write *did* reach disk before its fsync
//! failed); replay is idempotent because records carry the stream time and
//! recovery skips anything at or below the recovered epoch, advancing only
//! on `epoch + 1`. A gap in stream times marks the end of the contiguous
//! durable prefix and stops replay.

use crate::ascs::AscsSketch;
use crate::config::AscsConfig;
use crate::hyper::HyperParameters;
use crate::sharded::{shard_for, ShardUpdate, ROUTER_SALT};
use crate::stream::{Sample, StreamContext};
use crate::supervisor::apply_batch;
use ascs_count_sketch::codec::{self, CodecError, DurableFile, DurableFs};
use ascs_count_sketch::CountSketch;
use ascs_sketch_hash::splitmix64;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on sample dimensionality accepted from a WAL record — the same
/// bound [`StreamContext::new`] enforces, applied *before* any allocation.
const MAX_WAL_DIM: u64 = 50_000_000;

/// When to fsync the active WAL segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record: every acknowledged sample is
    /// durable, at one fsync per sample.
    Always,
    /// fsync after every `n` appended records (clamped to at least 1): up
    /// to `n − 1` acknowledged samples can be lost to a crash.
    EveryN(u64),
    /// Never fsync the WAL (checkpoints still fsync): durability rides on
    /// the OS page cache — survives process death, not power loss.
    Never,
}

/// Tunables of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Data directory holding WAL segments and checkpoint generations;
    /// created if missing.
    pub dir: PathBuf,
    /// WAL fsync cadence.
    pub fsync: FsyncPolicy,
    /// Samples between automatic durable checkpoints (`0` = manual
    /// checkpoints only, via `ServingEstimator::persist_checkpoint`).
    pub checkpoint_every: u64,
    /// Records per WAL segment before rotating to a fresh file.
    pub wal_segment_records: u64,
    /// Checkpoint generations kept on disk (clamped to at least 1; the
    /// default of 2 lets recovery fall back past a torn latest
    /// generation). WAL segments are garbage-collected only once every
    /// retained generation covers them.
    pub keep_generations: usize,
    /// Failed persistence operations are retried this many times (with
    /// exponential backoff) before the store degrades.
    pub max_retries: u32,
    /// Base delay of the retry backoff (doubles per attempt, capped at
    /// 100 ms).
    pub retry_backoff: Duration,
}

impl DurabilityOptions {
    /// Durable defaults rooted at `dir`: fsync-always, a checkpoint every
    /// 1024 samples, 4096-record segments, two retained generations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 1024,
            wal_segment_records: 4096,
            keep_generations: 2,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// Typed error for every durability failure. Persistence errors carry the
/// failing operation so degraded-mode diagnostics can name it.
#[derive(Debug)]
pub enum DurabilityError {
    /// A filesystem operation failed; `op` names it.
    Io {
        /// The operation that failed (e.g. `"wal append"`).
        op: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Encoding or decoding a durable record failed; `what` names the
    /// record.
    Codec {
        /// The record being processed (e.g. `"checkpoint manifest"`).
        what: &'static str,
        /// The underlying codec error.
        source: CodecError,
    },
    /// The collect barrier needed to capture a coordinated checkpoint
    /// failed (a shard was abandoned or the barrier timed out).
    Collect(crate::serve::ServeError),
    /// Every recovery attempt within the re-entry budget failed —
    /// typically the filesystem kept dying mid-replay. Carries the final
    /// attempt's error so the crash loop terminates typed, never hangs.
    RecoveryBudgetExhausted {
        /// Recovery attempts made (the whole budget).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<DurabilityError>,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { op, source } => write!(f, "{op}: {source}"),
            DurabilityError::Codec { what, source } => write!(f, "{what}: {source}"),
            DurabilityError::Collect(source) => {
                write!(f, "checkpoint collect barrier: {source}")
            }
            DurabilityError::RecoveryBudgetExhausted { attempts, last } => {
                write!(f, "recovery failed {attempts} times (budget spent): {last}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Codec { source, .. } => Some(source),
            DurabilityError::Collect(source) => Some(source),
            DurabilityError::RecoveryBudgetExhausted { last, .. } => Some(last),
        }
    }
}

fn io_err(op: &'static str) -> impl FnOnce(io::Error) -> DurabilityError {
    move |source| DurabilityError::Io { op, source }
}

fn codec_err(what: &'static str) -> impl FnOnce(CodecError) -> DurabilityError {
    move |source| DurabilityError::Codec { what, source }
}

// ---------------------------------------------------------------------------
// On-disk layout
// ---------------------------------------------------------------------------

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:08}.manifest"))
}

fn shard_path(dir: &Path, generation: u64, shard: usize) -> PathBuf {
    dir.join(format!("ckpt-{generation:08}.shard{shard:03}"))
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".manifest")?
        .parse()
        .ok()
}

fn parse_shard_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("ckpt-")?;
    let (generation, shard) = rest.split_once(".shard")?;
    Some((generation.parse().ok()?, shard.parse().ok()?))
}

// ---------------------------------------------------------------------------
// WAL record codec
// ---------------------------------------------------------------------------

/// Encodes one accepted sample as a WAL payload: record header, stream
/// time, then the sample (dense or sparse). The payload is framed with a
/// CRC by the caller ([`codec::write_frame`]).
pub(crate) fn encode_wal_record(
    buf: &mut Vec<u8>,
    t: u64,
    sample: &Sample,
) -> Result<(), CodecError> {
    codec::write_header(buf, codec::TAG_WAL_RECORD)?;
    codec::write_u64(buf, t)?;
    match sample {
        Sample::Dense(values) => {
            codec::write_u8(buf, 0)?;
            codec::write_u64(buf, values.len() as u64)?;
            for &v in values {
                codec::write_f64(buf, v)?;
            }
        }
        Sample::Sparse { dim, entries } => {
            codec::write_u8(buf, 1)?;
            codec::write_u64(buf, *dim)?;
            codec::write_u64(buf, entries.len() as u64)?;
            for &(i, v) in entries {
                codec::write_u64(buf, u64::from(i))?;
                codec::write_f64(buf, v)?;
            }
        }
    }
    Ok(())
}

/// Decodes a WAL payload written by [`encode_wal_record`], enforcing the
/// same dimensionality bounds as the stream layer before any allocation.
pub(crate) fn decode_wal_record(bytes: &[u8]) -> Result<(u64, Sample), CodecError> {
    let mut r = bytes;
    codec::read_header(&mut r, codec::TAG_WAL_RECORD)?;
    let t = codec::read_u64(&mut r)?;
    let sample = match codec::read_u8(&mut r)? {
        0 => {
            let len = codec::read_u64(&mut r)?;
            if len > MAX_WAL_DIM {
                return Err(CodecError::Corrupt("wal dense sample too wide"));
            }
            let mut values = Vec::with_capacity((len as usize).min(1 << 16));
            for _ in 0..len {
                values.push(codec::read_f64(&mut r)?);
            }
            Sample::Dense(values)
        }
        1 => {
            let dim = codec::read_u64(&mut r)?;
            let len = codec::read_u64(&mut r)?;
            if dim > MAX_WAL_DIM || len > MAX_WAL_DIM {
                return Err(CodecError::Corrupt("wal sparse sample out of range"));
            }
            let mut entries = Vec::with_capacity((len as usize).min(1 << 16));
            for _ in 0..len {
                let i = codec::read_u64(&mut r)?;
                if i > u64::from(u32::MAX) {
                    return Err(CodecError::Corrupt("wal sparse index out of range"));
                }
                entries.push((i as u32, codec::read_f64(&mut r)?));
            }
            Sample::Sparse { dim, entries }
        }
        _ => return Err(CodecError::Corrupt("unknown wal sample kind")),
    };
    if !r.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes in wal record"));
    }
    Ok((t, sample))
}

/// Frame-size cap for WAL reads: generous room for one sample of the
/// configured dimensionality, applied before any allocation.
fn wal_frame_cap(dim: u64) -> u32 {
    let bytes = dim.saturating_mul(16).saturating_add(4096);
    u32::try_from(bytes).unwrap_or(u32::MAX)
}

/// Frame-size cap for checkpoint reads: the serialized sketch table for
/// the configured geometry plus generous room for trackers and the stream
/// context — so a corrupted length prefix cannot trigger an absurd
/// allocation.
fn checkpoint_frame_cap(config: &AscsConfig) -> u32 {
    let table = (config.geometry.rows as u64)
        .saturating_mul(config.geometry.range as u64)
        .saturating_mul(8);
    let extras = config.dim.saturating_mul(64).saturating_add(1 << 20);
    u32::try_from(table.saturating_add(extras)).unwrap_or(u32::MAX)
}

/// Reads exactly one CRC32 frame from `r` and requires clean EOF after it —
/// checkpoint files hold a single framed record, so trailing bytes are
/// corruption, not extra data.
fn read_single_frame(r: &mut impl io::Read, cap: u32) -> Result<Vec<u8>, CodecError> {
    let payload = codec::read_frame(r, cap)?.ok_or(CodecError::Truncated)?;
    let mut probe = [0u8; 1];
    if r.read(&mut probe).map_err(CodecError::from)? != 0 {
        return Err(CodecError::Corrupt("trailing bytes after checkpoint frame"));
    }
    Ok(payload)
}

/// The prototype sketch every shard boots from — gated when
/// hyperparameters are supplied, vanilla otherwise. Shared by the serving
/// launch path and recovery so a cold start and a post-crash start are the
/// same code path.
pub(crate) fn prototype_sketch(config: &AscsConfig, hyper: Option<&HyperParameters>) -> AscsSketch {
    match hyper {
        Some(hp) => AscsSketch::new(
            config.geometry,
            hp,
            config.total_samples,
            config.top_k_capacity,
            config.seed,
        ),
        None => AscsSketch::vanilla(
            config.geometry,
            config.total_samples,
            config.top_k_capacity,
            config.seed,
        ),
    }
}

fn exponential_backoff(base: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(10);
    base.saturating_mul(factor).min(Duration::from_millis(100))
}

// ---------------------------------------------------------------------------
// DurableStore: the producer-side WAL + checkpoint writer
// ---------------------------------------------------------------------------

struct WalWriter {
    file: Box<dyn DurableFile>,
    path: PathBuf,
    records: u64,
    /// Highest stream time written into this segment (synced or not).
    last_t: u64,
    /// Records appended since the last successful fsync.
    unsynced: u64,
}

/// A WAL segment no longer being written (rotated, abandoned after a
/// failure, or inherited from a previous process).
pub(crate) struct SealedSegment {
    path: PathBuf,
    /// Highest stream time observed in the segment; `0` when empty. Used
    /// only to decide when a checkpoint has made the segment redundant.
    last_t: u64,
}

/// What [`RecoveryManager::recover`] hands to [`DurableStore::open`] so a
/// restarted store resumes numbering where the dead process stopped.
pub(crate) struct StoreBootstrap {
    pub(crate) next_wal_seq: u64,
    pub(crate) sealed: Vec<SealedSegment>,
    pub(crate) next_generation: u64,
    /// Valid generations on disk as `(generation, epoch)`, ascending.
    pub(crate) generations: Vec<(u64, u64)>,
    /// The epoch the recovered state reaches (checkpoint + WAL tail).
    pub(crate) start_epoch: u64,
    /// The epoch of the newest valid checkpoint generation (`0` if none).
    pub(crate) checkpoint_epoch: u64,
}

/// Producer-side durability state machine: appends accepted samples to the
/// WAL, rotates checkpoint generations, garbage-collects covered files,
/// and degrades (instead of failing the caller) when the disk gives out.
///
/// Owned by `ServingEstimator`; all methods are crate-internal — the
/// public surface is the serving API plus [`DurabilityHealth`].
pub(crate) struct DurableStore {
    fs: Arc<dyn DurableFs>,
    opts: DurabilityOptions,
    shards: usize,
    wal: Option<WalWriter>,
    next_wal_seq: u64,
    sealed: Vec<SealedSegment>,
    generations: Vec<(u64, u64)>,
    next_generation: u64,
    last_checkpoint_epoch: u64,
    /// Epoch of the last checkpoint *attempt*, successful or not. The
    /// cadence keys off this too: a failed generation must wait out a full
    /// interval before retrying, not re-run the collect barrier and the
    /// failing writes on every subsequent sample.
    last_checkpoint_attempt: u64,
    last_durable_epoch: u64,
    lost: bool,
    wal_records: u64,
    wal_syncs: u64,
    retries: u64,
    checkpoint_failures: u64,
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

impl DurableStore {
    /// Opens the store over `bootstrap` (from recovery, or
    /// [`StoreBootstrap::fresh`] for a new directory). Creates the data
    /// directory; the first WAL segment is opened lazily on first append.
    pub(crate) fn open(
        fs: Arc<dyn DurableFs>,
        opts: DurabilityOptions,
        shards: usize,
        bootstrap: StoreBootstrap,
    ) -> Result<Self, DurabilityError> {
        std::fs::create_dir_all(&opts.dir).map_err(io_err("create data directory"))?;
        Ok(Self {
            fs,
            opts,
            shards,
            wal: None,
            next_wal_seq: bootstrap.next_wal_seq,
            sealed: bootstrap.sealed,
            generations: bootstrap.generations,
            next_generation: bootstrap.next_generation,
            last_checkpoint_epoch: bootstrap.checkpoint_epoch,
            last_checkpoint_attempt: bootstrap.checkpoint_epoch,
            last_durable_epoch: bootstrap.start_epoch,
            lost: false,
            wal_records: 0,
            wal_syncs: 0,
            retries: 0,
            checkpoint_failures: 0,
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    pub(crate) fn health(&self) -> DurabilityHealth {
        DurabilityHealth {
            enabled: true,
            durability_lost: self.lost,
            last_durable_epoch: self.last_durable_epoch,
            last_checkpoint_epoch: self.last_checkpoint_epoch,
            checkpoint_generations: self.generations.len() as u64,
            wal_records: self.wal_records,
            wal_syncs: self.wal_syncs,
            persistence_retries: self.retries,
            checkpoint_failures: self.checkpoint_failures,
        }
    }

    /// Logs one accepted sample ahead of queue delivery. Failed writes are
    /// retried into *fresh* segments with exponential backoff (the failed
    /// segment is sealed as-is: its torn tail is exactly what recovery
    /// tolerates, and the retried record's duplicate is skipped by the
    /// monotonic replay filter). Once the retry budget is spent the store
    /// degrades: the error is returned once, `durability_lost` is raised
    /// and later appends become no-ops until a checkpoint succeeds.
    pub(crate) fn append_sample(&mut self, t: u64, sample: &Sample) -> Result<(), DurabilityError> {
        if self.lost {
            return Ok(());
        }
        self.payload_buf.clear();
        encode_wal_record(&mut self.payload_buf, t, sample).map_err(codec_err("wal record"))?;
        self.frame_buf.clear();
        let payload = std::mem::take(&mut self.payload_buf);
        let framed = codec::write_frame(&mut self.frame_buf, &payload);
        self.payload_buf = payload;
        framed.map_err(codec_err("wal frame"))?;
        let mut attempt = 0u32;
        loop {
            match self.try_append(t) {
                Ok(()) => {
                    self.wal_records += 1;
                    return Ok(());
                }
                Err(e) => {
                    self.retries += 1;
                    self.abandon_segment();
                    if attempt >= self.opts.max_retries {
                        self.lost = true;
                        return Err(e);
                    }
                    std::thread::sleep(exponential_backoff(self.opts.retry_backoff, attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn try_append(&mut self, t: u64) -> Result<(), DurabilityError> {
        if self
            .wal
            .as_ref()
            .is_some_and(|w| w.records >= self.opts.wal_segment_records.max(1))
        {
            self.rotate_segment()?;
        }
        if self.wal.is_none() {
            self.open_segment()?;
        }
        let sync_dir = !matches!(self.opts.fsync, FsyncPolicy::Never);
        let w = self.wal.as_mut().expect("segment opened above");
        use std::io::Write as _;
        w.file
            .write_all(&self.frame_buf)
            .map_err(io_err("wal append"))?;
        w.records += 1;
        w.unsynced += 1;
        w.last_t = t;
        let sync_now = match self.opts.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => w.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            w.file.sync().map_err(io_err("wal fsync"))?;
            w.unsynced = 0;
            self.wal_syncs += 1;
            self.last_durable_epoch = self.last_durable_epoch.max(t);
        }
        let _ = sync_dir; // directory entry was synced at open_segment
        Ok(())
    }

    fn open_segment(&mut self) -> Result<(), DurabilityError> {
        let seq = self.next_wal_seq;
        let path = wal_path(&self.opts.dir, seq);
        let file = self.fs.create(&path).map_err(io_err("wal create"))?;
        if !matches!(self.opts.fsync, FsyncPolicy::Never) {
            // The new directory entry must be durable before records in it
            // can be — otherwise a crash could lose a whole synced segment.
            self.fs
                .sync_dir(&self.opts.dir)
                .map_err(io_err("wal directory fsync"))?;
        }
        self.next_wal_seq = seq + 1;
        self.wal = Some(WalWriter {
            file,
            path,
            records: 0,
            last_t: 0,
            unsynced: 0,
        });
        Ok(())
    }

    fn rotate_segment(&mut self) -> Result<(), DurabilityError> {
        let Some(mut w) = self.wal.take() else {
            return Ok(());
        };
        let result = if w.unsynced > 0 && !matches!(self.opts.fsync, FsyncPolicy::Never) {
            w.file.sync()
        } else {
            Ok(())
        };
        if result.is_ok() && w.unsynced > 0 {
            self.wal_syncs += 1;
            self.last_durable_epoch = self.last_durable_epoch.max(w.last_t);
        }
        self.sealed.push(SealedSegment {
            path: w.path,
            last_t: w.last_t,
        });
        result.map_err(io_err("wal fsync"))
    }

    /// Seals the active segment without attempting a sync — the segment
    /// just failed, so its tail is suspect either way.
    fn abandon_segment(&mut self) {
        if let Some(w) = self.wal.take() {
            self.sealed.push(SealedSegment {
                path: w.path,
                last_t: w.last_t,
            });
        }
    }

    /// Forces the active segment to disk (shutdown path; also makes
    /// `FsyncPolicy::EveryN`/`Never` tails durable before a checkpoint's
    /// epoch claims them).
    pub(crate) fn sync_wal(&mut self) -> Result<(), DurabilityError> {
        if self.lost {
            return Ok(());
        }
        if let Some(w) = self.wal.as_mut() {
            if w.unsynced > 0 {
                match w.file.sync() {
                    Ok(()) => {
                        w.unsynced = 0;
                        self.wal_syncs += 1;
                        self.last_durable_epoch = self.last_durable_epoch.max(w.last_t);
                    }
                    Err(e) => {
                        self.retries += 1;
                        self.abandon_segment();
                        self.lost = true;
                        return Err(io_err("wal fsync")(e));
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automatic checkpoint cadence is due at stream time `t`.
    /// Keyed off the last *attempt*, so a failed generation backs off for
    /// a full interval instead of re-running the collect barrier and the
    /// failing writes on every later sample.
    pub(crate) fn should_checkpoint(&self, t: u64) -> bool {
        self.opts.checkpoint_every > 0
            && t >= self.last_checkpoint_epoch + self.opts.checkpoint_every
            && t >= self.last_checkpoint_attempt + self.opts.checkpoint_every
    }

    /// Writes one checkpoint generation: every shard sketch through the
    /// atomic commit protocol, then the manifest last (the commit point).
    /// On success the generation is registered, durability is
    /// re-established if it had been lost (the checkpoint covers the gap),
    /// and files covered by every retained generation are collected.
    pub(crate) fn persist_checkpoint(
        &mut self,
        epoch: u64,
        ctx: &StreamContext,
        shard_sketches: &[AscsSketch],
        seed: u64,
        emitted_updates: u64,
    ) -> Result<(), DurabilityError> {
        assert_eq!(shard_sketches.len(), self.shards, "shard count mismatch");
        self.last_checkpoint_attempt = epoch;
        let generation = self.next_generation;
        let mut attempt = 0u32;
        loop {
            match self.try_persist(
                generation,
                epoch,
                ctx,
                shard_sketches,
                seed,
                emitted_updates,
            ) {
                Ok(()) => {
                    self.next_generation = generation + 1;
                    self.generations.push((generation, epoch));
                    self.last_checkpoint_epoch = epoch;
                    self.last_durable_epoch = self.last_durable_epoch.max(epoch);
                    if self.lost {
                        // The generation holds everything up to `epoch`;
                        // the WAL gap is now behind a durable checkpoint.
                        self.lost = false;
                        self.abandon_segment();
                    }
                    self.collect_garbage();
                    return Ok(());
                }
                Err(e) => {
                    self.retries += 1;
                    if attempt >= self.opts.max_retries {
                        self.checkpoint_failures += 1;
                        return Err(e);
                    }
                    std::thread::sleep(exponential_backoff(self.opts.retry_backoff, attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn try_persist(
        &mut self,
        generation: u64,
        epoch: u64,
        ctx: &StreamContext,
        shard_sketches: &[AscsSketch],
        seed: u64,
        emitted_updates: u64,
    ) -> Result<(), DurabilityError> {
        // Every checkpoint file is one CRC32 frame: a flipped bit on disk
        // must surface as `ChecksumMismatch` at recovery, never restore
        // into a plausible-but-wrong sketch.
        for (shard, sketch) in shard_sketches.iter().enumerate() {
            let path = shard_path(&self.opts.dir, generation, shard);
            self.payload_buf.clear();
            sketch
                .save(&mut self.payload_buf)
                .map_err(codec_err("checkpoint shard"))?;
            let payload = &self.payload_buf;
            codec::save_to_path_with(&*self.fs, &path, |w| codec::write_frame(w, payload))
                .map_err(codec_err("checkpoint shard"))?;
        }
        let manifest = manifest_path(&self.opts.dir, generation);
        let shards = self.shards as u64;
        self.payload_buf.clear();
        {
            let w = &mut self.payload_buf;
            codec::write_header(w, codec::TAG_DURABLE_MANIFEST).map_err(codec_err("manifest"))?;
            codec::write_u64(w, epoch).map_err(codec_err("manifest"))?;
            codec::write_u64(w, shards).map_err(codec_err("manifest"))?;
            codec::write_u64(w, seed).map_err(codec_err("manifest"))?;
            codec::write_u64(w, emitted_updates).map_err(codec_err("manifest"))?;
            ctx.save(w).map_err(codec_err("manifest"))?;
        }
        let payload = &self.payload_buf;
        codec::save_to_path_with(&*self.fs, &manifest, |w| codec::write_frame(w, payload))
            .map_err(codec_err("checkpoint manifest"))
    }

    /// Removes generations beyond the retention bound and WAL segments
    /// fully covered by the *oldest retained* generation — so a torn
    /// latest generation can always fall back to the previous one plus
    /// the still-present WAL tail. Removal failures are ignored: stray
    /// files cost disk, not correctness.
    fn collect_garbage(&mut self) {
        while self.generations.len() > self.opts.keep_generations.max(1) {
            let (generation, _) = self.generations.remove(0);
            for shard in 0..self.shards {
                let _ = self
                    .fs
                    .remove_file(&shard_path(&self.opts.dir, generation, shard));
            }
            let _ = self
                .fs
                .remove_file(&manifest_path(&self.opts.dir, generation));
        }
        let oldest_epoch = match self.generations.first() {
            Some(&(_, epoch)) => epoch,
            None => return,
        };
        let fs = &self.fs;
        self.sealed.retain(|segment| {
            if segment.last_t <= oldest_epoch {
                let _ = fs.remove_file(&segment.path);
                false
            } else {
                true
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Health reporting
// ---------------------------------------------------------------------------

/// Durability-side health counters, embedded in `ServingHealth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityHealth {
    /// Whether this instance persists at all (`false` for purely
    /// in-memory serving; every other field is then zero).
    pub enabled: bool,
    /// Raised when the persistence retry budget was spent; samples past
    /// [`DurabilityHealth::last_durable_epoch`] are served from memory
    /// only, until a checkpoint succeeds again.
    pub durability_lost: bool,
    /// Highest stream time guaranteed recoverable from disk.
    pub last_durable_epoch: u64,
    /// Epoch of the newest durable checkpoint generation.
    pub last_checkpoint_epoch: u64,
    /// Checkpoint generations currently retained on disk.
    pub checkpoint_generations: u64,
    /// Samples appended to the WAL by this process.
    pub wal_records: u64,
    /// Successful WAL fsyncs by this process.
    pub wal_syncs: u64,
    /// Persistence operations that had to be retried (or abandoned).
    pub persistence_retries: u64,
    /// Checkpoint generations that failed even after retries.
    pub checkpoint_failures: u64,
}

impl DurabilityHealth {
    /// The all-zero report of an in-memory-only instance.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            durability_lost: false,
            last_durable_epoch: 0,
            last_checkpoint_epoch: 0,
            checkpoint_generations: 0,
            wal_records: 0,
            wal_syncs: 0,
            persistence_retries: 0,
            checkpoint_failures: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What [`RecoveryManager::recover`] found and rebuilt, reported so
/// operators (and the bench) can see exactly what a cold start cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The checkpoint generation the recovery restored from, if any.
    pub checkpoint_generation: Option<u64>,
    /// The epoch of that checkpoint (`0` when starting fresh).
    pub checkpoint_epoch: u64,
    /// Torn or corrupt checkpoint generations discarded during the scan.
    pub torn_generations_discarded: u64,
    /// WAL segment files scanned.
    pub wal_segments_scanned: u64,
    /// WAL records replayed on top of the checkpoint.
    pub wal_records_replayed: u64,
    /// WAL records skipped as duplicates at or below the current epoch.
    pub wal_records_skipped: u64,
    /// Whether a torn or corrupt WAL tail was discarded.
    pub wal_tail_discarded: bool,
    /// Whether the log was repaired: a record gap (from corruption or a
    /// lost segment) ended the replay with live segments still behind
    /// it. Those can never be replayed by any future recovery, yet new
    /// appends would land behind them and be unreachable — so the gapped
    /// segment is rewritten down to its consumed prefix and the segments
    /// beyond it are deleted before the store reopens.
    pub wal_repaired: bool,
    /// Stray files removed (interrupted atomic saves, uncommitted shard
    /// files, unreadable old generations).
    pub stray_files_removed: u64,
    /// The epoch the recovered state reaches.
    pub recovered_epoch: u64,
    /// Wall-clock time of the whole scan + validate + replay.
    pub duration: Duration,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered to epoch {} in {:.2} ms (checkpoint {} at epoch {}, \
             {} wal records replayed over {} segments, {} duplicates skipped, \
             {} torn generations discarded{})",
            self.recovered_epoch,
            self.duration.as_secs_f64() * 1e3,
            match self.checkpoint_generation {
                Some(generation) => format!("generation {generation}"),
                None => "none".to_string(),
            },
            self.checkpoint_epoch,
            self.wal_records_replayed,
            self.wal_segments_scanned,
            self.wal_records_skipped,
            self.torn_generations_discarded,
            match (self.wal_repaired, self.wal_tail_discarded) {
                (true, _) => ", wal repaired at a record gap",
                (false, true) => ", torn wal tail discarded",
                (false, false) => "",
            },
        )
    }
}

/// The state a cold start resumes from: stream context plus per-shard
/// sketches at [`RecoveredState::epoch`], bit-identical to a sequential
/// run over the recovered prefix.
pub struct RecoveredState {
    pub(crate) epoch: u64,
    pub(crate) emitted_updates: u64,
    pub(crate) ctx: StreamContext,
    pub(crate) shard_sketches: Vec<AscsSketch>,
}

impl RecoveredState {
    /// Stream time the recovered state reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pair updates emitted over the recovered prefix.
    pub fn emitted_updates(&self) -> u64 {
        self.emitted_updates
    }

    /// The recovered stream context (feature moments at the epoch).
    pub fn context(&self) -> &StreamContext {
        &self.ctx
    }

    /// The recovered per-shard sketches, in shard order.
    pub fn shard_sketches(&self) -> &[AscsSketch] {
        &self.shard_sketches
    }

    /// The shard sketches merged via count-sketch linearity — what a
    /// sequential `ShardedAscs` run over the same prefix would hold, used
    /// by the bit-identity assertions.
    pub fn merged_sketch(&self) -> CountSketch {
        let mut merged = self.shard_sketches[0].sketch().clone();
        for shard in &self.shard_sketches[1..] {
            merged.merge(shard.sketch());
        }
        merged
    }
}

/// Everything recovery produced: the rebuilt state, the audit report, and
/// (crate-internal) the bookkeeping a new [`DurableStore`] resumes from.
pub struct RecoveryOutcome {
    /// The rebuilt serving state (fresh prototype state when the
    /// directory held nothing usable).
    pub state: RecoveredState,
    /// What the scan found, validated, discarded and replayed.
    pub report: RecoveryReport,
    pub(crate) bootstrap: StoreBootstrap,
}

enum GenerationError {
    /// Torn, corrupt or incompatible on disk — discard and fall back.
    Torn,
    /// The filesystem itself failed (not bad bytes) — surface it.
    Fatal(DurabilityError),
}

/// Scans a durability directory and rebuilds serving state from the
/// newest valid checkpoint generation plus the WAL tail.
pub struct RecoveryManager {
    dir: PathBuf,
    fs: Arc<dyn DurableFs>,
}

impl RecoveryManager {
    /// A manager over the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_fs(dir, Arc::new(codec::StdFs))
    }

    /// A manager over an explicit filesystem (fault-injection tests).
    pub fn with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn DurableFs>) -> Self {
        Self {
            dir: dir.into(),
            fs,
        }
    }

    /// Rebuilds serving state from the directory: removes stray temp
    /// files, validates checkpoint generations newest-first (torn ones
    /// are discarded with a counter — never a panic, never silently wrong
    /// state), restores the newest valid one (or the prototype when none
    /// survives), then replays the WAL tail through the same routing and
    /// gate-memoized apply loop as live ingestion. Replay skips duplicate
    /// records at or below the current epoch, tolerates torn segment
    /// tails, and stops at the first gap in stream times — the end of the
    /// contiguous durable prefix.
    ///
    /// # Errors
    /// [`DurabilityError::Io`] when the filesystem itself fails (the
    /// directory cannot be read, a WAL segment cannot be opened). Bad
    /// *bytes* never error: they are discarded with counters in the
    /// [`RecoveryReport`].
    pub fn recover(
        &self,
        config: &AscsConfig,
        hyper: Option<&HyperParameters>,
        shards: usize,
    ) -> Result<RecoveryOutcome, DurabilityError> {
        let started = Instant::now();
        std::fs::create_dir_all(&self.dir).map_err(io_err("create data directory"))?;
        let mut report = RecoveryReport {
            checkpoint_generation: None,
            checkpoint_epoch: 0,
            torn_generations_discarded: 0,
            wal_segments_scanned: 0,
            wal_records_replayed: 0,
            wal_records_skipped: 0,
            wal_tail_discarded: false,
            wal_repaired: false,
            stray_files_removed: 0,
            recovered_epoch: 0,
            duration: Duration::ZERO,
        };

        // ------------------------------------------------------------------
        // Scan: classify every file in the directory.
        // ------------------------------------------------------------------
        let mut manifests: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let mut shard_files: BTreeMap<u64, BTreeMap<usize, PathBuf>> = BTreeMap::new();
        let mut wal_segments: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let entries = std::fs::read_dir(&self.dir).map_err(io_err("read data directory"))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read data directory"))?;
            let path = entry.path();
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // An interrupted atomic save; never renamed, never valid.
                let _ = self.fs.remove_file(&path);
                report.stray_files_removed += 1;
            } else if let Some(seq) = parse_wal_name(&name) {
                wal_segments.insert(seq, path);
            } else if let Some(generation) = parse_manifest_name(&name) {
                manifests.insert(generation, path);
            } else if let Some((generation, shard)) = parse_shard_name(&name) {
                shard_files
                    .entry(generation)
                    .or_default()
                    .insert(shard, path);
            }
        }

        // ------------------------------------------------------------------
        // Checkpoints: validate newest-first; first fully valid generation
        // wins. Shard files without a manifest never committed.
        // ------------------------------------------------------------------
        let max_generation = manifests
            .keys()
            .chain(shard_files.keys())
            .max()
            .copied()
            .unwrap_or(0);
        let mut chosen: Option<(u64, u64, u64, StreamContext, Vec<AscsSketch>)> = None;
        let mut retained: Vec<(u64, u64)> = Vec::new();
        for (&generation, manifest) in manifests.iter().rev() {
            if chosen.is_none() {
                match self.load_generation(manifest, generation, &shard_files, config, shards) {
                    Ok((epoch, emitted, ctx, sketches)) => {
                        retained.push((generation, epoch));
                        chosen = Some((generation, epoch, emitted, ctx, sketches));
                    }
                    Err(GenerationError::Torn) => {
                        report.torn_generations_discarded += 1;
                        self.remove_generation(generation, &shard_files);
                    }
                    Err(GenerationError::Fatal(e)) => return Err(e),
                }
            } else {
                // Older generations: keep them as fallbacks if their
                // manifest still reads; their epoch bounds WAL collection.
                match self.read_manifest(manifest, config, shards) {
                    Ok((epoch, _)) => retained.push((generation, epoch)),
                    Err(GenerationError::Torn) => {
                        report.torn_generations_discarded += 1;
                        self.remove_generation(generation, &shard_files);
                    }
                    Err(GenerationError::Fatal(e)) => return Err(e),
                }
            }
        }
        retained.reverse();
        for (&generation, files) in &shard_files {
            if !manifests.contains_key(&generation) {
                for path in files.values() {
                    let _ = self.fs.remove_file(path);
                    report.stray_files_removed += 1;
                }
            }
        }

        let (mut epoch, mut emitted, mut ctx, mut sketches) = match chosen {
            Some((generation, epoch, emitted, ctx, sketches)) => {
                report.checkpoint_generation = Some(generation);
                report.checkpoint_epoch = epoch;
                (epoch, emitted, ctx, sketches)
            }
            None => {
                let prototype = prototype_sketch(config, hyper);
                (
                    0,
                    0,
                    StreamContext::new(config.dim, config.update_mode, config.estimand),
                    vec![prototype; shards],
                )
            }
        };

        // ------------------------------------------------------------------
        // WAL tail: replay in segment order through the live apply loop.
        // ------------------------------------------------------------------
        let salt = splitmix64(config.seed ^ ROUTER_SALT);
        let cap = wal_frame_cap(config.dim);
        let mut scratch: Vec<Vec<ShardUpdate>> = vec![Vec::new(); shards];
        let mut sealed: Vec<SealedSegment> = Vec::new();
        // Valid frames consumed from the segment being read, so a record
        // gap can rewrite that segment down to exactly this prefix.
        let mut kept: Vec<Vec<u8>> = Vec::new();
        let mut gap_at: Option<u64> = None;
        'segments: for (&seq, path) in &wal_segments {
            report.wal_segments_scanned += 1;
            let file = self.fs.open_read(path).map_err(io_err("wal open"))?;
            let mut r = io::BufReader::new(file);
            let mut segment_last_t = 0u64;
            kept.clear();
            loop {
                let payload = match codec::read_frame(&mut r, cap) {
                    Ok(None) => break, // clean end of segment
                    Ok(Some(payload)) => payload,
                    Err(CodecError::Io(e)) => return Err(io_err("wal read")(e)),
                    Err(_) => {
                        // Torn or corrupt tail: everything durable in this
                        // segment has been consumed; a retried append may
                        // continue in the next segment.
                        report.wal_tail_discarded = true;
                        break;
                    }
                };
                let Ok((t, sample)) = decode_wal_record(&payload) else {
                    report.wal_tail_discarded = true;
                    break;
                };
                if t <= epoch {
                    segment_last_t = segment_last_t.max(t);
                    kept.push(payload);
                    report.wal_records_skipped += 1;
                    continue;
                }
                if t != epoch + 1
                    || sample.dim() != config.dim
                    || sample.first_non_finite().is_some()
                {
                    // A gap ends the contiguous durable prefix; anything
                    // beyond it (even valid frames) must not be applied.
                    report.wal_tail_discarded = true;
                    gap_at = Some(seq);
                    sealed.push(SealedSegment {
                        path: path.clone(),
                        last_t: segment_last_t,
                    });
                    break 'segments;
                }
                segment_last_t = segment_last_t.max(t);
                kept.push(payload);
                for buf in &mut scratch {
                    buf.clear();
                }
                emitted += ctx.ingest(&sample, |u| {
                    scratch[shard_for(u.key, salt, shards)].push(ShardUpdate {
                        key: u.key,
                        value: u.value,
                        t,
                    });
                });
                for (shard, buf) in scratch.iter().enumerate() {
                    if !buf.is_empty() {
                        apply_batch(&mut sketches[shard], buf, None);
                    }
                }
                epoch = t;
                report.wal_records_replayed += 1;
            }
            sealed.push(SealedSegment {
                path: path.clone(),
                last_t: segment_last_t,
            });
        }

        if let Some(gap_seq) = gap_at {
            // Repair the log. The gap record and everything behind it can
            // never be replayed (every future recovery stops at the same
            // gap), yet the store appends *after* the last segment — so
            // without repair, post-recovery appends would sit behind the
            // gap, unreachable, and the advertised durable floor would
            // overstate what a cold start can rebuild. Rewrite the gapped
            // segment down to its consumed prefix (atomic tmp + rename)
            // and delete the dead segments beyond it; the next append
            // then re-joins a contiguous log. A crash anywhere in here
            // leaves either the old gap or a strictly smaller one, and
            // the consumed prefix — hence the recovered epoch — intact.
            report.wal_repaired = true;
            let gap_path = &wal_segments[&gap_seq];
            if kept.is_empty() {
                self.fs
                    .remove_file(gap_path)
                    .map_err(io_err("wal repair remove"))?;
                sealed.retain(|s| &s.path != gap_path);
            } else {
                let tmp = gap_path.with_extension("tmp");
                let mut file = self.fs.create(&tmp).map_err(io_err("wal repair create"))?;
                let mut frame = Vec::new();
                for payload in &kept {
                    frame.clear();
                    codec::write_frame(&mut frame, payload).map_err(codec_err("wal frame"))?;
                    use std::io::Write as _;
                    file.write_all(&frame).map_err(io_err("wal repair write"))?;
                }
                file.sync().map_err(io_err("wal repair fsync"))?;
                drop(file);
                self.fs
                    .rename(&tmp, gap_path)
                    .map_err(io_err("wal repair rename"))?;
            }
            for (&seq, path) in wal_segments.range(gap_seq + 1..) {
                let _ = seq;
                self.fs
                    .remove_file(path)
                    .map_err(io_err("wal repair remove"))?;
                report.stray_files_removed += 1;
            }
            self.fs
                .sync_dir(&self.dir)
                .map_err(io_err("wal repair directory fsync"))?;
        }

        report.recovered_epoch = epoch;
        report.duration = started.elapsed();
        let bootstrap = StoreBootstrap {
            next_wal_seq: wal_segments.keys().max().map_or(1, |&s| s + 1),
            sealed,
            next_generation: max_generation + 1,
            generations: retained,
            start_epoch: epoch,
            checkpoint_epoch: report.checkpoint_epoch,
        };
        Ok(RecoveryOutcome {
            state: RecoveredState {
                epoch,
                emitted_updates: emitted,
                ctx,
                shard_sketches: sketches,
            },
            report,
            bootstrap,
        })
    }

    /// Reads and validates one manifest; any bad bytes → `Torn`.
    fn read_manifest(
        &self,
        path: &Path,
        config: &AscsConfig,
        shards: usize,
    ) -> Result<(u64, (u64, StreamContext)), GenerationError> {
        let cap = checkpoint_frame_cap(config);
        let loaded = codec::load_from_path_with(&*self.fs, path, |r| {
            let payload = read_single_frame(r, cap)?;
            let r = &mut payload.as_slice();
            codec::read_header(r, codec::TAG_DURABLE_MANIFEST)?;
            let epoch = codec::read_u64(r)?;
            let manifest_shards = codec::read_u64(r)?;
            let seed = codec::read_u64(r)?;
            let emitted = codec::read_u64(r)?;
            let ctx = StreamContext::restore(r)?;
            if !r.is_empty() {
                return Err(CodecError::Corrupt("trailing bytes in manifest frame"));
            }
            Ok((epoch, manifest_shards, seed, emitted, ctx))
        });
        let (epoch, manifest_shards, seed, emitted, ctx) = match loaded {
            Ok(fields) => fields,
            Err(CodecError::Io(e)) if e.kind() != io::ErrorKind::NotFound => {
                return Err(GenerationError::Fatal(io_err("manifest open")(e)));
            }
            Err(_) => return Err(GenerationError::Torn),
        };
        // A mismatch against the live configuration is indistinguishable
        // from a bit flip in these very fields — either way the generation
        // cannot seed this instance, so it falls back like a torn one.
        if manifest_shards != shards as u64
            || seed != config.seed
            || ctx.dim() != config.dim
            || ctx.samples_seen() != epoch
        {
            return Err(GenerationError::Torn);
        }
        Ok((epoch, (emitted, ctx)))
    }

    /// Fully validates one generation: manifest plus every shard sketch.
    #[allow(clippy::type_complexity)]
    fn load_generation(
        &self,
        manifest: &Path,
        generation: u64,
        shard_files: &BTreeMap<u64, BTreeMap<usize, PathBuf>>,
        config: &AscsConfig,
        shards: usize,
    ) -> Result<(u64, u64, StreamContext, Vec<AscsSketch>), GenerationError> {
        let (epoch, (emitted, ctx)) = self.read_manifest(manifest, config, shards)?;
        let files = shard_files.get(&generation);
        let mut sketches = Vec::with_capacity(shards);
        for shard in 0..shards {
            let Some(path) = files.and_then(|f| f.get(&shard)) else {
                return Err(GenerationError::Torn);
            };
            let cap = checkpoint_frame_cap(config);
            let sketch = match codec::load_from_path_with(&*self.fs, path, |r| {
                let payload = read_single_frame(r, cap)?;
                let r = &mut payload.as_slice();
                let sketch = AscsSketch::restore(r)?;
                if !r.is_empty() {
                    return Err(CodecError::Corrupt("trailing bytes in shard frame"));
                }
                Ok(sketch)
            }) {
                Ok(sketch) => sketch,
                Err(CodecError::Io(e)) if e.kind() != io::ErrorKind::NotFound => {
                    return Err(GenerationError::Fatal(io_err("checkpoint shard open")(e)));
                }
                Err(_) => return Err(GenerationError::Torn),
            };
            if sketch.sketch().rows() != config.geometry.rows
                || sketch.sketch().range() != config.geometry.range
            {
                return Err(GenerationError::Torn);
            }
            sketches.push(sketch);
        }
        Ok((epoch, emitted, ctx, sketches))
    }

    fn remove_generation(
        &self,
        generation: u64,
        shard_files: &BTreeMap<u64, BTreeMap<usize, PathBuf>>,
    ) {
        let _ = self.fs.remove_file(&manifest_path(&self.dir, generation));
        if let Some(files) = shard_files.get(&generation) {
            for path in files.values() {
                let _ = self.fs.remove_file(path);
            }
        }
    }
}

/// [`RecoveryManager::recover`] with a bounded re-entry budget, for
/// environments where recovery *itself* can crash (the chaos harness kills
/// the filesystem mid-WAL-replay). Each attempt runs over a fresh
/// filesystem from `fs_for_attempt(attempt)` — a crashed fault filesystem
/// stays dead, so retrying through it would loop forever. After `budget`
/// failed attempts the loop terminates with the typed
/// [`DurabilityError::RecoveryBudgetExhausted`] instead of hanging.
///
/// Recovery is read-only plus idempotent stray-file removal, so a crashed
/// attempt leaves the durable prefix intact for the next one.
///
/// # Errors
/// [`DurabilityError::RecoveryBudgetExhausted`] wrapping the final
/// attempt's error once all `budget` attempts have failed.
///
/// # Panics
/// If `budget` is zero.
pub fn recover_with_reentry<F>(
    dir: &Path,
    config: &AscsConfig,
    hyper: Option<&HyperParameters>,
    shards: usize,
    budget: u32,
    mut fs_for_attempt: F,
) -> Result<RecoveryOutcome, DurabilityError>
where
    F: FnMut(u32) -> Arc<dyn DurableFs>,
{
    assert!(budget >= 1, "recovery re-entry budget must be positive");
    let mut last: Option<DurabilityError> = None;
    for attempt in 0..budget {
        let manager = RecoveryManager::with_fs(dir, fs_for_attempt(attempt));
        match manager.recover(config, hyper, shards) {
            Ok(outcome) => return Ok(outcome),
            Err(e) => last = Some(e),
        }
    }
    Err(DurabilityError::RecoveryBudgetExhausted {
        attempts: budget,
        last: Box::new(last.expect("budget >= 1 attempts ran")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_records_roundtrip_dense_and_sparse() {
        let dense = Sample::dense(vec![1.5, -2.0, 0.0, 3.25]);
        let sparse = Sample::sparse(1000, vec![(7, 0.5), (999, -4.0)]);
        for (t, sample) in [(1u64, &dense), (u64::MAX, &sparse)] {
            let mut buf = Vec::new();
            encode_wal_record(&mut buf, t, sample).unwrap();
            let (rt, rs) = decode_wal_record(&buf).unwrap();
            assert_eq!(rt, t);
            assert_eq!(&rs, sample);
        }
    }

    #[test]
    fn wal_record_decoding_rejects_bad_payloads() {
        let mut buf = Vec::new();
        encode_wal_record(&mut buf, 3, &Sample::dense(vec![1.0, 2.0])).unwrap();
        // Trailing bytes are a framing bug, not silently ignored.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            decode_wal_record(&padded),
            Err(CodecError::Corrupt(_))
        ));
        // Truncation anywhere is typed.
        for cut in 1..buf.len() {
            assert!(decode_wal_record(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn wal_record_caps_reject_absurd_lengths_before_allocation() {
        let mut buf = Vec::new();
        codec::write_header(&mut buf, codec::TAG_WAL_RECORD).unwrap();
        codec::write_u64(&mut buf, 1).unwrap();
        codec::write_u8(&mut buf, 0).unwrap();
        codec::write_u64(&mut buf, u64::MAX).unwrap(); // claimed dense length
        assert!(matches!(
            decode_wal_record(&buf),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn file_name_parsers_roundtrip_and_reject_noise() {
        let dir = Path::new("/data");
        let wal = wal_path(dir, 42);
        assert_eq!(
            parse_wal_name(wal.file_name().unwrap().to_str().unwrap()),
            Some(42)
        );
        let manifest = manifest_path(dir, 7);
        assert_eq!(
            parse_manifest_name(manifest.file_name().unwrap().to_str().unwrap()),
            Some(7)
        );
        let shard = shard_path(dir, 7, 3);
        assert_eq!(
            parse_shard_name(shard.file_name().unwrap().to_str().unwrap()),
            Some((7, 3))
        );
        assert_eq!(parse_wal_name("wal-xyz.log"), None);
        assert_eq!(parse_manifest_name("ckpt-1.shard002"), None);
        assert_eq!(parse_shard_name("ckpt-1.manifest"), None);
        assert_eq!(parse_wal_name("notes.txt"), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(1);
        assert_eq!(exponential_backoff(base, 0), Duration::from_millis(1));
        assert_eq!(exponential_backoff(base, 1), Duration::from_millis(2));
        assert_eq!(exponential_backoff(base, 3), Duration::from_millis(8));
        assert_eq!(exponential_backoff(base, 30), Duration::from_millis(100));
    }
}
