//! Sampling threshold schedules `τ(t)`.
//!
//! Section 6.5 of the paper restricts the threshold to a linear ramp
//! `τ(t) = τ(T0) + θ·(t − T0)/T`, arguing via the law of the iterated
//! logarithm that a (near-)linear growth rate is close to optimal: grow the
//! threshold faster and signal estimates (whose random fluctuations shrink
//! like `√t`) get clipped; grow it slower and too much noise keeps being
//! ingested. The `Constant` and `Step` variants are provided as ablations —
//! they are *not* part of the paper's algorithm but let the benchmark
//! harness quantify how much the linear ramp actually buys.

use ascs_count_sketch::codec::{self, CodecError};
use serde::{Deserialize, Serialize};

/// A threshold schedule over stream time `t ∈ [T0, T]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdSchedule {
    /// The paper's linear ramp: `τ(t) = τ0 + θ·(t − T0)/T`.
    Linear {
        /// Initial threshold `τ(T0)`.
        tau0: f64,
        /// Slope parameter `θ` (chosen by Algorithm 3, `0 < θ < u`).
        theta: f64,
        /// Exploration length `T0`.
        t0: u64,
        /// Total number of samples `T`.
        total: u64,
    },
    /// Ablation: a constant threshold `τ(t) = τ0`.
    Constant {
        /// The fixed threshold.
        tau0: f64,
    },
    /// Ablation: a single step from `tau0` to `tau1` at time `step_at`.
    Step {
        /// Threshold before the step.
        tau0: f64,
        /// Threshold after the step.
        tau1: f64,
        /// Time of the step.
        step_at: u64,
    },
}

impl ThresholdSchedule {
    /// The paper's linear schedule.
    pub fn linear(tau0: f64, theta: f64, t0: u64, total: u64) -> Self {
        assert!(total > 0, "total sample count must be positive");
        assert!(
            t0 <= total,
            "exploration period cannot exceed the stream length"
        );
        assert!(
            tau0 >= 0.0 && theta >= 0.0,
            "thresholds must be non-negative"
        );
        Self::Linear {
            tau0,
            theta,
            t0,
            total,
        }
    }

    /// Threshold in force at stream time `t` (1-based sample counter).
    ///
    /// For `t` before the start of sampling the initial threshold is
    /// returned; the schedule is never evaluated there by the algorithm but
    /// a total function keeps the instrumentation simple.
    pub fn tau(&self, t: u64) -> f64 {
        match *self {
            Self::Linear {
                tau0,
                theta,
                t0,
                total,
            } => {
                if t <= t0 {
                    tau0
                } else {
                    tau0 + theta * (t.min(total) - t0) as f64 / total as f64
                }
            }
            Self::Constant { tau0 } => tau0,
            Self::Step {
                tau0,
                tau1,
                step_at,
            } => {
                if t < step_at {
                    tau0
                } else {
                    tau1
                }
            }
        }
    }

    /// The threshold at the end of the stream — the effective bar a pair
    /// must clear to still be sampled on the final rounds.
    pub fn final_tau(&self, total: u64) -> f64 {
        self.tau(total)
    }

    /// Serializes the schedule inline (variant byte + fields) — schedules
    /// are embedded in sketch records and carry no header of their own.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        match *self {
            Self::Linear {
                tau0,
                theta,
                t0,
                total,
            } => {
                codec::write_u8(w, 0)?;
                codec::write_f64(w, tau0)?;
                codec::write_f64(w, theta)?;
                codec::write_u64(w, t0)?;
                codec::write_u64(w, total)
            }
            Self::Constant { tau0 } => {
                codec::write_u8(w, 1)?;
                codec::write_f64(w, tau0)
            }
            Self::Step {
                tau0,
                tau1,
                step_at,
            } => {
                codec::write_u8(w, 2)?;
                codec::write_f64(w, tau0)?;
                codec::write_f64(w, tau1)?;
                codec::write_u64(w, step_at)
            }
        }
    }

    /// Restores a schedule written by [`ThresholdSchedule::save`],
    /// re-validating the invariants the constructors enforce so corrupt
    /// bytes surface as [`CodecError::Corrupt`] rather than a panic later.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        match codec::read_u8(r)? {
            0 => {
                let tau0 = codec::read_f64(r)?;
                let theta = codec::read_f64(r)?;
                let t0 = codec::read_u64(r)?;
                let total = codec::read_u64(r)?;
                if total == 0 || t0 > total {
                    return Err(CodecError::Corrupt(
                        "linear schedule exploration exceeds the stream length",
                    ));
                }
                if tau0.is_nan() || tau0 < 0.0 || theta.is_nan() || theta < 0.0 {
                    return Err(CodecError::Corrupt(
                        "linear schedule thresholds must be non-negative",
                    ));
                }
                Ok(Self::Linear {
                    tau0,
                    theta,
                    t0,
                    total,
                })
            }
            1 => {
                let tau0 = codec::read_f64(r)?;
                if tau0.is_nan() {
                    return Err(CodecError::Corrupt("constant schedule threshold is NaN"));
                }
                Ok(Self::Constant { tau0 })
            }
            2 => {
                let tau0 = codec::read_f64(r)?;
                let tau1 = codec::read_f64(r)?;
                let step_at = codec::read_u64(r)?;
                if tau0.is_nan() || tau1.is_nan() {
                    return Err(CodecError::Corrupt("step schedule threshold is NaN"));
                }
                Ok(Self::Step {
                    tau0,
                    tau1,
                    step_at,
                })
            }
            _ => Err(CodecError::Corrupt("unknown threshold schedule variant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp_matches_paper_formula() {
        let s = ThresholdSchedule::linear(1e-4, 0.5, 100, 1000);
        assert_eq!(s.tau(100), 1e-4);
        // t = 600: tau0 + theta*(600-100)/1000 = 1e-4 + 0.25
        assert!((s.tau(600) - (1e-4 + 0.25)).abs() < 1e-12);
        assert!((s.tau(1000) - (1e-4 + 0.45)).abs() < 1e-12);
    }

    #[test]
    fn linear_ramp_is_monotone_nondecreasing() {
        let s = ThresholdSchedule::linear(0.01, 0.3, 50, 500);
        let mut prev = f64::NEG_INFINITY;
        for t in 0..=500 {
            let tau = s.tau(t);
            assert!(tau >= prev);
            prev = tau;
        }
    }

    #[test]
    fn linear_ramp_clamps_beyond_total() {
        let s = ThresholdSchedule::linear(0.0, 1.0, 10, 100);
        assert_eq!(s.tau(100), s.tau(10_000));
    }

    #[test]
    fn before_exploration_end_returns_tau0() {
        let s = ThresholdSchedule::linear(0.2, 1.0, 10, 100);
        assert_eq!(s.tau(0), 0.2);
        assert_eq!(s.tau(5), 0.2);
        assert_eq!(s.tau(10), 0.2);
    }

    #[test]
    fn constant_schedule_never_moves() {
        let s = ThresholdSchedule::Constant { tau0: 0.07 };
        assert_eq!(s.tau(0), 0.07);
        assert_eq!(s.tau(1_000_000), 0.07);
    }

    #[test]
    fn step_schedule_switches_once() {
        let s = ThresholdSchedule::Step {
            tau0: 0.1,
            tau1: 0.4,
            step_at: 50,
        };
        assert_eq!(s.tau(49), 0.1);
        assert_eq!(s.tau(50), 0.4);
        assert_eq!(s.tau(51), 0.4);
    }

    #[test]
    fn final_tau_matches_tau_at_total() {
        let s = ThresholdSchedule::linear(0.0, 0.8, 100, 2000);
        assert_eq!(s.final_tau(2000), s.tau(2000));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn t0_beyond_total_panics() {
        ThresholdSchedule::linear(0.0, 0.1, 200, 100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        ThresholdSchedule::linear(0.0, -0.1, 10, 100);
    }
}
