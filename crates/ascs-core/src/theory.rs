//! Closed-form probability bounds of Theorems 1–3.
//!
//! The bounds are used in two places: Algorithm 3 inverts the Theorem 1 and
//! Theorem 2 bounds to choose the exploration length `T0` and the threshold
//! slope `θ`, and the validation experiments (Table 1, Figure 5) compare the
//! bounds against observed frequencies.
//!
//! ### Multi-table extension
//!
//! The paper states the theorems for a single hash table (`K = 1`) and
//! sketches a multi-table approximation in which `κ0` is replaced by
//! `κ = sqrt(1 + π(p−1)(1−α)/(2K(R−α)))` (the factor `π/2K` comes from the
//! asymptotic variance of a sample median) and `p0` by `p0^K`. The `p0^K`
//! substitution treats a signal collision in *any* table as fatal, which is
//! the right worst case for `K = 1` but far too pessimistic for the median
//! estimator: with `K = 5` tables the median is only corrupted when a
//! *majority* of tables suffer a signal collision. Using the printed
//! worst case would make the saturation probability so large that the
//! paper's own `δ = 0.05` targets (Table 1) become infeasible, so this
//! implementation exposes both variants and defaults to the median-aware
//! one ([`SignalCollisionModel::MedianAware`]). The substitution is recorded
//! in DESIGN.md.

use ascs_numerics::normal_cdf;
use serde::{Deserialize, Serialize};

/// How the probability of a "fatal" signal-signal collision is computed for
/// multi-table sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalCollisionModel {
    /// The paper's printed worst case: any table containing a colliding
    /// signal pair counts as corrupted (`p0 → p0^K`).
    WorstCase,
    /// Median-aware model: the estimate is only considered corrupted when a
    /// strict majority of the `K` tables contain a colliding signal pair.
    MedianAware,
}

/// Bound calculator carrying the problem parameters of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoryBounds {
    /// Number of items (pairs) `p`.
    pub p: f64,
    /// Buckets per hash table `R`.
    pub r: f64,
    /// Number of hash tables `K`.
    pub k: usize,
    /// Signal proportion `α`.
    pub alpha: f64,
    /// Per-update noise scale `σ` (std of `X_i`).
    pub sigma: f64,
    /// Signal strength `u` (lower bound on the signal mean).
    pub u: f64,
    /// Total number of samples `T`.
    pub total: f64,
    /// Collision model used for the multi-table extension.
    pub collision_model: SignalCollisionModel,
}

impl TheoryBounds {
    /// Builds the calculator from the run configuration.
    pub fn new(p: u64, r: usize, k: usize, alpha: f64, sigma: f64, u: f64, total: u64) -> Self {
        assert!(p >= 1 && r >= 1 && k >= 1 && total >= 1);
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(u > 0.0, "signal strength must be positive");
        Self {
            p: p as f64,
            r: r as f64,
            k,
            alpha,
            sigma,
            u,
            total: total as f64,
            collision_model: SignalCollisionModel::MedianAware,
        }
    }

    /// Switches to the paper's printed worst-case collision model.
    pub fn with_worst_case_collisions(mut self) -> Self {
        self.collision_model = SignalCollisionModel::WorstCase;
        self
    }

    /// `p0 = ((R − α)/R)^{p−1}`: probability that a given item shares its
    /// bucket with **no** signal item, in a single table.
    pub fn p0_single(&self) -> f64 {
        // (1 − α/R)^(p−1) computed in log space for stability at large p.
        ((self.p - 1.0) * (1.0 - self.alpha / self.r).ln()).exp()
    }

    /// Probability that the estimate of an item is *not* corrupted by
    /// signal collisions, under the configured collision model.
    pub fn collision_free_prob(&self) -> f64 {
        let p0 = self.p0_single();
        match self.collision_model {
            SignalCollisionModel::WorstCase => p0.powi(self.k as i32),
            SignalCollisionModel::MedianAware => {
                if self.k == 1 {
                    return p0;
                }
                // Corrupted when > K/2 tables have a signal collision.
                let q = 1.0 - p0; // per-table collision probability
                let k = self.k;
                let majority = k / 2 + 1;
                let mut corrupted = 0.0;
                for j in majority..=k {
                    corrupted += binomial_pmf(k, j, q);
                }
                1.0 - corrupted
            }
        }
    }

    /// Saturation probability `SP = 1 − collision_free_prob` — the floor
    /// below which no choice of `T0` can push the Theorem 1 bound.
    pub fn saturation_probability(&self) -> f64 {
        1.0 - self.collision_free_prob()
    }

    /// Single-table collision inflation factor
    /// `κ0 = sqrt(1 + (p−1)(1−α)/(R−α))`.
    pub fn kappa_single(&self) -> f64 {
        (1.0 + (self.p - 1.0) * (1.0 - self.alpha) / (self.r - self.alpha)).sqrt()
    }

    /// Multi-table factor `κ = sqrt(1 + π(p−1)(1−α)/(2K(R−α)))`; collapses
    /// to [`kappa_single`](Self::kappa_single) at `K = 1`.
    pub fn kappa(&self) -> f64 {
        if self.k == 1 {
            return self.kappa_single();
        }
        let pi = std::f64::consts::PI;
        (1.0 + pi * (self.p - 1.0) * (1.0 - self.alpha)
            / (2.0 * self.k as f64 * (self.r - self.alpha)))
            .sqrt()
    }

    /// `ω²` of Theorem 2 for a single table:
    /// `σ²(1 + (p−1)(1−α)/(T²(R−α)))`.
    pub fn omega_sq_single(&self) -> f64 {
        self.sigma
            * self.sigma
            * (1.0
                + (self.p - 1.0) * (1.0 - self.alpha)
                    / (self.total * self.total * (self.r - self.alpha)))
    }

    /// `ω₁²` of the multi-table extension:
    /// `σ²(1 + π(p−1)(1−α)/(2KT²(R−α)))`.
    pub fn omega_sq(&self) -> f64 {
        if self.k == 1 {
            return self.omega_sq_single();
        }
        let pi = std::f64::consts::PI;
        self.sigma
            * self.sigma
            * (1.0
                + pi * (self.p - 1.0) * (1.0 - self.alpha)
                    / (2.0 * self.k as f64 * self.total * self.total * (self.r - self.alpha)))
    }

    /// Theorem 1 (and its multi-table approximation): upper bound on the
    /// probability that a signal pair's estimate sits below `τ(T0)` at the
    /// end of an exploration period of length `t0`.
    pub fn theorem1_miss_bound(&self, t0: u64, tau0: f64) -> f64 {
        let t0 = t0 as f64;
        if t0 <= 0.0 {
            return 1.0;
        }
        let clean = self.collision_free_prob();
        let arg =
            -((t0.sqrt() * self.u - self.total * tau0 / t0.sqrt()) / (self.kappa() * self.sigma));
        (normal_cdf(arg) * clean + (1.0 - clean)).clamp(0.0, 1.0)
    }

    /// Theorem 2 (and its multi-table approximation): upper bound on the
    /// probability that a signal pair that survived exploration is later
    /// filtered out at some time in `(T0, T]`, given the linear schedule
    /// `τ(t) = τ0 + θ(t − T0)/T`.
    pub fn theorem2_omission_bound(&self, theta: f64, tau0: f64, t0: u64) -> f64 {
        let t0 = t0 as f64;
        let omega_sq = self.omega_sq();
        let omega = omega_sq.sqrt();
        let exp_term = ((self.u - theta) * (tau0 - t0 / self.total * theta) / omega_sq).exp();
        let phi_term =
            normal_cdf((t0 * (2.0 * theta - self.u) - tau0 * self.total) / (t0.sqrt() * omega));
        (exp_term * phi_term).clamp(0.0, 1.0)
    }

    /// Combined miss bound over the whole run: Theorem 1 at `T0` plus
    /// Theorem 2 over `(T0, T]` (union bound, as Algorithm 3 uses it).
    pub fn total_miss_bound(&self, t0: u64, tau0: f64, theta: f64) -> f64 {
        (self.theorem1_miss_bound(t0, tau0) + self.theorem2_omission_bound(theta, tau0, t0))
            .clamp(0.0, 1.0)
    }

    /// SNR of the stream ingested by vanilla CS (Section 7.1):
    /// `α(u² + σ²) / ((1 − α)σ²)`.
    pub fn snr_cs(&self) -> f64 {
        self.alpha * (self.u * self.u + self.sigma * self.sigma)
            / ((1.0 - self.alpha) * self.sigma * self.sigma)
    }

    /// Theorem 3: lower bound on the ratio `SNR_ASCS(t) / SNR_CS` at stream
    /// time `t`, for a run with exploration length `t0`, slope `theta` and
    /// total miss probability target `delta_star`.
    pub fn theorem3_snr_ratio_lower_bound(
        &self,
        t: u64,
        t0: u64,
        theta: f64,
        delta_star: f64,
    ) -> f64 {
        let t = t as f64;
        let t0 = t0 as f64;
        if t <= t0 {
            // During exploration ASCS ingests everything, so the ratio is 1.
            return 1.0;
        }
        let clean = self.collision_free_prob();
        let noise_fraction =
            normal_cdf(-theta * (t.sqrt() - t0.sqrt()) / (self.kappa() * self.sigma)) * clean
                + (1.0 - clean);
        let signal_fraction = (1.0 - delta_star).max(0.0);
        if noise_fraction <= 0.0 {
            return f64::INFINITY;
        }
        (signal_fraction / noise_fraction).max(0.0)
    }

    /// The limiting value of the Theorem 3 ratio as `t → ∞`:
    /// `(1 − δ*) / (1 − p0_eff)`.
    pub fn theorem3_limit(&self, delta_star: f64) -> f64 {
        let sp = self.saturation_probability();
        if sp <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 - delta_star).max(0.0) / sp
    }
}

/// Binomial probability mass function `P[Bin(n, q) = j]`, computed in log
/// space to stay stable for moderate `n`.
fn binomial_pmf(n: usize, j: usize, q: f64) -> f64 {
    if q <= 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if q >= 1.0 {
        return if j == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(j) - ln_factorial(n - j);
    (ln_choose + j as f64 * q.ln() + (n - j) as f64 * (1.0 - q).ln()).exp()
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters resembling the Table 1 simulation setup: d = 1000 features
    /// (p ≈ 5·10^5 pairs), R = p/20, K = 5, α = 0.5%, u = 0.5, σ = 1,
    /// T = 1000.
    fn table1_setup() -> TheoryBounds {
        let p = 1000u64 * 999 / 2;
        TheoryBounds::new(p, (p / 20) as usize, 5, 0.005, 1.0, 0.5, 1000)
    }

    #[test]
    fn p0_single_matches_closed_form_small_case() {
        let b = TheoryBounds::new(100, 50, 1, 0.1, 1.0, 1.0, 10);
        let expect = (1.0f64 - 0.1 / 50.0).powi(99);
        assert!((b.p0_single() - expect).abs() < 1e-12);
    }

    #[test]
    fn collision_free_prob_is_higher_under_median_model() {
        let b = table1_setup();
        let worst = b.with_worst_case_collisions().collision_free_prob();
        let median = b.collision_free_prob();
        assert!(median > worst);
        assert!(median <= 1.0 && worst > 0.0);
    }

    #[test]
    fn saturation_probability_is_small_for_paper_setup() {
        // With the median-aware model, the Table 1 target δ = 0.05 must be
        // feasible (SP < 0.05), matching the paper's reported experiments.
        let b = table1_setup();
        assert!(
            b.saturation_probability() < 0.05,
            "SP = {}",
            b.saturation_probability()
        );
    }

    #[test]
    fn kappa_multi_is_smaller_than_single() {
        let b = table1_setup();
        assert!(b.kappa() < b.kappa_single());
        assert!(b.kappa() > 1.0);
    }

    #[test]
    fn kappa_multi_collapses_to_single_at_k1() {
        let p = 1000u64 * 999 / 2;
        let b = TheoryBounds::new(p, (p / 20) as usize, 1, 0.005, 1.0, 0.5, 1000);
        assert_eq!(b.kappa(), b.kappa_single());
        assert_eq!(b.omega_sq(), b.omega_sq_single());
        assert_eq!(b.collision_free_prob(), b.p0_single());
    }

    #[test]
    fn theorem1_bound_decreases_with_longer_exploration() {
        let b = table1_setup();
        let short = b.theorem1_miss_bound(10, 1e-4);
        let long = b.theorem1_miss_bound(400, 1e-4);
        assert!(long < short, "short={short} long={long}");
    }

    #[test]
    fn theorem1_bound_is_a_probability() {
        let b = table1_setup();
        for t0 in [1u64, 10, 100, 500, 1000] {
            let v = b.theorem1_miss_bound(t0, 1e-4);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn theorem1_bound_never_drops_below_saturation() {
        let b = table1_setup();
        let sp = b.saturation_probability();
        assert!(b.theorem1_miss_bound(1000, 0.0) >= sp - 1e-12);
    }

    #[test]
    fn theorem1_feasible_t0_exists_for_paper_targets() {
        // A modest exploration period must satisfy δ = 0.05 for the
        // simulation parameters, otherwise Table 1 could not be reproduced.
        let b = table1_setup();
        let feasible = (1..1000).any(|t0| b.theorem1_miss_bound(t0, 1e-4) <= 0.05);
        assert!(feasible);
    }

    #[test]
    fn theorem2_bound_increases_with_theta() {
        let b = table1_setup();
        let lo = b.theorem2_omission_bound(0.05, 1e-4, 100);
        let hi = b.theorem2_omission_bound(0.45, 1e-4, 100);
        assert!(hi >= lo, "lo={lo} hi={hi}");
    }

    #[test]
    fn theorem2_bound_is_a_probability() {
        let b = table1_setup();
        for theta in [0.01, 0.1, 0.25, 0.49] {
            let v = b.theorem2_omission_bound(theta, 1e-4, 100);
            assert!((0.0..=1.0).contains(&v), "theta={theta} v={v}");
        }
    }

    #[test]
    fn theorem2_small_theta_gives_small_bound() {
        let b = table1_setup();
        let v = b.theorem2_omission_bound(0.01, 1e-4, 100);
        assert!(v < 0.1, "bound at tiny theta should be small, got {v}");
    }

    #[test]
    fn snr_cs_matches_formula() {
        let b = table1_setup();
        let expect = 0.005 * (0.25 + 1.0) / (0.995 * 1.0);
        assert!((b.snr_cs() - expect).abs() < 1e-12);
    }

    #[test]
    fn theorem3_ratio_is_one_during_exploration_and_grows_after() {
        let b = table1_setup();
        assert_eq!(b.theorem3_snr_ratio_lower_bound(50, 100, 0.2, 0.2), 1.0);
        let early = b.theorem3_snr_ratio_lower_bound(150, 100, 0.2, 0.2);
        let late = b.theorem3_snr_ratio_lower_bound(900, 100, 0.2, 0.2);
        assert!(late >= early);
        assert!(late >= 1.0);
    }

    #[test]
    fn theorem3_limit_matches_ratio_at_large_t() {
        let b = table1_setup();
        let limit = b.theorem3_limit(0.2);
        let far = b.theorem3_snr_ratio_lower_bound(1_000_000_000, 100, 0.2, 0.2);
        assert!(
            (far - limit).abs() / limit < 0.05,
            "far={far} limit={limit}"
        );
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 7;
        let q = 0.3;
        let total: f64 = (0..=n).map(|j| binomial_pmf(n, j, q)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_edge_probabilities() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn invalid_alpha_panics() {
        TheoryBounds::new(10, 5, 1, 1.5, 1.0, 1.0, 10);
    }
}
