//! Time-aware covariance sketching: sliding-window and exponential-decay
//! backends for drifting streams.
//!
//! The paper's theorems assume stationary means, and the gated ASCS sketch
//! freezes drift-emergent signals accordingly (the `covariance_flip`
//! conformance scenario documents this). The two structures here make the
//! drift case a feature instead:
//!
//! * [`WindowedSketch`] — a ring of `S` count-sketch segments, each
//!   covering a block of `L` samples. Ingestion goes into the head
//!   segment; when the stream crosses a block boundary the oldest segment
//!   is *retired* (returned to the caller, spillable through the PR 5
//!   codec as a [`RetiredSegment`]) and its slot is reused. Estimates
//!   merge the live segments by count-sketch linearity — per row, bucket
//!   sums are added across segments in chronological order *before* the
//!   median, so the merged read is exactly the read of one sketch built
//!   over only the in-window samples (bit-identical under exactly
//!   representable weights; the ingestion-equivalence proptests pin this).
//! * [`DecayedSketch`] — an exponentially decayed sketch using
//!   **scale-on-read**: updates are stored pre-scaled by the *inverse*
//!   decay relative to a per-generation base time, and reads scale each
//!   generation by `γ^(t − base)`. Tables are never rescaled in place —
//!   reads are pure, so results are bit-stable under any read/ingest
//!   interleaving — and a global accumulator rotates to a fresh generation
//!   before the inverse-decay factor can overflow. Fully decayed
//!   generations are pruned only once their read scale underflows to
//!   exactly `0.0`, so pruning is bitwise invisible.
//!
//! Both structures are ungated (vanilla count-sketch semantics): the
//! active-sampling gate is precisely what freezes emergent signals under
//! drift, and the stationary-stream theorems do not cover either estimand.
//! Their error is the plain count-sketch collision model over the window
//! (resp. the decayed effective sample size), which is what the
//! conformance harness gates them against.

use ascs_count_sketch::codec::{self, CodecError};
use ascs_count_sketch::{median_in_place, CountSketch};
use ascs_sketch_hash::{HashPlan, MAX_ROWS};

/// Hard cap on the number of ring segments accepted by constructors and
/// the codec — far above any sensible configuration, low enough that a
/// corrupt header cannot demand absurd allocations.
pub const MAX_WINDOW_SEGMENTS: usize = 4096;

/// Rotation bound of [`DecayedSketch`]: a new generation is opened before
/// the in-generation inverse-decay factor `γ^(−(t − base))` would exceed
/// this, keeping every stored weight comfortably inside f64 range (the
/// read-side scale `γ^(t − base)` of a just-rotated generation is then
/// ≥ 1e-120, far from underflow).
const GROWTH_LIMIT: f64 = 1e120;

/// A sliding-window segment retired from a [`WindowedSketch`] ring: the
/// block index it covered plus its count-sketch table. Serializable on its
/// own (tag [`codec::TAG_WINDOW_SEGMENT`]) so retired segments can spill
/// to disk and later be restored and merged back — e.g. to reconstruct the
/// cumulative sketch from a ring plus its spill history.
#[derive(Debug, Clone)]
pub struct RetiredSegment {
    block: u64,
    sketch: CountSketch,
}

impl RetiredSegment {
    /// The block index this segment covered (block `b` holds samples
    /// `b·L + 1 ..= (b+1)·L`).
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The segment's count-sketch table.
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    /// Consumes the record, yielding the sketch (e.g. to merge it).
    pub fn into_sketch(self) -> CountSketch {
        self.sketch
    }

    /// Serializes the retired segment (versioned header, block index,
    /// nested count-sketch record).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_WINDOW_SEGMENT)?;
        codec::write_u64(w, self.block)?;
        self.sketch.save(w)
    }

    /// Restores a segment saved by [`RetiredSegment::save`]. Truncated or
    /// corrupt input surfaces as a typed [`CodecError`], never a panic.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_WINDOW_SEGMENT)?;
        let block = codec::read_u64(r)?;
        let sketch = CountSketch::restore(r)?;
        Ok(Self { block, sketch })
    }
}

/// Sliding-window count sketch: a ring of `S` segments of `L` samples
/// each, merged by linearity at read time.
///
/// The window is block-aligned: at stream time `t` (in block
/// `b = (t−1)/L`) the live blocks are `max(0, b−S+1) ..= b`, so the
/// window spans between `(S−1)·L + 1` and `S·L` samples once warm.
/// [`WindowedSketch::estimate`] returns the *windowed mean* of the
/// ingested pair updates (the raw merged sum divided by
/// [`WindowedSketch::window_len`]).
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    segments: Vec<CountSketch>,
    segment_len: u64,
    rows: usize,
    range: usize,
    seed: u64,
    t: u64,
    ingested: u64,
    retired: u64,
}

impl WindowedSketch {
    /// Creates a ring of `segments` fresh segments of `segment_len`
    /// samples each, all sharing one hash family derived from `seed` (so
    /// one [`HashPlan`] drives every segment).
    ///
    /// # Panics
    /// Panics if `segment_len == 0`, `segments == 0` or `segments`
    /// exceeds [`MAX_WINDOW_SEGMENTS`].
    pub fn new(rows: usize, range: usize, seed: u64, segment_len: u64, segments: usize) -> Self {
        assert!(segment_len >= 1, "window segments must cover ≥ 1 sample");
        assert!(
            (1..=MAX_WINDOW_SEGMENTS).contains(&segments),
            "window ring needs 1..={MAX_WINDOW_SEGMENTS} segments, got {segments}"
        );
        Self {
            segments: (0..segments)
                .map(|_| CountSketch::new(rows, range, seed))
                .collect(),
            segment_len,
            rows,
            range,
            seed,
            t: 0,
            ingested: 0,
            retired: 0,
        }
    }

    /// Samples per segment (`L`).
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Segments in the ring (`S`).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Stream time: samples announced via
    /// [`WindowedSketch::begin_sample`].
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Pair updates ingested over the whole stream (not just the window).
    pub fn ingested_updates(&self) -> u64 {
        self.ingested
    }

    /// Segments retired (fallen out of the window) so far.
    pub fn retired_segments(&self) -> u64 {
        self.retired
    }

    /// Rows `K` of every segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row `R` of every segment.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Seed of the shared hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Table words across the whole ring.
    pub fn memory_words(&self) -> usize {
        self.segments.len() * self.rows * self.range
    }

    /// First stream time inside the current window (1-based), and the
    /// number of in-window samples. `(1, 0)` before any sample.
    pub fn window_span(&self) -> (u64, u64) {
        window_span(self.t, self.segment_len, self.segments.len())
    }

    /// Number of samples the current window covers.
    pub fn window_len(&self) -> u64 {
        self.window_span().1
    }

    /// Builds a [`HashPlan`] for the dense key set `0..len` from the
    /// shared hash family; valid for every segment of the ring.
    pub fn build_plan(&self, len: usize) -> HashPlan {
        self.segments[0].build_plan(len)
    }

    /// Advances the stream clock to the next sample, rotating the ring at
    /// block boundaries. When the advance pushes the oldest block out of
    /// the window, that segment is **retired**: returned to the caller
    /// (spill it via [`RetiredSegment::save`], or drop it to forget) and
    /// replaced by a fresh head segment. Must be called once per sample,
    /// before the sample's updates are ingested.
    pub fn begin_sample(&mut self) -> Option<RetiredSegment> {
        self.t += 1;
        if self.t == 1 || !(self.t - 1).is_multiple_of(self.segment_len) {
            return None;
        }
        let block = (self.t - 1) / self.segment_len;
        let s = self.segments.len() as u64;
        let slot = (block % s) as usize;
        let fresh = CountSketch::new(self.rows, self.range, self.seed);
        let old = std::mem::replace(&mut self.segments[slot], fresh);
        if block >= s {
            self.retired += 1;
            Some(RetiredSegment {
                block: block - s,
                sketch: old,
            })
        } else {
            // The slot was still virgin (ring not yet full); nothing to
            // retire.
            None
        }
    }

    /// Ingests one raw (unscaled) pair update into the head segment.
    ///
    /// # Panics
    /// Panics if called before [`WindowedSketch::begin_sample`].
    #[inline]
    pub fn ingest(&mut self, key: u64, weight: f64) {
        let head = self.head_slot();
        self.segments[head].update(key, weight);
        self.ingested += 1;
    }

    /// Plan-driven form of [`WindowedSketch::ingest`] (no hashing); the
    /// plan must come from [`WindowedSketch::build_plan`].
    #[inline]
    pub fn ingest_planned(&mut self, plan: &HashPlan, slot: usize, weight: f64) {
        let head = self.head_slot();
        self.segments[head].update_planned(plan, slot, weight);
        self.ingested += 1;
    }

    #[inline]
    fn head_slot(&self) -> usize {
        assert!(
            self.t >= 1,
            "WindowedSketch::begin_sample must run before ingest"
        );
        (((self.t - 1) / self.segment_len) % self.segments.len() as u64) as usize
    }

    /// Inclusive range of live block indices, oldest first. Empty before
    /// the first sample.
    fn live_blocks(&self) -> std::ops::RangeInclusive<u64> {
        if self.t == 0 {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        let b = (self.t - 1) / self.segment_len;
        b.saturating_sub(self.segments.len() as u64 - 1)..=b
    }

    /// Raw merged point query: per row, bucket sums are added across the
    /// live segments in chronological order, then signed and reduced by
    /// the median — the read of a single sketch holding only the
    /// in-window updates.
    pub fn raw_estimate(&self, key: u64) -> f64 {
        let family = self.segments[0].family();
        let s = self.segments.len() as u64;
        let blocks = self.live_blocks();
        let mut row_value = |row: usize| {
            let hasher = &family.row_hashers()[row];
            let bucket = hasher.bucket(key, self.range);
            let sign = hasher.sign_f64(key);
            let mut sum = 0.0;
            for b in blocks.clone() {
                sum += self.segments[(b % s) as usize].raw_bucket(row, bucket);
            }
            sum * sign
        };
        if self.rows <= MAX_ROWS {
            let mut buf = [0.0f64; MAX_ROWS];
            for (row, slot) in buf.iter_mut().enumerate().take(self.rows) {
                *slot = row_value(row);
            }
            median_in_place(&mut buf[..self.rows])
        } else {
            let mut buf: Vec<f64> = (0..self.rows).map(&mut row_value).collect();
            median_in_place(&mut buf)
        }
    }

    /// Windowed mean estimate: [`WindowedSketch::raw_estimate`] divided by
    /// the in-window sample count (`0.0` on an empty window).
    pub fn estimate(&self, key: u64) -> f64 {
        let n = self.window_len();
        if n == 0 {
            0.0
        } else {
            self.raw_estimate(key) / n as f64
        }
    }

    /// Materialises the merged in-window table: the live segments added in
    /// chronological order. Useful for blocked whole-universe sweeps and
    /// the serving snapshot merge.
    pub fn merged_sketch(&self) -> CountSketch {
        if self.t == 0 {
            return CountSketch::new(self.rows, self.range, self.seed);
        }
        let s = self.segments.len() as u64;
        let mut blocks = self.live_blocks();
        let first = blocks.next().expect("non-empty window");
        let mut merged = self.segments[(first % s) as usize].clone();
        for b in blocks {
            merged.merge(&self.segments[(b % s) as usize]);
        }
        merged
    }

    /// Merges another ring that ingested the *same stream times* over a
    /// disjoint key partition (the serving-shard merge): segment tables
    /// add pairwise. Window geometry, hash family and stream clock must
    /// all agree — windows are time-aligned, so a time-split merge is
    /// meaningless and rejected.
    ///
    /// # Errors
    /// [`CodecError::Incompatible`] on any mismatch.
    pub fn merge_restored(&mut self, other: &Self) -> Result<(), CodecError> {
        if self.segment_len != other.segment_len || self.segments.len() != other.segments.len() {
            return Err(CodecError::Incompatible(
                "window geometry mismatch in merge",
            ));
        }
        if self.t != other.t {
            return Err(CodecError::Incompatible(
                "windowed merge requires time-aligned rings (same stream clock)",
            ));
        }
        for (mine, theirs) in self.segments.iter_mut().zip(&other.segments) {
            mine.merge_restored(theirs)?;
        }
        self.ingested += other.ingested;
        Ok(())
    }

    /// Serializes the whole ring (versioned header, window geometry,
    /// clocks, then every segment as a nested count-sketch record).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_WINDOWED_SKETCH)?;
        codec::write_u64(w, self.segment_len)?;
        codec::write_u64(w, self.segments.len() as u64)?;
        codec::write_u64(w, self.t)?;
        codec::write_u64(w, self.ingested)?;
        codec::write_u64(w, self.retired)?;
        for segment in &self.segments {
            segment.save(w)?;
        }
        Ok(())
    }

    /// Restores a ring saved by [`WindowedSketch::save`]. All corruption
    /// — truncation, header damage, inconsistent segment geometry —
    /// surfaces as a typed [`CodecError`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_WINDOWED_SKETCH)?;
        let segment_len = codec::read_u64(r)?;
        if segment_len == 0 {
            return Err(CodecError::Corrupt("window segment length is zero"));
        }
        let count = codec::read_len(
            r,
            MAX_WINDOW_SEGMENTS as u64,
            "window segment count out of range",
        )?;
        if count == 0 {
            return Err(CodecError::Corrupt("window segment count is zero"));
        }
        let t = codec::read_u64(r)?;
        let ingested = codec::read_u64(r)?;
        let retired = codec::read_u64(r)?;
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            segments.push(CountSketch::restore(r)?);
        }
        let (rows, range, seed) = (segments[0].rows(), segments[0].range(), segments[0].seed());
        if segments
            .iter()
            .any(|s| s.rows() != rows || s.range() != range || s.seed() != seed)
        {
            return Err(CodecError::Corrupt(
                "window segments disagree on geometry or seed",
            ));
        }
        Ok(Self {
            segments,
            segment_len,
            rows,
            range,
            seed,
            t,
            ingested,
            retired,
        })
    }
}

/// The block-aligned window span at stream time `t` for a ring of
/// `segments` segments of `segment_len` samples: returns the first
/// in-window stream time (1-based) and the in-window sample count.
/// `(1, 0)` for `t == 0`.
pub fn window_span(t: u64, segment_len: u64, segments: usize) -> (u64, u64) {
    if t == 0 {
        return (1, 0);
    }
    let block = (t - 1) / segment_len;
    let start = block.saturating_sub(segments as u64 - 1) * segment_len + 1;
    (start, t - start + 1)
}

/// One generation of a [`DecayedSketch`]: a count-sketch table whose
/// stored weights are relative to the generation's base time.
#[derive(Debug, Clone)]
struct Generation {
    /// Stream time the generation was opened at; sample `s` of this
    /// generation stores `x_s · γ^(−(s − base))`.
    base: u64,
    /// Current ingest-side factor `γ^(−(t − base))`, advanced
    /// multiplicatively per sample (active generation only).
    scale: f64,
    sketch: CountSketch,
}

/// Exponentially decayed count sketch with **scale-on-read** semantics.
///
/// At stream time `t` the decayed accumulation of a key is
/// `Σ_s γ^(t−s) · x_s`. Storing that directly would force an in-place
/// rescale of the whole table on every sample; instead each generation
/// stores *forward* weights `x_s · γ^(−(s − base))` and reads scale the
/// whole generation by `γ^(t − base)` — a pure computation, so reads
/// never write and the table is bit-stable under any read/ingest
/// interleaving. The global decay accumulator (`scale`) rotates to a
/// fresh generation before it can overflow; a generation whose read
/// scale underflows to exactly `0.0` no longer contributes a single bit
/// and is pruned. At most ~4 generations are ever live, independent of
/// `γ` and stream length.
///
/// [`DecayedSketch::estimate`] reports the bias-corrected decayed mean:
/// the raw decayed sum divided by `W(t) = (1 − γ^t)/(1 − γ)`.
#[derive(Debug, Clone)]
pub struct DecayedSketch {
    gamma: f64,
    inv_gamma: f64,
    rows: usize,
    range: usize,
    seed: u64,
    generations: Vec<Generation>,
    t: u64,
    ingested: u64,
    rotations: u64,
    pruned: u64,
    table_write_ops: u64,
}

impl DecayedSketch {
    /// Creates a decayed sketch with per-sample decay `gamma`.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and strictly inside `(0, 1)`.
    pub fn new(rows: usize, range: usize, seed: u64, gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0 && gamma < 1.0,
            "decay factor must be in (0, 1), got {gamma}"
        );
        Self {
            gamma,
            inv_gamma: 1.0 / gamma,
            rows,
            range,
            seed,
            generations: Vec::new(),
            t: 0,
            ingested: 0,
            rotations: 0,
            pruned: 0,
            table_write_ops: 0,
        }
    }

    /// The per-sample decay factor `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Stream time: samples announced via [`DecayedSketch::begin_sample`].
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Pair updates ingested so far.
    pub fn ingested_updates(&self) -> u64 {
        self.ingested
    }

    /// Generations currently live.
    pub fn generation_count(&self) -> usize {
        self.generations.len()
    }

    /// Generation rotations performed (accumulator overflow guard firings).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Fully decayed generations pruned (read scale underflowed to `0.0`).
    pub fn pruned_generations(&self) -> u64 {
        self.pruned
    }

    /// Total bucket writes performed by the ingest path. Reads never touch
    /// this counter — the write-op probe the decay tests watch to prove no
    /// in-place rescale ever happens.
    pub fn table_write_ops(&self) -> u64 {
        self.table_write_ops
    }

    /// Rows `K` of every generation table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row `R` of every generation table.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Seed of the shared hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Table words across all live generations.
    pub fn memory_words(&self) -> usize {
        self.generations.len() * self.rows * self.range
    }

    /// Builds a [`HashPlan`] for the dense key set `0..len`; every
    /// generation shares the hash family, so one plan drives them all.
    pub fn build_plan(&self, len: usize) -> HashPlan {
        CountSketch::new(self.rows, self.range, self.seed).build_plan(len)
    }

    fn fresh(&self) -> CountSketch {
        CountSketch::new(self.rows, self.range, self.seed)
    }

    /// Read-side scale `γ^(t − base)` of a generation (exactly `0.0` once
    /// fully decayed).
    fn read_scale(&self, base: u64) -> f64 {
        let exp = self.t - base;
        if exp > i32::MAX as u64 {
            0.0
        } else {
            self.gamma.powi(exp as i32)
        }
    }

    /// Advances the decay accumulator to the next sample, rotating to a
    /// fresh generation before the ingest-side factor can overflow and
    /// pruning generations whose read scale has underflowed to exactly
    /// `0.0` (a bitwise no-op removal). Must be called once per sample,
    /// before the sample's updates are ingested.
    pub fn begin_sample(&mut self) {
        self.t += 1;
        match self.generations.last_mut() {
            Some(active) => {
                let next = active.scale * self.inv_gamma;
                if next > GROWTH_LIMIT {
                    self.rotations += 1;
                    let generation = Generation {
                        base: self.t - 1,
                        scale: self.inv_gamma,
                        sketch: self.fresh(),
                    };
                    self.generations.push(generation);
                } else {
                    active.scale = next;
                }
            }
            None => {
                let generation = Generation {
                    base: self.t - 1,
                    scale: self.inv_gamma,
                    sketch: self.fresh(),
                };
                self.generations.push(generation);
            }
        }
        while self.generations.len() > 1 && self.read_scale(self.generations[0].base) == 0.0 {
            self.generations.remove(0);
            self.pruned += 1;
        }
    }

    /// Ingests one raw pair update, stored pre-scaled by the active
    /// generation's inverse-decay factor.
    ///
    /// # Panics
    /// Panics if called before [`DecayedSketch::begin_sample`].
    #[inline]
    pub fn ingest(&mut self, key: u64, weight: f64) {
        let active = self
            .generations
            .last_mut()
            .expect("DecayedSketch::begin_sample must run before ingest");
        active.sketch.update(key, weight * active.scale);
        self.table_write_ops += self.rows as u64;
        self.ingested += 1;
    }

    /// Plan-driven form of [`DecayedSketch::ingest`] (no hashing); the
    /// plan must come from [`DecayedSketch::build_plan`].
    #[inline]
    pub fn ingest_planned(&mut self, plan: &HashPlan, slot: usize, weight: f64) {
        let active = self
            .generations
            .last_mut()
            .expect("DecayedSketch::begin_sample must run before ingest");
        active
            .sketch
            .update_planned(plan, slot, weight * active.scale);
        self.table_write_ops += self.rows as u64;
        self.ingested += 1;
    }

    /// Raw decayed point query `≈ Σ_s γ^(t−s) x_s`: per row, generation
    /// bucket values are combined as `Σ_g γ^(t−base_g) · bucket_g` (oldest
    /// first), then signed and reduced by the median. Pure — no state is
    /// touched.
    pub fn raw_estimate(&self, key: u64) -> f64 {
        if self.generations.is_empty() {
            return 0.0;
        }
        let family = self.generations[0].sketch.family();
        let mut row_value = |row: usize| {
            let hasher = &family.row_hashers()[row];
            let bucket = hasher.bucket(key, self.range);
            let sign = hasher.sign_f64(key);
            let mut sum = 0.0;
            for g in &self.generations {
                sum += self.read_scale(g.base) * g.sketch.raw_bucket(row, bucket);
            }
            sum * sign
        };
        if self.rows <= MAX_ROWS {
            let mut buf = [0.0f64; MAX_ROWS];
            for (row, slot) in buf.iter_mut().enumerate().take(self.rows) {
                *slot = row_value(row);
            }
            median_in_place(&mut buf[..self.rows])
        } else {
            let mut buf: Vec<f64> = (0..self.rows).map(&mut row_value).collect();
            median_in_place(&mut buf)
        }
    }

    /// Total decayed weight `W(t) = Σ_{s=1..t} γ^(t−s) = (1−γ^t)/(1−γ)`
    /// — the bias-correction normaliser of the decayed mean.
    pub fn weight_norm(&self) -> f64 {
        if self.t == 0 {
            return 0.0;
        }
        (1.0 - self.read_scale(0)) / (1.0 - self.gamma)
    }

    /// Effective sample size of the decayed weighting,
    /// `(Σ w_s)² / Σ w_s²` — the `t` the collision-noise budget of the
    /// conformance gates should use.
    pub fn effective_sample_size(&self) -> f64 {
        if self.t == 0 {
            return 0.0;
        }
        effective_sample_size(self.gamma, self.t)
    }

    /// Bias-corrected decayed mean: [`DecayedSketch::raw_estimate`]
    /// divided by [`DecayedSketch::weight_norm`] (`0.0` before any
    /// sample).
    pub fn estimate(&self, key: u64) -> f64 {
        if self.t == 0 {
            0.0
        } else {
            self.raw_estimate(key) / self.weight_norm()
        }
    }

    /// Materialises the decayed table at the current time: every live
    /// generation folded in (oldest first) via
    /// [`CountSketch::merge_scaled`] with its read scale. A pure read of
    /// the generation stack.
    pub fn merged_sketch(&self) -> CountSketch {
        let mut merged = self.fresh();
        for g in &self.generations {
            merged.merge_scaled(&g.sketch, self.read_scale(g.base));
        }
        merged
    }

    /// Merges another decayed sketch that ingested the *same stream
    /// times* over a disjoint key partition: generation tables add
    /// pairwise. Decay factor, hash family, stream clock and the whole
    /// generation layout must agree (they are deterministic in `t`, so
    /// lockstep shards always match).
    ///
    /// # Errors
    /// [`CodecError::Incompatible`] on any mismatch.
    pub fn merge_restored(&mut self, other: &Self) -> Result<(), CodecError> {
        if self.gamma.to_bits() != other.gamma.to_bits() {
            return Err(CodecError::Incompatible("decay factor mismatch in merge"));
        }
        if self.t != other.t {
            return Err(CodecError::Incompatible(
                "decayed merge requires time-aligned sketches (same stream clock)",
            ));
        }
        if self.generations.len() != other.generations.len()
            || self
                .generations
                .iter()
                .zip(&other.generations)
                .any(|(a, b)| a.base != b.base || a.scale.to_bits() != b.scale.to_bits())
        {
            return Err(CodecError::Incompatible(
                "decayed generation layout mismatch in merge",
            ));
        }
        for (mine, theirs) in self.generations.iter_mut().zip(&other.generations) {
            mine.sketch.merge_restored(&theirs.sketch)?;
        }
        self.ingested += other.ingested;
        self.table_write_ops += other.table_write_ops;
        Ok(())
    }

    /// Serializes the sketch (versioned header, decay factor, clocks and
    /// counters, then each generation's base, accumulator and nested
    /// count-sketch record).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_DECAYED_SKETCH)?;
        codec::write_f64(w, self.gamma)?;
        codec::write_u64(w, self.rows as u64)?;
        codec::write_u64(w, self.range as u64)?;
        codec::write_u64(w, self.seed)?;
        codec::write_u64(w, self.t)?;
        codec::write_u64(w, self.ingested)?;
        codec::write_u64(w, self.rotations)?;
        codec::write_u64(w, self.pruned)?;
        codec::write_u64(w, self.table_write_ops)?;
        codec::write_u64(w, self.generations.len() as u64)?;
        for g in &self.generations {
            codec::write_u64(w, g.base)?;
            codec::write_f64(w, g.scale)?;
            g.sketch.save(w)?;
        }
        Ok(())
    }

    /// Restores a sketch saved by [`DecayedSketch::save`]; every
    /// corruption mode is a typed [`CodecError`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_DECAYED_SKETCH)?;
        let gamma = codec::read_f64(r)?;
        if !(gamma.is_finite() && gamma > 0.0 && gamma < 1.0) {
            return Err(CodecError::Corrupt("decay factor outside (0, 1)"));
        }
        let rows = codec::read_len(r, 1 << 16, "decayed sketch row count out of range")?;
        let range = codec::read_len(r, 1 << 40, "decayed sketch range out of range")?;
        let seed = codec::read_u64(r)?;
        let t = codec::read_u64(r)?;
        let ingested = codec::read_u64(r)?;
        let rotations = codec::read_u64(r)?;
        let pruned = codec::read_u64(r)?;
        let table_write_ops = codec::read_u64(r)?;
        let count = codec::read_len(r, 1 << 16, "decayed generation count out of range")?;
        let mut generations = Vec::with_capacity(count);
        let mut last_base = None;
        for _ in 0..count {
            let base = codec::read_u64(r)?;
            let scale = codec::read_f64(r)?;
            if base > t {
                return Err(CodecError::Corrupt("decayed generation base beyond t"));
            }
            if last_base.is_some_and(|prev| base <= prev) {
                return Err(CodecError::Corrupt("decayed generation bases out of order"));
            }
            if !(scale.is_finite() && scale >= 1.0) {
                return Err(CodecError::Corrupt(
                    "decayed generation accumulator out of range",
                ));
            }
            last_base = Some(base);
            let sketch = CountSketch::restore(r)?;
            if sketch.rows() != rows || sketch.range() != range || sketch.seed() != seed {
                return Err(CodecError::Corrupt(
                    "decayed generation disagrees on geometry or seed",
                ));
            }
            generations.push(Generation {
                base,
                scale,
                sketch,
            });
        }
        if t > 0 && generations.is_empty() {
            return Err(CodecError::Corrupt(
                "decayed sketch with samples but no generations",
            ));
        }
        Ok(Self {
            gamma,
            inv_gamma: 1.0 / gamma,
            rows,
            range,
            seed,
            generations,
            t,
            ingested,
            rotations,
            pruned,
            table_write_ops,
        })
    }
}

/// Effective sample size of exponential weights `γ^(t−s)` over `s ∈
/// 1..=t`: `(Σ w)² / Σ w²` — between 1 (fresh stream) and
/// `(1+γ)/(1−γ)` (fully warmed up).
pub fn effective_sample_size(gamma: f64, t: u64) -> f64 {
    if t == 0 {
        return 0.0;
    }
    let pow = |g: f64| {
        if t > i32::MAX as u64 {
            0.0
        } else {
            g.powi(t as i32)
        }
    };
    let w = (1.0 - pow(gamma)) / (1.0 - gamma);
    let g2 = gamma * gamma;
    let w2 = (1.0 - pow(g2)) / (1.0 - g2);
    w * w / w2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_window_sums(
        updates: &[(u64, f64)],
        per_sample: usize,
        start: u64,
        t: u64,
        keys: u64,
    ) -> Vec<f64> {
        // updates laid out per sample: sample s (1-based) owns
        // updates[(s-1)*per_sample .. s*per_sample].
        let mut sums = vec![0.0f64; keys as usize];
        for s in start..=t {
            for &(key, w) in &updates[(s as usize - 1) * per_sample..s as usize * per_sample] {
                sums[key as usize] += w;
            }
        }
        sums
    }

    #[test]
    fn windowed_matches_in_window_rebuild_on_dyadic_updates() {
        let (rows, range, seed) = (3, 64, 9);
        let (l, s) = (4u64, 3usize);
        let per_sample = 2usize;
        let total = 37u64;
        // Dyadic weights: every grouping of the sums is exact.
        let updates: Vec<(u64, f64)> = (0..total * per_sample as u64)
            .map(|i| (i % 16, ((i * 7 + 3) % 5) as f64 * 0.5 - 1.0))
            .collect();
        let mut win = WindowedSketch::new(rows, range, seed, l, s);
        for t in 1..=total {
            win.begin_sample();
            for &(key, w) in &updates[(t as usize - 1) * per_sample..t as usize * per_sample] {
                win.ingest(key, w);
            }
            let (start, n) = win.window_span();
            assert_eq!((start, n), window_span(t, l, s));
            // From-scratch sketch over only the in-window samples.
            let mut rebuild = CountSketch::new(rows, range, seed);
            for s in start..=t {
                for &(key, w) in &updates[(s as usize - 1) * per_sample..s as usize * per_sample] {
                    rebuild.update(key, w);
                }
            }
            let merged = win.merged_sketch();
            assert!(
                merged
                    .table()
                    .iter()
                    .zip(rebuild.table())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "merged ring table diverged from rebuild at t = {t}"
            );
            let naive = naive_window_sums(&updates, per_sample, start, t, 16);
            for key in 0..16u64 {
                assert_eq!(
                    win.raw_estimate(key).to_bits(),
                    rebuild.estimate(key).to_bits(),
                    "estimate diverged at t = {t}, key = {key}"
                );
                // Tiny universe vs. 64 buckets: collision-free here, so
                // the sketch read equals the exact windowed sum.
                assert_eq!(win.raw_estimate(key), naive[key as usize]);
            }
        }
        assert_eq!(win.retired_segments(), (total - 1) / l + 1 - s as u64);
    }

    #[test]
    fn retired_segments_spill_and_restore_reconstruct_the_cumulative_sketch() {
        let (rows, range, seed) = (2, 32, 5);
        let mut win = WindowedSketch::new(rows, range, seed, 3, 2);
        let mut cumulative = CountSketch::new(rows, range, seed);
        let mut spill: Vec<Vec<u8>> = Vec::new();
        for t in 1..=20u64 {
            if let Some(retired) = win.begin_sample() {
                let mut bytes = Vec::new();
                retired.save(&mut bytes).unwrap();
                spill.push(bytes);
            }
            let w = ((t % 5) as f64) * 0.5 - 1.0;
            win.ingest(t % 8, w);
            cumulative.update(t % 8, w);
        }
        let mut reconstructed = win.merged_sketch();
        for bytes in &spill {
            let segment = RetiredSegment::restore(&mut bytes.as_slice()).unwrap();
            reconstructed.merge(segment.sketch());
        }
        assert!(
            reconstructed
                .table()
                .iter()
                .zip(cumulative.table())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "ring + spill history must reconstruct the cumulative table"
        );
    }

    #[test]
    fn decayed_tracks_the_exponentially_weighted_mean() {
        let mut d = DecayedSketch::new(3, 128, 7, 0.9);
        // A constant update on one key: the decayed mean of a constant is
        // the constant (bias-corrected), regardless of stream length.
        for _ in 0..5_000 {
            d.begin_sample();
            d.ingest(3, 0.75);
        }
        assert!((d.estimate(3) - 0.75).abs() < 1e-12, "{}", d.estimate(3));
        // Exact reference for a second, drifting key.
        let mut d2 = DecayedSketch::new(3, 128, 7, 0.9);
        let mut exact = 0.0f64;
        for t in 1..=400u64 {
            d2.begin_sample();
            let x = if t <= 200 { 1.0 } else { -1.0 };
            exact = exact * 0.9 + x;
            d2.ingest(5, x);
        }
        assert!(
            (d2.raw_estimate(5) - exact).abs() < 1e-9,
            "raw {} vs exact {exact}",
            d2.raw_estimate(5)
        );
        // Post-drift the decayed mean has flipped sign; a cumulative mean
        // would still be positive (200·1 − 200·γ-weighted…): the whole
        // point of the decayed backend.
        assert!(d2.estimate(5) < -0.9);
    }

    #[test]
    fn decayed_generations_stay_bounded_and_reads_never_write() {
        // Aggressive decay to force many rotations and prunes.
        let mut d = DecayedSketch::new(2, 32, 11, 0.5);
        for t in 1..=50_000u64 {
            d.begin_sample();
            d.ingest(t % 4, 1.0);
            assert!(d.generation_count() <= 4, "generations grew: {t}");
        }
        assert!(d.rotations() > 10, "rotation guard never fired");
        assert!(d.pruned_generations() > 10, "prune never fired");
        let writes = d.table_write_ops();
        let before: Vec<u64> = d
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for _ in 0..100 {
            for key in 0..4u64 {
                assert!(d.estimate(key).is_finite());
            }
        }
        assert_eq!(d.table_write_ops(), writes, "a read performed a write");
        let after: Vec<u64> = d
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(before, after, "reads mutated the tables");
    }

    #[test]
    fn window_span_covers_block_boundaries() {
        assert_eq!(window_span(0, 4, 3), (1, 0));
        assert_eq!(window_span(1, 4, 3), (1, 1));
        assert_eq!(window_span(12, 4, 3), (1, 12));
        assert_eq!(window_span(13, 4, 3), (5, 9));
        assert_eq!(window_span(16, 4, 3), (5, 12));
        assert_eq!(window_span(17, 4, 3), (9, 9));
        // One-segment ring: the window is just the current block.
        assert_eq!(window_span(9, 4, 1), (9, 1));
        assert_eq!(window_span(8, 4, 1), (5, 4));
    }

    #[test]
    fn effective_sample_size_is_sane() {
        assert_eq!(effective_sample_size(0.9, 0), 0.0);
        assert!((effective_sample_size(0.9, 1) - 1.0).abs() < 1e-12);
        let warm = effective_sample_size(0.9, 10_000);
        assert!((warm - (1.9 / 0.1)).abs() < 1e-9, "{warm}");
    }
}
