//! Configuration types shared across the ASCS core.

use serde::{Deserialize, Serialize};

/// Which matrix entries the estimator targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimandKind {
    /// Raw covariance entries `Cov(Y_a, Y_b)`.
    Covariance,
    /// Correlation entries `Cov(Y_a, Y_b) / (σ_a σ_b)` — the normalisation
    /// the paper uses for every real-data experiment.
    Correlation,
}

/// How per-pair updates are formed from a sample (Section 4 vs eq. (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateMode {
    /// `X_i^{(t)} = Y_a^{(t)} · Y_b^{(t)}` — the product approximation of
    /// eq. (2), valid when feature means are negligible relative to their
    /// standard deviations (Figure 2). This is what makes sparse samples
    /// cheap: zero features contribute no pair updates.
    Product,
    /// `X_i^{(t)} = (Y_a^{(t)} − Ȳ_a^{(t)})(Y_b^{(t)} − Ȳ_b^{(t)})` — the
    /// centred update of Section 4 using running means (the small
    /// "adjustment" term is ignored, as in the paper's implementation).
    Centered,
}

/// Count-sketch geometry: `K` rows of `R` buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchGeometry {
    /// Number of hash tables `K`.
    pub rows: usize,
    /// Buckets per hash table `R`.
    pub range: usize,
}

impl SketchGeometry {
    /// Geometry with `rows` tables of `range` buckets.
    pub fn new(rows: usize, range: usize) -> Self {
        assert!(
            rows > 0 && range > 0,
            "sketch geometry must be non-degenerate"
        );
        Self { rows, range }
    }

    /// Splits a memory budget of `budget_words` float slots across `rows`
    /// tables (`R = M / K`), the convention of Section 8.1.
    pub fn from_budget(rows: usize, budget_words: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        Self {
            rows,
            range: (budget_words / rows).max(1),
        }
    }

    /// Total float slots.
    pub fn words(&self) -> usize {
        self.rows * self.range
    }
}

/// Full configuration of an ASCS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AscsConfig {
    /// Number of features `d` of the incoming samples.
    pub dim: u64,
    /// Total number of samples `T` the stream will deliver. ASCS scales
    /// every inserted update by `1/T` so that the sketch estimates the mean
    /// `μ_i` directly (Algorithm 1 line 4 / Algorithm 2 lines 6 & 12).
    pub total_samples: u64,
    /// Sketch geometry (`K`, `R`).
    pub geometry: SketchGeometry,
    /// Assumed proportion of signal pairs `α` (Section 8.1).
    pub alpha: f64,
    /// Signal strength `u` — a lower bound on the mean of signal pairs, on
    /// the same scale as the estimand (correlation or covariance).
    pub signal_strength: f64,
    /// Noise scale `σ` — (an estimate of) the standard deviation of the
    /// per-sample pair updates `X_i`.
    pub sigma: f64,
    /// Target probability `δ` of missing a signal at the end of the
    /// exploration period (Theorem 1).
    pub delta: f64,
    /// Target total probability `δ*` of missing a signal over the whole
    /// sampling period (Theorem 2).
    pub delta_star: f64,
    /// Initial sampling threshold `τ(T0)`.
    pub tau0: f64,
    /// What is being estimated.
    pub estimand: EstimandKind,
    /// How updates are formed from samples.
    pub update_mode: UpdateMode,
    /// Seed for all hashing and any tie-breaking randomness.
    pub seed: u64,
    /// Capacity of the online top-k tracker used for reporting.
    pub top_k_capacity: usize,
}

impl AscsConfig {
    /// A reasonable starting configuration mirroring Section 8.1: `K = 5`,
    /// `δ = 0.05`, `δ* = δ + 0.15`, `τ(T0) = 10⁻⁴` (correlation scale),
    /// product updates, correlation estimand.
    pub fn recommended(dim: u64, total_samples: u64, geometry: SketchGeometry) -> Self {
        Self {
            dim,
            total_samples,
            geometry,
            alpha: 0.01,
            signal_strength: 0.5,
            sigma: 1.0,
            delta: 0.05,
            delta_star: 0.20,
            tau0: 1e-4,
            estimand: EstimandKind::Correlation,
            update_mode: UpdateMode::Product,
            seed: 0xA5C5,
            top_k_capacity: 1000,
        }
    }

    /// Number of unique pairs `p = d(d−1)/2`.
    pub fn num_pairs(&self) -> u64 {
        crate::pair::num_pairs(self.dim)
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim < 2 {
            return Err("dim must be at least 2".into());
        }
        if self.total_samples == 0 {
            return Err("total_samples must be positive".into());
        }
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err(format!("alpha must be in (0,1), got {}", self.alpha));
        }
        if self.signal_strength <= 0.0 {
            return Err("signal_strength must be positive".into());
        }
        if self.sigma <= 0.0 {
            return Err("sigma must be positive".into());
        }
        if !(0.0 < self.delta && self.delta < 1.0) {
            return Err("delta must be in (0,1)".into());
        }
        if !(self.delta < self.delta_star && self.delta_star < 1.0) {
            return Err("delta_star must satisfy delta < delta_star < 1".into());
        }
        if self.tau0 < 0.0 {
            return Err("tau0 must be non-negative".into());
        }
        if self.tau0 >= self.signal_strength {
            return Err(format!(
                "tau0 ({}) must be below the signal strength ({})",
                self.tau0, self.signal_strength
            ));
        }
        if self.top_k_capacity == 0 {
            return Err("top_k_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> AscsConfig {
        AscsConfig::recommended(1000, 5000, SketchGeometry::new(5, 20_000))
    }

    #[test]
    fn recommended_config_is_valid() {
        assert_eq!(valid().validate(), Ok(()));
    }

    #[test]
    fn geometry_budget_split_matches_paper_convention() {
        let g = SketchGeometry::from_budget(5, 100_000);
        assert_eq!(g.rows, 5);
        assert_eq!(g.range, 20_000);
        assert_eq!(g.words(), 100_000);
    }

    #[test]
    fn geometry_budget_never_degenerates_to_zero_range() {
        let g = SketchGeometry::from_budget(10, 3);
        assert_eq!(g.range, 1);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn zero_geometry_panics() {
        SketchGeometry::new(0, 10);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = valid();
        c.alpha = 0.0;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.delta_star = c.delta;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.tau0 = c.signal_strength;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.dim = 1;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.sigma = -1.0;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.total_samples = 0;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.top_k_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn num_pairs_consistent_with_pair_module() {
        let c = valid();
        assert_eq!(c.num_pairs(), 1000 * 999 / 2);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let c = valid();
        let json = serde_json::to_string(&c).unwrap();
        let back: AscsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
