//! Active Sampling Count Sketch (ASCS) — the primary contribution of
//! Dai, Desai, Heckel & Shrivastava, SIGMOD 2021.
//!
//! ASCS estimates the large entries of a sparse covariance (or correlation)
//! matrix from a single pass over i.i.d. samples, using memory sublinear in
//! the number of matrix entries. It wraps a [count sketch][ascs_count_sketch]
//! with an *active sampling* rule: after an exploration period every update
//! is inserted; afterwards an update for pair `i` is inserted only when the
//! pair's current sketch estimate exceeds a rising threshold `τ(t)`. This
//! keeps most noise pairs out of the sketch and therefore raises the
//! signal-to-noise ratio of what the sketch ingests (Theorem 3 of the
//! paper).
//!
//! The crate is organised as follows:
//!
//! * [`pair`] — mapping between feature pairs `(a, b)` and the linear item
//!   universe `{0, …, p-1}` used by the sketches;
//! * [`stream`] — turning incoming samples `Y(t) ∈ R^d` into per-pair
//!   covariance/correlation updates (eq. (2) of the paper, with both the
//!   product approximation and the exact centred form);
//! * [`schedule`] — threshold schedules `τ(t)` (linear as in the paper,
//!   plus constant and step ablations);
//! * [`theory`] — closed-form probability bounds of Theorems 1–3;
//! * [`hyper`] — Algorithm 3: choosing the exploration length `T0` and the
//!   threshold slope `θ` from the bounds;
//! * [`ascs`] — the sketch itself (Algorithm 2), with a fused hash-once
//!   ingestion hot path and a plan-driven (hash-free) path replaying a
//!   precomputed `HashPlan` arena;
//! * [`sharded`] — key-partitioned parallel ingestion across `std::thread`
//!   workers, merged via the count sketch's linearity, with precomputed
//!   slot → shard routing for planned batches;
//! * [`estimator`] — a high-level one-pass covariance estimator that can be
//!   backed by ASCS, vanilla CS, ASketch or Cold Filter (used by every
//!   experiment), with `with_ingestion_plan()` for amortised hashing and
//!   cache-blocked whole-universe query sweeps;
//! * [`snr`] — instrumentation measuring the empirical SNR of the ingested
//!   stream (Figure 5);
//! * [`serve`] — the fault-tolerant serving core: supervised shard workers
//!   on dedicated threads with bounded-queue backpressure, epoch-stamped
//!   merged snapshots for torn-read-free queries, non-finite input
//!   quarantine, and checkpoint-backed crash recovery under a supervisor
//!   that restarts panicked workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascs;
pub mod config;
pub mod durability;
pub mod estimator;
pub mod hyper;
pub mod pair;
pub mod schedule;
pub mod serve;
pub mod sharded;
pub mod snr;
pub mod stream;
mod supervisor;
pub mod theory;
pub mod timeaware;

pub use ascs::{AscsPhase, AscsSketch, OfferOutcome, SampleGate};
pub use ascs_count_sketch::codec;
pub use ascs_count_sketch::CodecError;
pub use config::{AscsConfig, EstimandKind, SketchGeometry, UpdateMode};
pub use durability::{
    recover_with_reentry, DurabilityError, DurabilityHealth, DurabilityOptions, FsyncPolicy,
    RecoveredState, RecoveryManager, RecoveryOutcome, RecoveryReport,
};
pub use estimator::{CovarianceEstimator, PlanError, ReportedPair, SketchBackend};
pub use hyper::{HyperParameterSolver, HyperParameters, SigmaEstimator, SignalModel};
pub use pair::{num_pairs, pair_from_index, pair_to_index, PairIndexer};
pub use schedule::ThresholdSchedule;
pub use serve::{
    jittered_backoff, FaultInjector, IngestError, NoFaults, ServeError, ServeOptions, ServeStats,
    ServingEstimator, ServingHealth, Snapshot, SnapshotReader, SnapshotView, TimeAwareSnapshotView,
    WindowedSnapshotRing,
};
pub use sharded::{ShardUpdate, ShardedAscs, MAX_SHARDS};
pub use snr::SnrProbe;
pub use stream::{PairUpdate, Sample, StreamContext};
pub use theory::TheoryBounds;
pub use timeaware::{
    effective_sample_size, window_span, DecayedSketch, RetiredSegment, WindowedSketch,
    MAX_WINDOW_SEGMENTS,
};
