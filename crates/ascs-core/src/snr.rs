//! Empirical signal-to-noise instrumentation (Section 7.1, Figure 5).
//!
//! The paper defines the SNR of the `t`-th ingested sample as the ratio of
//! the expected squared norm of the *signal* updates actually inserted into
//! the sketch to that of the *noise* updates inserted. Vanilla CS inserts
//! everything, so its ratio is constant; ASCS's ratio grows as the rising
//! threshold filters out noise pairs. [`SnrProbe`] measures both quantities
//! for a run where the ground-truth signal set is known (simulation and the
//! small rigorous-evaluation datasets).

use std::collections::HashSet;

/// Per-sample ingested energy split into signal and noise parts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleEnergy {
    /// Sum of squared inserted updates belonging to signal pairs.
    pub signal: f64,
    /// Sum of squared inserted updates belonging to noise pairs.
    pub noise: f64,
    /// Number of inserted signal updates.
    pub signal_count: u64,
    /// Number of inserted noise updates.
    pub noise_count: u64,
}

/// Ground-truth-aware SNR probe.
#[derive(Debug, Clone)]
pub struct SnrProbe {
    signal_keys: HashSet<u64>,
    per_sample: Vec<SampleEnergy>,
    current: SampleEnergy,
    open: bool,
}

impl SnrProbe {
    /// Creates a probe knowing which pair keys are true signals.
    pub fn new(signal_keys: impl IntoIterator<Item = u64>) -> Self {
        Self {
            signal_keys: signal_keys.into_iter().collect(),
            per_sample: Vec::new(),
            current: SampleEnergy::default(),
            open: false,
        }
    }

    /// Number of ground-truth signal keys.
    pub fn signal_key_count(&self) -> usize {
        self.signal_keys.len()
    }

    /// Whether `key` is a ground-truth signal.
    pub fn is_signal(&self, key: u64) -> bool {
        self.signal_keys.contains(&key)
    }

    /// Starts accounting for a new sample.
    pub fn begin_sample(&mut self) {
        if self.open {
            // A dangling open sample is closed implicitly so the probe can
            // never lose energy silently.
            self.end_sample();
        }
        self.current = SampleEnergy::default();
        self.open = true;
    }

    /// Records one update that was *inserted* into the sketch.
    pub fn record_inserted(&mut self, key: u64, value: f64) {
        debug_assert!(self.open, "record_inserted outside begin/end sample");
        let energy = value * value;
        if self.signal_keys.contains(&key) {
            self.current.signal += energy;
            self.current.signal_count += 1;
        } else {
            self.current.noise += energy;
            self.current.noise_count += 1;
        }
    }

    /// Closes the current sample's accounting.
    pub fn end_sample(&mut self) {
        if self.open {
            self.per_sample.push(self.current);
            self.current = SampleEnergy::default();
            self.open = false;
        }
    }

    /// Number of completed samples.
    pub fn samples(&self) -> usize {
        self.per_sample.len()
    }

    /// Energy record of sample `t` (0-based).
    pub fn sample_energy(&self, t: usize) -> Option<SampleEnergy> {
        self.per_sample.get(t).copied()
    }

    /// Signal-to-noise ratio of the updates ingested for sample `t`
    /// (0-based). `None` when no noise energy was ingested (infinite SNR)
    /// or the sample does not exist.
    pub fn snr_at(&self, t: usize) -> Option<f64> {
        let e = self.per_sample.get(t)?;
        if e.noise > 0.0 {
            Some(e.signal / e.noise)
        } else {
            None
        }
    }

    /// Average SNR over a window of samples `[start, end)`, computed as the
    /// ratio of summed energies (the estimator of Section 7.1's expectation
    /// ratio). Returns `None` when the window contains no noise energy.
    pub fn windowed_snr(&self, start: usize, end: usize) -> Option<f64> {
        let end = end.min(self.per_sample.len());
        if start >= end {
            return None;
        }
        let mut signal = 0.0;
        let mut noise = 0.0;
        for e in &self.per_sample[start..end] {
            signal += e.signal;
            noise += e.noise;
        }
        if noise > 0.0 {
            Some(signal / noise)
        } else {
            None
        }
    }

    /// The SNR trajectory sampled every `stride` samples with a window of
    /// the same width — the series Figure 5 plots.
    pub fn trajectory(&self, stride: usize) -> Vec<(usize, f64)> {
        if stride == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.per_sample.len() {
            let end = (start + stride).min(self.per_sample.len());
            if let Some(snr) = self.windowed_snr(start, end) {
                out.push((end, snr));
            }
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_energy_by_ground_truth() {
        let mut probe = SnrProbe::new([1, 2]);
        probe.begin_sample();
        probe.record_inserted(1, 2.0); // signal, energy 4
        probe.record_inserted(5, 1.0); // noise, energy 1
        probe.record_inserted(2, 1.0); // signal, energy 1
        probe.end_sample();
        let e = probe.sample_energy(0).unwrap();
        assert_eq!(e.signal, 5.0);
        assert_eq!(e.noise, 1.0);
        assert_eq!(e.signal_count, 2);
        assert_eq!(e.noise_count, 1);
        assert_eq!(probe.snr_at(0), Some(5.0));
    }

    #[test]
    fn missing_noise_energy_reports_none() {
        let mut probe = SnrProbe::new([1]);
        probe.begin_sample();
        probe.record_inserted(1, 1.0);
        probe.end_sample();
        assert_eq!(probe.snr_at(0), None);
        assert_eq!(probe.windowed_snr(0, 1), None);
    }

    #[test]
    fn windowed_snr_pools_energy() {
        let mut probe = SnrProbe::new([1]);
        for t in 0..4 {
            probe.begin_sample();
            probe.record_inserted(1, 1.0);
            // Noise shrinks over time, so the pooled SNR grows window over
            // window.
            probe.record_inserted(9, 1.0 / (t + 1) as f64);
            probe.end_sample();
        }
        let first = probe.windowed_snr(0, 2).unwrap();
        let second = probe.windowed_snr(2, 4).unwrap();
        assert!(second > first);
    }

    #[test]
    fn trajectory_covers_all_samples() {
        let mut probe = SnrProbe::new([1]);
        for _ in 0..10 {
            probe.begin_sample();
            probe.record_inserted(1, 1.0);
            probe.record_inserted(2, 0.5);
            probe.end_sample();
        }
        let traj = probe.trajectory(4);
        assert_eq!(traj.len(), 3); // windows of 4, 4, 2
        assert_eq!(traj[0].0, 4);
        assert_eq!(traj[2].0, 10);
        for (_, snr) in traj {
            assert!((snr - 4.0).abs() < 1e-12);
        }
        assert!(probe.trajectory(0).is_empty());
    }

    #[test]
    fn dangling_sample_is_closed_by_next_begin() {
        let mut probe = SnrProbe::new([1]);
        probe.begin_sample();
        probe.record_inserted(1, 1.0);
        // Forgot end_sample(); the next begin must flush it.
        probe.begin_sample();
        probe.record_inserted(2, 1.0);
        probe.end_sample();
        assert_eq!(probe.samples(), 2);
        assert_eq!(probe.sample_energy(0).unwrap().signal, 1.0);
        assert_eq!(probe.sample_energy(1).unwrap().noise, 1.0);
    }

    #[test]
    fn is_signal_lookup() {
        let probe = SnrProbe::new([10, 20]);
        assert!(probe.is_signal(10));
        assert!(!probe.is_signal(11));
        assert_eq!(probe.signal_key_count(), 2);
    }
}
