//! The supervision tree behind [`crate::serve::ServingEstimator`]: bounded
//! shard queues, the worker loop (apply → checkpoint → collect), and the
//! supervisor thread that restarts panicked workers from their last good
//! checkpoint and replays the in-flight batch log.
//!
//! Everything here is crate-private; the public surface lives in
//! [`crate::serve`].

use crate::ascs::AscsSketch;
use crate::serve::{FaultInjector, ServeShared};
use crate::sharded::ShardUpdate;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, clearing poison: a worker panicking while holding a lock
/// must not take the whole service down — the supervisor restores the
/// protected state from the checkpoint anyway.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What flows through a shard queue, in strict FIFO order.
pub(crate) enum Envelope {
    /// One sample's updates for this shard, to be applied in order.
    Batch(Vec<ShardUpdate>),
    /// Snapshot barrier: reply with `(shard, sketch clone)` once every
    /// batch enqueued before this envelope has been applied.
    Collect {
        /// Where the worker sends its reply.
        reply: mpsc::Sender<(usize, AscsSketch)>,
    },
    /// Stop the worker loop.
    Shutdown,
}

struct QueueInner {
    deque: VecDeque<Envelope>,
    /// Pending `Batch` envelopes only — `Collect`/`Shutdown` are control
    /// traffic and never count against the capacity.
    batches: usize,
}

/// A bounded FIFO between the single producer and one shard worker.
/// Capacity is advisory for the producer ([`ShardQueue::has_batch_room`]
/// before [`ShardQueue::push`]); the queue itself never blocks a push, so
/// control envelopes always get through.
pub(crate) struct ShardQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                deque: VecDeque::new(),
                batches: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Whether another batch fits. Only the single producer may rely on
    /// this (consumers only shrink the queue, so the answer cannot go
    /// stale in the overloaded direction).
    pub(crate) fn has_batch_room(&self) -> bool {
        lock(&self.inner).batches < self.capacity
    }

    pub(crate) fn push(&self, envelope: Envelope) {
        let mut inner = lock(&self.inner);
        if matches!(envelope, Envelope::Batch(_)) {
            inner.batches += 1;
        }
        inner.deque.push_back(envelope);
        drop(inner);
        self.ready.notify_one();
    }

    /// Blocks until an envelope is available.
    pub(crate) fn pop(&self) -> Envelope {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(envelope) = inner.deque.pop_front() {
                if matches!(envelope, Envelope::Batch(_)) {
                    inner.batches -= 1;
                }
                return envelope;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Everything a restarted worker needs to reconstruct its sketch exactly:
/// the last *validated* checkpoint plus every batch applied (or mid-apply)
/// since. The producer never touches this; the worker updates it under
/// lock so a panic at any point leaves a consistent recovery recipe.
pub(crate) struct RecoveryState {
    /// Serialized [`AscsSketch`] that passed restore-validation.
    pub(crate) checkpoint: Vec<u8>,
    /// Updates the checkpoint reflects.
    pub(crate) checkpoint_updates: u64,
    /// Batches enqueued-for-apply since the checkpoint, in order. A batch
    /// is pushed here *before* the worker starts applying it, so a panic
    /// mid-batch still replays it in full.
    pub(crate) replay: Vec<Vec<ShardUpdate>>,
    /// Updates fully applied since stream start (checkpoint + completed
    /// replay batches) — the shard-local index base for fault injection.
    pub(crate) applied_updates: u64,
}

/// Per-shard state shared between producer, worker and supervisor.
pub(crate) struct WorkerShared {
    pub(crate) queue: ShardQueue,
    pub(crate) recovery: Mutex<RecoveryState>,
    /// Set by the supervisor once the restart budget is exhausted.
    pub(crate) failed: AtomicBool,
    /// Restarts performed for this shard (the budget spent so far),
    /// surfaced per shard in `ServingHealth`.
    pub(crate) restarts: AtomicU64,
}

/// The immutable spawn recipe for one worker thread (cloned to respawn).
#[derive(Clone)]
pub(crate) struct WorkerContext {
    pub(crate) shard: usize,
    pub(crate) shared: Arc<WorkerShared>,
    pub(crate) stats: Arc<ServeShared>,
    pub(crate) injector: Arc<dyn FaultInjector>,
    pub(crate) checkpoint_interval: usize,
}

pub(crate) enum WorkerEvent {
    /// Clean exit (Shutdown envelope).
    Exited,
    /// The worker body panicked; the supervisor decides restart vs fail.
    Panicked(usize),
}

/// Applies one batch in order, with optional fault injection (first
/// delivery only; `base` is the shard-local index of the batch's first
/// update). The gate is memoized per distinct `t`, exactly like the
/// [`crate::sharded::ShardedAscs`] parallel worker loop, so gated results
/// are bit-identical to sequential ingestion.
pub(crate) fn apply_batch(
    sketch: &mut AscsSketch,
    batch: &[ShardUpdate],
    inject: Option<(&dyn FaultInjector, usize, u64)>,
) {
    let mut memo: Option<(u64, crate::ascs::SampleGate)> = None;
    for (i, u) in batch.iter().enumerate() {
        if let Some((injector, shard, base)) = inject {
            if injector.inject_panic(shard, base + i as u64) {
                panic!("injected fault: shard {shard} update {}", base + i as u64);
            }
        }
        let gate = match memo {
            Some((t, gate)) if t == u.t => gate,
            _ => {
                let gate = sketch.sample_gate(u.t);
                memo = Some((u.t, gate));
                gate
            }
        };
        sketch.offer_gated(u.key, u.value, gate);
    }
}

/// Decrements the shared `recovering` gauge exactly once — on the normal
/// path *and* when an injected panic unwinds out of a recovery replay
/// (the supervisor re-increments before each respawn). Without this, a
/// crash-during-recovery would inflate the gauge permanently and pin the
/// service degraded.
struct RecoveringGuard<'a> {
    stats: &'a ServeShared,
}

impl Drop for RecoveringGuard<'_> {
    fn drop(&mut self) {
        self.stats.recovering.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The worker body. On entry (cold start *and* restart) the sketch is
/// rebuilt from the recovery state: restore the last good checkpoint, then
/// replay every logged batch — without fault injection by default, so an
/// injected panic cannot loop forever. An injector opting in via
/// [`FaultInjector::inject_during_recovery`] has its panics offered during
/// the replay too (shard-local indices continue from the checkpoint base);
/// the supervisor's restart budget bounds the resulting crash loop. The
/// loop then serves the queue until `Shutdown`.
fn run_worker(ctx: &WorkerContext, recovering: bool) {
    let recovering_guard = recovering.then(|| RecoveringGuard { stats: &ctx.stats });
    if recovering {
        ctx.injector.before_recovery(ctx.shard);
    }
    let inject_replay = recovering && ctx.injector.inject_during_recovery();
    let mut sketch = {
        let mut rec = lock(&ctx.shared.recovery);
        let mut restored = AscsSketch::restore(&mut rec.checkpoint.as_slice())
            .expect("recovery checkpoint was validated when written");
        let mut base = rec.checkpoint_updates;
        for batch in &rec.replay {
            let inject =
                inject_replay.then_some((&*ctx.injector as &dyn FaultInjector, ctx.shard, base));
            apply_batch(&mut restored, batch, inject);
            base += batch.len() as u64;
        }
        rec.applied_updates = base;
        restored
    };
    drop(recovering_guard);
    loop {
        match ctx.shared.queue.pop() {
            Envelope::Batch(batch) => {
                ctx.injector.before_batch(ctx.shard);
                let len = batch.len() as u64;
                let mut rec = lock(&ctx.shared.recovery);
                let base = rec.applied_updates;
                // Log before applying: a panic mid-batch must replay the
                // whole batch, and `applied_updates` still points at its
                // first update.
                rec.replay.push(batch);
                let logged = rec.replay.last().expect("just pushed");
                apply_batch(&mut sketch, logged, Some((&*ctx.injector, ctx.shard, base)));
                rec.applied_updates = base + len;
                if rec.replay.len() >= ctx.checkpoint_interval {
                    let mut bytes = Vec::with_capacity(rec.checkpoint.len());
                    sketch
                        .save(&mut bytes)
                        .expect("in-memory checkpoint write cannot fail");
                    ctx.injector.corrupt_checkpoint(ctx.shard, &mut bytes);
                    // Validate before committing: a torn record must never
                    // become "the last good checkpoint". On rejection the
                    // old checkpoint stays and the replay log keeps
                    // growing — correctness is unaffected, recovery just
                    // replays more.
                    if AscsSketch::restore(&mut bytes.as_slice()).is_ok() {
                        rec.checkpoint = bytes;
                        rec.checkpoint_updates = rec.applied_updates;
                        rec.replay.clear();
                    } else {
                        ctx.stats.torn_checkpoints.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Envelope::Collect { reply } => {
                let _ = reply.send((ctx.shard, sketch.clone()));
            }
            Envelope::Shutdown => return,
        }
    }
}

/// Spawns one worker thread whose body runs under `catch_unwind`; the exit
/// disposition is reported to the supervisor. Handles are detached — the
/// supervisor owns lifecycle through the event channel.
pub(crate) fn spawn_worker(
    ctx: WorkerContext,
    events: mpsc::Sender<WorkerEvent>,
    recovering: bool,
) {
    std::thread::spawn(move || {
        let shard = ctx.shard;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_worker(&ctx, recovering)));
        let event = match outcome {
            Ok(()) => WorkerEvent::Exited,
            Err(_) => WorkerEvent::Panicked(shard),
        };
        let _ = events.send(event);
    });
}

/// Spawns the supervisor thread: it watches worker exits, restarts
/// panicked workers (recovery path) until the per-shard budget is spent,
/// then marks the shard failed. Returns once every worker is gone.
pub(crate) fn spawn_supervisor(
    contexts: Vec<WorkerContext>,
    events_tx: mpsc::Sender<WorkerEvent>,
    events_rx: mpsc::Receiver<WorkerEvent>,
    max_restarts: u64,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut live = contexts.len();
        while live > 0 {
            match events_rx.recv() {
                Ok(WorkerEvent::Exited) => live -= 1,
                Ok(WorkerEvent::Panicked(shard)) => {
                    let ctx = &contexts[shard];
                    ctx.stats.panics.fetch_add(1, Ordering::SeqCst);
                    if ctx.shared.restarts.load(Ordering::SeqCst) >= max_restarts {
                        ctx.shared.failed.store(true, Ordering::SeqCst);
                        ctx.stats.failed_shards.fetch_add(1, Ordering::SeqCst);
                        live -= 1;
                    } else {
                        ctx.shared.restarts.fetch_add(1, Ordering::SeqCst);
                        ctx.stats.restarts.fetch_add(1, Ordering::SeqCst);
                        ctx.stats.recovering.fetch_add(1, Ordering::SeqCst);
                        spawn_worker(ctx.clone(), events_tx.clone(), true);
                    }
                }
                Err(_) => break,
            }
        }
    })
}
