//! The Active Sampling Count Sketch itself (Algorithm 2).
//!
//! [`AscsSketch`] wraps a [`CountSketch`] with the two-phase ingestion rule:
//!
//! * **Exploration** (`t ≤ T0`): every offered update is inserted, exactly
//!   as vanilla CS would.
//! * **Sampling** (`t > T0`): the pair's current estimate is read first and
//!   the update is inserted only when that estimate — or the would-be
//!   estimate including the offered update, the cold-start refinement for
//!   sparse streams documented at [`AscsSketch::offer`] — clears the
//!   threshold `τ(t − 1)` of the configured [`ThresholdSchedule`].
//!
//! Updates are scaled by `1/T` on insertion (Algorithm 2 lines 6 and 12) so
//! that the retrieval (line 15) directly estimates the mean `μ_i`.
//!
//! The sketch also keeps a bounded [`TopKTracker`] of the largest estimates
//! seen, so the top pairs can be reported after one pass even when the item
//! universe is far too large to enumerate; [`AscsSketch::without_tracking`]
//! disables it for ingestion benchmarks that never read the top pairs.
//!
//! The ingestion hot path is **fused**: one hashing round per offered
//! update, shared by the gate read, the insertion and the post-insert
//! estimate (see [`AscsSketch::offer`]).

use crate::config::SketchGeometry;
use crate::hyper::HyperParameters;
use crate::schedule::ThresholdSchedule;
use crate::sharded::ShardUpdate;
use ascs_count_sketch::codec::{self, CodecError};
use ascs_count_sketch::{median_in_place, CountSketch, HashPlan, TopKTracker, MAX_ROWS};
use serde::{Deserialize, Serialize};

/// How many plan entries ahead of the one being processed
/// [`AscsSketch::ingest_planned`] touches the sketch table, so the randomly
/// scattered bucket loads of upcoming updates are in flight while the
/// current update's gate read and median run.
const PLAN_PREFETCH_DISTANCE: usize = 4;

/// Which phase of Algorithm 2 the sketch is in at a given stream time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AscsPhase {
    /// `t ≤ T0`: every update is ingested.
    Exploration,
    /// `t > T0`: only updates whose current estimate clears `τ(t−1)` are
    /// ingested.
    Sampling,
}

/// Outcome of offering one update to the sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfferOutcome {
    /// Whether the update was inserted into the sketch.
    pub inserted: bool,
    /// The phase the sketch was in when the update arrived.
    pub phase: AscsPhase,
}

/// The per-sample invariants of the sampling gate: the phase at stream time
/// `t` and the threshold `τ(t − 1)` in force. Both depend only on `t`, so a
/// caller expanding one sample into `O(d²)` pair updates computes the gate
/// **once** via [`AscsSketch::sample_gate`] and reuses it for every update
/// of that sample instead of re-deriving phase and threshold per pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleGate {
    /// Phase at the gate's stream time.
    pub phase: AscsPhase,
    /// Threshold `τ(t − 1)` (meaningful during sampling; `τ0` otherwise).
    pub tau: f64,
}

/// Active Sampling Count Sketch (Algorithm 2 of the paper).
#[derive(Debug, Clone)]
pub struct AscsSketch {
    sketch: CountSketch,
    schedule: ThresholdSchedule,
    t0: u64,
    total: u64,
    tracker: TopKTracker,
    /// Gate on `|estimate|` rather than the signed estimate. The paper's
    /// problem statement assumes positive signals (Algorithm 2 line 11 uses
    /// the signed estimate) but its theorems gate on the absolute value;
    /// using the absolute value also recovers strongly *negative*
    /// covariances, so it is the default.
    absolute_gate: bool,
    /// Precomputed `1 / T` so the per-update scaling is a multiply, not a
    /// division, on the hot path.
    inv_total: f64,
    /// Whether the top-k tracker is fed at all (benchmarks that only
    /// measure raw ingestion disable it — for a vanilla-CS run it is pure
    /// overhead when the top pairs are never read). Tracking covers *every*
    /// insert, exploration included: on sparse streams a pair's
    /// co-observations can be concentrated in the exploration window, and
    /// skipping it there would silently drop such pairs from the report.
    tracking_enabled: bool,
    inserted: u64,
    skipped: u64,
    /// Updates rejected at the offer boundary for carrying a non-finite
    /// value. Diagnostic state only: it is *not* serialized (the codec
    /// layout is versioned and quarantined updates never touched the
    /// table), so a restored sketch restarts the count at zero.
    quarantined: u64,
}

impl AscsSketch {
    /// Creates an ASCS with the given sketch geometry, hyperparameters and
    /// total stream length.
    pub fn new(
        geometry: SketchGeometry,
        hyper: &HyperParameters,
        total_samples: u64,
        top_k_capacity: usize,
        seed: u64,
    ) -> Self {
        assert!(total_samples > 0, "total_samples must be positive");
        assert!(
            hyper.t0 <= total_samples,
            "exploration period exceeds the stream length"
        );
        Self {
            sketch: CountSketch::new(geometry.rows, geometry.range, seed),
            schedule: hyper.schedule(total_samples),
            t0: hyper.t0,
            total: total_samples,
            tracker: TopKTracker::new(top_k_capacity),
            absolute_gate: true,
            inv_total: 1.0 / total_samples as f64,
            tracking_enabled: true,
            inserted: 0,
            skipped: 0,
            quarantined: 0,
        }
    }

    /// Builds a *vanilla count sketch* in ASCS clothing: the exploration
    /// period covers the whole stream, so every update is always ingested
    /// (Algorithm 1). Used as the CS baseline everywhere.
    pub fn vanilla(
        geometry: SketchGeometry,
        total_samples: u64,
        top_k_capacity: usize,
        seed: u64,
    ) -> Self {
        let hyper = HyperParameters {
            t0: total_samples,
            theta: 0.0,
            tau0: 0.0,
            delta: 0.5,
            delta_star: 0.999,
        };
        Self::new(geometry, &hyper, total_samples, top_k_capacity, seed)
    }

    /// Switches the sampling gate to the signed estimate (`μ̂ ≥ τ`), the
    /// literal reading of Algorithm 2 line 11.
    pub fn with_signed_gate(mut self) -> Self {
        self.absolute_gate = false;
        self
    }

    /// Disables the top-k tracker entirely. [`AscsSketch::top_pairs`] will
    /// return nothing; use this for ingestion benchmarks (and vanilla-CS
    /// runs that never read the top pairs), where feeding the tracker is
    /// pure overhead.
    pub fn without_tracking(mut self) -> Self {
        self.tracking_enabled = false;
        self
    }

    /// Whether the gate compares `|μ̂|` (the default) or the signed `μ̂`.
    pub fn absolute_gate(&self) -> bool {
        self.absolute_gate
    }

    /// Capacity of the top-k tracker.
    pub fn top_k_capacity(&self) -> usize {
        self.tracker.capacity()
    }

    /// Exploration length `T0`.
    pub fn exploration_length(&self) -> u64 {
        self.t0
    }

    /// Total stream length `T`.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// The threshold schedule in force.
    pub fn schedule(&self) -> &ThresholdSchedule {
        &self.schedule
    }

    /// The phase at stream time `t` (1-based).
    pub fn phase(&self, t: u64) -> AscsPhase {
        if t <= self.t0 {
            AscsPhase::Exploration
        } else {
            AscsPhase::Sampling
        }
    }

    /// Number of updates inserted into the sketch so far.
    pub fn inserted_updates(&self) -> u64 {
        self.inserted
    }

    /// Number of updates skipped by the sampling gate so far.
    pub fn skipped_updates(&self) -> u64 {
        self.skipped
    }

    /// Number of updates quarantined for carrying a non-finite value. A
    /// quarantined update changes nothing besides this counter — a single
    /// NaN would otherwise poison every bucket its key hashes into, and a
    /// poisoned bucket corrupts the median of *every* key sharing it.
    pub fn quarantined_updates(&self) -> u64 {
        self.quarantined
    }

    /// [`AscsSketch::offer`] with the non-finite quarantine surfaced as a
    /// typed error instead of a silent skip: `Err(IngestError::NonFinite)`
    /// carries the offending key and value, and the sketch state is
    /// untouched apart from the quarantine counter.
    ///
    /// # Errors
    /// [`IngestError::NonFinite`] when `x` is NaN or ±inf.
    pub fn offer_checked(
        &mut self,
        key: u64,
        x: f64,
        t: u64,
    ) -> Result<OfferOutcome, crate::serve::IngestError> {
        if !x.is_finite() {
            self.quarantined += 1;
            return Err(crate::serve::IngestError::NonFinite {
                index: key,
                value: x,
            });
        }
        Ok(self.offer(key, x, t))
    }

    /// The backing count sketch (read-only).
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    /// The per-sample gate invariants at stream time `t` (1-based). Callers
    /// expanding one sample into many pair updates compute this once and
    /// pass it to [`AscsSketch::offer_gated`] for every update of the
    /// sample.
    pub fn sample_gate(&self, t: u64) -> SampleGate {
        let phase = self.phase(t);
        SampleGate {
            phase,
            tau: self.schedule.tau(t.saturating_sub(1)),
        }
    }

    /// Offers the update `x = X_i^{(t)}` for item `key` at stream time `t`
    /// (1-based). Returns whether it was ingested.
    ///
    /// During the sampling phase the gate accepts when either the current
    /// estimate **or the would-be estimate including this update**
    /// (`μ̂_i + x/T`) clears `τ(t − 1)`. The second disjunct is a cold-start
    /// refinement of Algorithm 2 line 11 for sparse streams, where a pair's
    /// first co-observation may arrive only after exploration: without it,
    /// a never-seen pair (estimate exactly 0) could never enter the sketch.
    /// On dense streams `τ(t)·T` exceeds any single `|x|` within a few
    /// samples of `T0`, so the paper's original rule takes over almost
    /// immediately.
    ///
    /// The implementation follows a **hash-once, read-once** discipline:
    /// the key is hashed a single time into stack-allocated row locations,
    /// the gate reads the per-row values once, and the post-insert estimate
    /// fed to the top-k tracker is derived *algebraically* from those same
    /// reads (`new_row_est = old_row_est + w`, since `s² = 1`; the shift by
    /// a common `w` also preserves the sort order, so the fresh median
    /// falls out of the already-sorted gate values) — no second hashing
    /// round, no second table traversal, no second sort. Accept decisions
    /// and table contents match the pre-fusion
    /// [`AscsSketch::offer_reference`] bit for bit whenever `T` is a power
    /// of two (see there for the single rounding caveat).
    pub fn offer(&mut self, key: u64, x: f64, t: u64) -> OfferOutcome {
        let gate = self.sample_gate(t);
        self.offer_gated(key, x, gate)
    }

    /// [`AscsSketch::offer`] with the per-sample invariants precomputed via
    /// [`AscsSketch::sample_gate`] — the form the `O(d²)` pair-update loop
    /// of a sample expansion uses.
    #[inline]
    pub fn offer_gated(&mut self, key: u64, x: f64, gate: SampleGate) -> OfferOutcome {
        if !x.is_finite() {
            // Quarantine before *any* table access: a NaN inserted once is
            // unrecoverable (every bucket it touches reads back NaN).
            self.quarantined += 1;
            return OfferOutcome {
                inserted: false,
                phase: gate.phase,
            };
        }
        if self.sketch.rows() > MAX_ROWS {
            // Degenerate geometries beyond the stack buffer take the
            // unfused (but still correct) path.
            return self.offer_unfused(key, x, gate);
        }
        let w = x * self.inv_total;
        let track = self.tracking_enabled;
        match gate.phase {
            AscsPhase::Exploration if !track => {
                // Nothing reads the table: a plain single-hash insert.
                self.sketch.update(key, w);
                self.inserted += 1;
            }
            AscsPhase::Exploration => {
                let locs = self.sketch.locate(key);
                let mut rows = [0.0f64; MAX_ROWS];
                let n = self.sketch.row_values_at(&locs, &mut rows);
                self.sketch.update_at(&locs, w);
                self.inserted += 1;
                // Post-insert row estimates follow algebraically from the
                // reads: (W[e,b] + w·s)·s = W[e,b]·s + w since s² = 1.
                for v in rows.iter_mut().take(n) {
                    *v += w;
                }
                let fresh = median_in_place(&mut rows[..n]);
                self.track_offer(key, fresh);
            }
            AscsPhase::Sampling => {
                let locs = self.sketch.locate(key);
                let mut rows = [0.0f64; MAX_ROWS];
                let n = self.sketch.row_values_at(&locs, &mut rows);
                let estimate = median_in_place(&mut rows[..n]);
                let posterior = estimate + w;
                let accept = if self.absolute_gate {
                    estimate.abs() >= gate.tau || posterior.abs() >= gate.tau
                } else {
                    estimate >= gate.tau || posterior >= gate.tau
                };
                if !accept {
                    self.skipped += 1;
                    return OfferOutcome {
                        inserted: false,
                        phase: gate.phase,
                    };
                }
                self.sketch.update_at(&locs, w);
                self.inserted += 1;
                if track {
                    // The insert adds the *same* `w` to every row estimate
                    // (s² = 1), a monotone shift that commutes with the
                    // median — so for odd K the fresh median is just the
                    // gate median shifted: no second table traversal, no
                    // second median reduction. (Even K averages the two
                    // middle values, where the shift does not commute
                    // bit-exactly; re-reduce the shifted values there.)
                    let fresh = if n % 2 == 1 {
                        estimate + w
                    } else {
                        for v in rows.iter_mut().take(n) {
                            *v += w;
                        }
                        median_in_place(&mut rows[..n])
                    };
                    self.track_offer(key, fresh);
                }
            }
        }
        OfferOutcome {
            inserted: true,
            phase: gate.phase,
        }
    }

    /// [`AscsSketch::offer_gated`] driven by a precomputed [`HashPlan`]
    /// instead of per-update hashing: `slot` is both the plan slot and the
    /// item key (the dense-pair identification `slot == key` of the
    /// estimator's plan — plans over `0..p` make the lookup free). Gate
    /// decisions, table contents and tracker state are bit-identical to the
    /// hashed path; the plan merely replays the same `(bucket, sign)`
    /// locations from its arena.
    ///
    /// Geometries beyond [`MAX_ROWS`] rows take the unfused fallback, which
    /// hashes — the stack buffers of the fused structure cap at `MAX_ROWS`
    /// and such geometries are outside every benchmarked configuration.
    #[inline]
    pub fn offer_planned(
        &mut self,
        plan: &HashPlan,
        slot: u64,
        x: f64,
        gate: SampleGate,
    ) -> OfferOutcome {
        if !x.is_finite() {
            // Same quarantine as the hashed path, before any table access.
            self.quarantined += 1;
            return OfferOutcome {
                inserted: false,
                phase: gate.phase,
            };
        }
        if self.sketch.rows() > MAX_ROWS {
            return self.offer_unfused(slot, x, gate);
        }
        let w = x * self.inv_total;
        let track = self.tracking_enabled;
        let slot = slot as usize;
        match gate.phase {
            AscsPhase::Exploration if !track => {
                self.sketch.update_planned(plan, slot, w);
                self.inserted += 1;
            }
            AscsPhase::Exploration => {
                let mut rows = [0.0f64; MAX_ROWS];
                let n = self.sketch.row_values_planned(plan, slot, &mut rows);
                self.sketch.update_planned(plan, slot, w);
                self.inserted += 1;
                for v in rows.iter_mut().take(n) {
                    *v += w;
                }
                let fresh = median_in_place(&mut rows[..n]);
                self.track_offer(slot as u64, fresh);
            }
            AscsPhase::Sampling => {
                let mut rows = [0.0f64; MAX_ROWS];
                let n = self.sketch.row_values_planned(plan, slot, &mut rows);
                let estimate = median_in_place(&mut rows[..n]);
                let posterior = estimate + w;
                let accept = if self.absolute_gate {
                    estimate.abs() >= gate.tau || posterior.abs() >= gate.tau
                } else {
                    estimate >= gate.tau || posterior >= gate.tau
                };
                if !accept {
                    self.skipped += 1;
                    return OfferOutcome {
                        inserted: false,
                        phase: gate.phase,
                    };
                }
                self.sketch.update_planned(plan, slot, w);
                self.inserted += 1;
                if track {
                    // Same algebraic shortcut as the hashed path: for odd K
                    // the fresh median is the gate median shifted by `w`.
                    let fresh = if n % 2 == 1 {
                        estimate + w
                    } else {
                        for v in rows.iter_mut().take(n) {
                            *v += w;
                        }
                        median_in_place(&mut rows[..n])
                    };
                    self.track_offer(slot as u64, fresh);
                }
            }
        }
        OfferOutcome {
            inserted: true,
            phase: gate.phase,
        }
    }

    /// [`AscsSketch::offer_planned`] with the gate derived from the stream
    /// time — the planned counterpart of [`AscsSketch::offer`].
    pub fn offer_planned_at(&mut self, plan: &HashPlan, slot: u64, x: f64, t: u64) -> OfferOutcome {
        let gate = self.sample_gate(t);
        self.offer_planned(plan, slot, x, gate)
    }

    /// Drives a whole batch of updates (keys are plan slots) through the
    /// planned offer path: the per-sample gate is recomputed only when the
    /// stream time changes, and the sketch-table buckets of upcoming
    /// entries are prefetched [`PLAN_PREFETCH_DISTANCE`] updates ahead.
    /// This is the steady-state ingestion loop of the throughput harness
    /// and of each sharded worker.
    ///
    /// # Panics
    /// Panics if the plan does not match this sketch's hash family.
    pub fn ingest_planned(&mut self, plan: &HashPlan, updates: &[ShardUpdate]) {
        self.sketch.verify_plan(plan);
        let mut gate_t = u64::MAX;
        let mut gate: Option<SampleGate> = None;
        for (i, u) in updates.iter().enumerate() {
            if let Some(ahead) = updates.get(i + PLAN_PREFETCH_DISTANCE) {
                self.sketch.prefetch_planned(plan, ahead.key as usize);
            }
            if u.t != gate_t {
                gate = Some(self.sample_gate(u.t));
                gate_t = u.t;
            }
            self.offer_planned(plan, u.key, u.value, gate.expect("gate set above"));
        }
    }

    /// Feeds the tracker with a freshly derived estimate.
    #[inline]
    fn track_offer(&mut self, key: u64, fresh: f64) {
        self.tracker.offer(
            key,
            if self.absolute_gate {
                fresh.abs()
            } else {
                fresh
            },
        );
    }

    /// The **pre-fusion** offer path, kept verbatim as the baseline the
    /// throughput harness measures speedups against: three table passes per
    /// accepted update (estimate → update → estimate), the `1/T` scaling as
    /// a per-update division, phase and `τ(t − 1)` re-derived per update,
    /// and the top-k tracker fed on *every* insert with a full fresh
    /// point query.
    ///
    /// The accept decisions, the resulting sketch **table** and the tracker
    /// contents match [`AscsSketch::offer`] exactly whenever `T` is a power
    /// of two (then `x / T` and `x · (1/T)` round identically). The one
    /// concession to the present codebase is
    /// [`AscsSketch::without_tracking`], which this path honours so
    /// tracker-free variants measure like for like.
    pub fn offer_reference(&mut self, key: u64, x: f64, t: u64) -> OfferOutcome {
        let phase = self.phase(t);
        if !x.is_finite() {
            // The reference path quarantines identically, so fused-vs-
            // reference bit-identity holds on poisoned streams too.
            self.quarantined += 1;
            return OfferOutcome {
                inserted: false,
                phase,
            };
        }
        let accept = match phase {
            AscsPhase::Exploration => true,
            AscsPhase::Sampling => {
                let estimate = self.sketch.estimate(key);
                let posterior = estimate + x / self.total as f64;
                let tau = self.schedule.tau(t - 1);
                if self.absolute_gate {
                    estimate.abs() >= tau || posterior.abs() >= tau
                } else {
                    estimate >= tau || posterior >= tau
                }
            }
        };
        if accept {
            self.sketch.update(key, x / self.total as f64);
            self.inserted += 1;
            if self.tracking_enabled {
                let fresh = self.sketch.estimate(key);
                self.track_offer(key, fresh);
            }
        } else {
            self.skipped += 1;
        }
        OfferOutcome {
            inserted: accept,
            phase,
        }
    }

    fn offer_unfused(&mut self, key: u64, x: f64, gate: SampleGate) -> OfferOutcome {
        let w = x * self.inv_total;
        let accept = match gate.phase {
            AscsPhase::Exploration => true,
            AscsPhase::Sampling => {
                let estimate = self.sketch.estimate(key);
                let posterior = estimate + w;
                if self.absolute_gate {
                    estimate.abs() >= gate.tau || posterior.abs() >= gate.tau
                } else {
                    estimate >= gate.tau || posterior >= gate.tau
                }
            }
        };
        if accept {
            self.sketch.update(key, w);
            self.inserted += 1;
            if self.tracking_enabled {
                let fresh = self.sketch.estimate(key);
                self.track_offer(key, fresh);
            }
        } else {
            self.skipped += 1;
        }
        OfferOutcome {
            inserted: accept,
            phase: gate.phase,
        }
    }

    /// Final (or current) estimate of `μ_i` for item `key`.
    pub fn estimate(&self, key: u64) -> f64 {
        self.sketch.estimate(key)
    }

    /// The top tracked items, largest estimate magnitude first.
    pub fn top_pairs(&self) -> Vec<(u64, f64)> {
        self.tracker.descending()
    }

    /// The `k` top tracked items, largest estimate magnitude first —
    /// partial selection instead of a full sort of the retained set (see
    /// [`TopKTracker::top_descending`]).
    pub fn top_pairs_limit(&self, k: usize) -> Vec<(u64, f64)> {
        self.tracker.top_descending(k)
    }

    /// Memory footprint in float-equivalent words (sketch table only; the
    /// tracker is reporting state, not sketch state).
    pub fn memory_words(&self) -> usize {
        use ascs_count_sketch::PointSketch as _;
        self.sketch.memory_words()
    }

    /// Serializes the full gate state — exploration length, stream length,
    /// gate flags, insert/skip counters, the threshold schedule — followed
    /// by the nested count-sketch and tracker records.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_ASCS_SKETCH)?;
        codec::write_u64(w, self.t0)?;
        codec::write_u64(w, self.total)?;
        codec::write_bool(w, self.absolute_gate)?;
        codec::write_bool(w, self.tracking_enabled)?;
        codec::write_u64(w, self.inserted)?;
        codec::write_u64(w, self.skipped)?;
        self.schedule.save(w)?;
        self.sketch.save(w)?;
        self.tracker.save(w)
    }

    /// Restores a sketch saved by [`AscsSketch::save`]. `inv_total` is
    /// recomputed as `1 / total` exactly as the constructor does, so a
    /// restored sketch continues the stream bit-identically.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_ASCS_SKETCH)?;
        let t0 = codec::read_u64(r)?;
        let total = codec::read_u64(r)?;
        if total == 0 {
            return Err(CodecError::Corrupt("stream length must be positive"));
        }
        if t0 > total {
            return Err(CodecError::Corrupt(
                "exploration period exceeds the stream length",
            ));
        }
        let absolute_gate = codec::read_bool(r)?;
        let tracking_enabled = codec::read_bool(r)?;
        let inserted = codec::read_u64(r)?;
        let skipped = codec::read_u64(r)?;
        let schedule = ThresholdSchedule::restore(r)?;
        let sketch = CountSketch::restore(r)?;
        let tracker = TopKTracker::restore(r)?;
        Ok(Self {
            sketch,
            schedule,
            t0,
            total,
            tracker,
            absolute_gate,
            inv_total: 1.0 / total as f64,
            tracking_enabled,
            inserted,
            skipped,
            quarantined: 0,
        })
    }

    /// Restores a checkpointed sketch and merges it into `self` via count
    /// sketch linearity: tables and counters add, and the top-k tracker is
    /// rebuilt by re-scoring the union of both trackers' keys against the
    /// merged sketch (a tracker is reporting state, so "best `k` of the
    /// union under the merged estimates" is the meaningful merge).
    ///
    /// Both sketches must share geometry, seed, schedule, exploration and
    /// stream length, and gate flags; mismatches return
    /// [`CodecError::Incompatible`].
    pub fn merge_from_checkpoint<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), CodecError> {
        let other = Self::restore(r)?;
        self.merge_restored(&other)
    }

    /// Merges an already-restored sketch into `self`; see
    /// [`AscsSketch::merge_from_checkpoint`].
    pub fn merge_restored(&mut self, other: &Self) -> Result<(), CodecError> {
        if self.t0 != other.t0 || self.total != other.total {
            return Err(CodecError::Incompatible("stream phase geometry mismatch"));
        }
        if self.schedule != other.schedule {
            return Err(CodecError::Incompatible("threshold schedule mismatch"));
        }
        if self.absolute_gate != other.absolute_gate
            || self.tracking_enabled != other.tracking_enabled
        {
            return Err(CodecError::Incompatible("gate flag mismatch"));
        }
        if self.tracker.capacity() != other.tracker.capacity() {
            return Err(CodecError::Incompatible("tracker capacity mismatch"));
        }
        self.sketch.merge_restored(&other.sketch)?;
        self.inserted += other.inserted;
        self.skipped += other.skipped;
        self.quarantined += other.quarantined;
        let mut union: Vec<u64> = self
            .tracker
            .descending()
            .into_iter()
            .chain(other.tracker.descending())
            .map(|(key, _)| key)
            .collect();
        union.sort_unstable();
        union.dedup();
        let scored: Vec<(u64, f64)> = union
            .into_iter()
            .map(|key| {
                let fresh = self.sketch.estimate(key);
                (
                    key,
                    if self.absolute_gate {
                        fresh.abs()
                    } else {
                        fresh
                    },
                )
            })
            .collect();
        self.tracker = TopKTracker::from_rescored(
            self.tracker.capacity(),
            self.tracker.offers() + other.tracker.offers(),
            scored,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SketchGeometry;

    fn hyper(t0: u64, theta: f64, tau0: f64) -> HyperParameters {
        HyperParameters {
            t0,
            theta,
            tau0,
            delta: 0.05,
            delta_star: 0.2,
        }
    }

    fn small_ascs(t0: u64, total: u64) -> AscsSketch {
        AscsSketch::new(
            SketchGeometry::new(5, 512),
            &hyper(t0, 0.3, 0.01),
            total,
            16,
            7,
        )
    }

    #[test]
    fn exploration_phase_ingests_everything() {
        let mut a = small_ascs(10, 100);
        for t in 1..=10 {
            let out = a.offer(3, 0.5, t);
            assert!(out.inserted);
            assert_eq!(out.phase, AscsPhase::Exploration);
        }
        assert_eq!(a.inserted_updates(), 10);
        assert_eq!(a.skipped_updates(), 0);
    }

    #[test]
    fn sampling_phase_skips_items_below_threshold() {
        let mut a = small_ascs(5, 100);
        // Item 1 builds a solid estimate during exploration; item 2 never
        // appears until sampling starts and should be gated out.
        for t in 1..=5 {
            a.offer(1, 1.0, t);
        }
        // estimate(1) ≈ 5/100 = 0.05 ≥ tau = 0.01 → keeps being sampled.
        let kept = a.offer(1, 1.0, 6);
        assert!(kept.inserted);
        assert_eq!(kept.phase, AscsPhase::Sampling);
        // estimate(2) = 0 and even the would-be estimate 0 + 0.4/100 stays
        // below tau = 0.01 → skipped.
        let skipped = a.offer(2, 0.4, 6);
        assert!(!skipped.inserted);
        assert_eq!(a.skipped_updates(), 1);
        // And the skipped update must not have changed the sketch.
        assert_eq!(a.estimate(2), 0.0);
    }

    #[test]
    fn rising_threshold_eventually_filters_weak_items() {
        // theta large → threshold ramps quickly past the weak item's mean.
        let geometry = SketchGeometry::new(5, 1024);
        let mut a = AscsSketch::new(geometry, &hyper(10, 0.9, 0.0), 200, 16, 3);
        let weak = 11u64;
        let strong = 22u64;
        let mut weak_inserted = 0;
        let mut strong_inserted = 0;
        for t in 1..=200 {
            if a.offer(weak, 0.05, t).inserted {
                weak_inserted += 1;
            }
            if a.offer(strong, 1.0, t).inserted {
                strong_inserted += 1;
            }
        }
        assert_eq!(strong_inserted, 200, "strong item must never be dropped");
        assert!(
            weak_inserted < 150,
            "weak item should be cut off by the rising threshold, got {weak_inserted}"
        );
    }

    #[test]
    fn absolute_gate_keeps_negative_signals_signed_gate_drops_them() {
        let geometry = SketchGeometry::new(5, 1024);
        let run = |signed: bool| {
            let mut a = AscsSketch::new(geometry, &hyper(10, 0.2, 0.01), 100, 16, 5);
            if signed {
                a = a.with_signed_gate();
            }
            let mut inserted = 0;
            for t in 1..=100 {
                if a.offer(7, -1.0, t).inserted {
                    inserted += 1;
                }
            }
            inserted
        };
        let with_abs = run(false);
        let with_signed = run(true);
        assert_eq!(with_abs, 100);
        assert!(with_signed <= 15, "signed gate kept {with_signed} updates");
    }

    #[test]
    fn estimates_converge_to_the_mean_scale() {
        // A signal inserted every round with value 0.8: final estimate ≈ 0.8.
        let mut a = small_ascs(20, 500);
        for t in 1..=500 {
            a.offer(42, 0.8, t);
        }
        assert!((a.estimate(42) - 0.8).abs() < 0.05);
    }

    #[test]
    fn top_pairs_surface_the_strong_items() {
        let mut a = small_ascs(10, 300);
        for t in 1..=300u64 {
            a.offer(1, 1.0, t);
            a.offer(2, 0.7, t);
            if t % 10 == 0 {
                a.offer(3, 0.05, t);
            }
        }
        let top = a.top_pairs();
        assert!(top.len() >= 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn phase_boundaries_are_inclusive_of_t0() {
        let a = small_ascs(10, 100);
        assert_eq!(a.phase(10), AscsPhase::Exploration);
        assert_eq!(a.phase(11), AscsPhase::Sampling);
    }

    #[test]
    #[should_panic(expected = "exceeds the stream length")]
    fn t0_longer_than_stream_is_rejected() {
        let _ = small_ascs(200, 100);
    }

    #[test]
    fn memory_words_reports_sketch_table() {
        let a = small_ascs(10, 100);
        assert_eq!(a.memory_words(), 5 * 512);
    }

    /// With a power-of-two stream length (`x / T` and `x · (1/T)` round
    /// identically) the fused offer and the pre-fusion reference must make
    /// the same accept decisions, build bit-identical tables and retain the
    /// same tracker contents.
    #[test]
    fn fused_offer_matches_reference_bit_for_bit() {
        let build = || {
            AscsSketch::new(
                SketchGeometry::new(5, 128),
                &hyper(20, 0.4, 1e-3),
                256,
                16,
                13,
            )
        };
        let mut fused = build();
        let mut reference = build();
        for t in 1..=256u64 {
            for key in 0..12u64 {
                let x = ((key as f64) - 4.0) * 0.3 * (1.0 + (t % 7) as f64 * 0.1);
                let a = fused.offer(key, x, t);
                let b = reference.offer_reference(key, x, t);
                assert_eq!(a, b, "outcome diverged at t={t}, key={key}");
            }
        }
        let fa = fused.sketch().table();
        let fb = reference.sketch().table();
        assert!(
            fa.iter().zip(fb).all(|(a, b)| a.to_bits() == b.to_bits()),
            "sketch tables diverged"
        );
        assert_eq!(fused.inserted_updates(), reference.inserted_updates());
        assert_eq!(fused.skipped_updates(), reference.skipped_updates());
        assert_eq!(fused.top_pairs(), reference.top_pairs());
    }

    #[test]
    fn oversized_row_count_falls_back_to_the_unfused_path() {
        let geometry = SketchGeometry::new(17, 64); // beyond MAX_ROWS
        let mut a = AscsSketch::new(geometry, &hyper(5, 0.3, 1e-3), 50, 8, 3);
        for t in 1..=50 {
            a.offer(7, 1.0, t);
        }
        assert!((a.estimate(7) - 1.0).abs() < 0.05);
    }

    #[test]
    fn without_tracking_reports_no_top_pairs() {
        let mut a = small_ascs(10, 100).without_tracking();
        for t in 1..=100 {
            a.offer(1, 1.0, t);
        }
        assert!(a.top_pairs().is_empty());
        assert_eq!(a.inserted_updates(), 100);
        assert!((a.estimate(1) - 1.0).abs() < 0.05);
    }

    #[test]
    fn exploration_inserts_are_tracked_on_gated_runs() {
        // On sparse streams a pair's co-observations can be confined to the
        // exploration window; it must still surface in the report.
        let mut a = small_ascs(10, 100);
        for t in 1..=10 {
            a.offer(5, 1.0, t); // exploration only
        }
        let top = a.top_pairs();
        assert_eq!(top.len(), 1, "exploration-only pair was dropped");
        assert_eq!(top[0].0, 5);
    }

    #[test]
    fn vanilla_runs_track_throughout() {
        let mut a = AscsSketch::vanilla(SketchGeometry::new(5, 512), 50, 8, 2);
        for t in 1..=50 {
            a.offer(3, 0.5, t);
        }
        let top = a.top_pairs();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, 3);
    }

    #[test]
    fn planned_offer_matches_hashed_offer_bit_for_bit() {
        let build = || small_ascs(20, 256);
        let mut hashed = build();
        let mut planned = build();
        let plan = planned.sketch().build_plan(12);
        for t in 1..=256u64 {
            let gate = hashed.sample_gate(t);
            for key in 0..12u64 {
                let x = ((key as f64) - 4.0) * 0.3 * (1.0 + (t % 7) as f64 * 0.1);
                let a = hashed.offer_gated(key, x, gate);
                let b = planned.offer_planned(&plan, key, x, gate);
                assert_eq!(a, b, "outcome diverged at t={t}, key={key}");
            }
        }
        let ta = hashed.sketch().table();
        let tb = planned.sketch().table();
        assert!(
            ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()),
            "sketch tables diverged"
        );
        assert_eq!(hashed.inserted_updates(), planned.inserted_updates());
        assert_eq!(hashed.skipped_updates(), planned.skipped_updates());
        assert_eq!(hashed.top_pairs(), planned.top_pairs());
        assert_eq!(hashed.top_pairs_limit(3), planned.top_pairs_limit(3));
        assert_eq!(hashed.top_pairs_limit(3), hashed.top_pairs()[..3].to_vec());
    }

    #[test]
    fn ingest_planned_batch_matches_per_update_offers() {
        let mut direct = small_ascs(10, 128).without_tracking();
        let mut batched = small_ascs(10, 128).without_tracking();
        let plan = batched.sketch().build_plan(8);
        let updates: Vec<crate::sharded::ShardUpdate> = (1..=128u64)
            .flat_map(|t| {
                (0..8u64).map(move |key| crate::sharded::ShardUpdate {
                    key,
                    value: ((key + t) % 5) as f64 * 0.4 - 0.8,
                    t,
                })
            })
            .collect();
        for u in &updates {
            direct.offer(u.key, u.value, u.t);
        }
        batched.ingest_planned(&plan, &updates);
        let ta = direct.sketch().table();
        let tb = batched.sketch().table();
        assert!(ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(direct.inserted_updates(), batched.inserted_updates());
        assert_eq!(direct.skipped_updates(), batched.skipped_updates());
    }

    #[test]
    fn planned_offer_falls_back_beyond_max_rows() {
        let geometry = SketchGeometry::new(MAX_ROWS + 1, 64);
        let mut a = AscsSketch::new(geometry, &hyper(5, 0.3, 1e-3), 50, 8, 3);
        let plan = a.sketch().build_plan(8);
        for t in 1..=50 {
            a.offer_planned_at(&plan, 7, 1.0, t);
        }
        assert!((a.estimate(7) - 1.0).abs() < 0.05);
    }

    #[test]
    fn non_finite_offers_are_quarantined_without_touching_state() {
        let mut a = small_ascs(10, 100);
        for t in 1..=20 {
            a.offer(1, 1.0, t);
        }
        let table_before: Vec<u64> = a.sketch().table().iter().map(|v| v.to_bits()).collect();
        let (ins, skip) = (a.inserted_updates(), a.skipped_updates());
        for (i, bad) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            let out = a.offer(1, bad, 21 + i as u64);
            assert!(!out.inserted, "non-finite update was inserted");
        }
        assert_eq!(a.quarantined_updates(), 3);
        assert_eq!(a.inserted_updates(), ins);
        assert_eq!(a.skipped_updates(), skip);
        let table_after: Vec<u64> = a.sketch().table().iter().map(|v| v.to_bits()).collect();
        assert_eq!(table_before, table_after, "quarantine touched the table");
        // The stream keeps working afterwards.
        assert!(a.offer(1, 1.0, 24).inserted);
    }

    #[test]
    fn offer_checked_surfaces_a_typed_non_finite_error() {
        let mut a = small_ascs(10, 100);
        let err = a.offer_checked(7, f64::NAN, 1).unwrap_err();
        match err {
            crate::serve::IngestError::NonFinite { index, value } => {
                assert_eq!(index, 7);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert_eq!(a.quarantined_updates(), 1);
        assert!(a.offer_checked(7, 1.0, 1).unwrap().inserted);
    }

    #[test]
    fn quarantine_counter_is_not_serialized() {
        let mut a = small_ascs(10, 100);
        a.offer(1, f64::NAN, 1);
        assert_eq!(a.quarantined_updates(), 1);
        let mut bytes = Vec::new();
        a.save(&mut bytes).unwrap();
        let back = AscsSketch::restore(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.quarantined_updates(), 0, "diagnostic state leaked");
    }

    #[test]
    fn sample_gate_reflects_phase_and_threshold() {
        let a = small_ascs(10, 100);
        let g = a.sample_gate(5);
        assert_eq!(g.phase, AscsPhase::Exploration);
        let g = a.sample_gate(50);
        assert_eq!(g.phase, AscsPhase::Sampling);
        assert_eq!(g.tau, a.schedule().tau(49));
        assert_eq!(a.top_k_capacity(), 16);
        assert!(a.absolute_gate());
    }
}
