//! Fault-tolerant serving core: supervised shard workers, epoch-stamped
//! snapshot reads and checkpoint-backed crash recovery.
//!
//! [`ServingEstimator`] turns the batch-oriented estimator into a
//! long-running service. Each shard worker owns its [`AscsSketch`] on a
//! dedicated thread fed by a bounded queue; the caller-side
//! [`ServingEstimator::try_ingest`] expands a sample into pair updates,
//! routes them with the *same* salted router as [`ShardedAscs`], and
//! returns a typed [`IngestError::Overloaded`] instead of blocking when a
//! queue is full. Readers never touch worker state: they read the last
//! *published* [`Snapshot`] — a merged table built via count-sketch
//! linearity and swapped in behind an `Arc` — so point queries, whole
//! universe sweeps and top-k reads never observe a torn table.
//!
//! Robustness is structural, not best-effort:
//!
//! * **Quarantine** — non-finite samples are rejected at the ingest
//!   boundary with [`IngestError::NonFinite`] and a counter, before any
//!   state (stream time, feature moments, queues) is touched.
//! * **Supervision** — each worker loop runs under `catch_unwind`; a
//!   supervisor thread restarts a panicked worker from its last good
//!   in-memory checkpoint (the PR 5 codec) and replays the bounded batch
//!   log accumulated since that checkpoint, so post-recovery state is
//!   bit-identical to a run that never crashed.
//! * **Degraded mode** — while recovery is in progress readers keep being
//!   served the last published snapshot, stamped with its epoch and a
//!   staleness flag ([`SnapshotView::degraded`], [`SnapshotView::lag`]).
//! * **Torn checkpoints** — every checkpoint is validated by restoring it
//!   before it replaces the previous one; a corrupted write keeps the old
//!   checkpoint and lets the replay log grow instead.
//!
//! Determinism contract: per-shard update order is preserved (bounded FIFO
//! queues, a single producer), workers apply updates exactly like the
//! [`ShardedAscs`] worker loop, and snapshots merge worker sketches in
//! shard order — so a snapshot at epoch `t` is bit-identical to a
//! sequential [`ShardedAscs`] replay of the first `t` samples with the
//! same configuration, shard count and seed. The fault-injection tests
//! pin this down, panics and torn checkpoints included.

use crate::ascs::AscsSketch;
use crate::config::AscsConfig;
use crate::durability::{
    prototype_sketch, DurabilityError, DurabilityHealth, DurabilityOptions, DurableStore,
    RecoveredState, RecoveryManager, RecoveryReport,
};
use crate::estimator::{ReportedPair, MAX_PLANNED_PAIRS, TRANSIENT_PLAN_PAIRS};
use crate::hyper::{HyperParameterSolver, HyperParameters};
use crate::pair::PairIndexer;
use crate::sharded::{shard_for, ShardUpdate, MAX_SHARDS, ROUTER_SALT};
use crate::stream::{Sample, StreamContext};
use crate::supervisor::{
    lock, spawn_supervisor, spawn_worker, Envelope, RecoveryState, ShardQueue, WorkerContext,
    WorkerShared,
};
use crate::theory::TheoryBounds;
use crate::timeaware::window_span;
use ascs_count_sketch::codec::{DurableFs, StdFs};
use ascs_count_sketch::CountSketch;
use ascs_sketch_hash::splitmix64;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Typed rejection at the ingest boundary. The failed call mutates
/// *nothing* besides the corresponding diagnostic counter: the sample can
/// be retried (for [`IngestError::Overloaded`]) or dropped (for
/// [`IngestError::NonFinite`]) without the stream time advancing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestError {
    /// The sample (or update) carries a NaN or ±inf value and was
    /// quarantined before touching any state. At the sample boundary
    /// `index` is the offending feature index; at the sketch boundary
    /// ([`AscsSketch::offer_checked`]) it is the pair key.
    NonFinite {
        /// Feature index (sample boundary) or pair key (sketch boundary).
        index: u64,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
    /// A shard's bounded queue has no room for another batch; retry after
    /// readers/workers drain, or treat as load shedding.
    Overloaded {
        /// The shard whose queue is full.
        shard: usize,
        /// The queue capacity in batches.
        capacity: usize,
    },
    /// The shard exhausted its restart budget and was abandoned by the
    /// supervisor; the serving instance can still answer reads from the
    /// last published snapshot but accepts no further ingest.
    ShardFailed {
        /// The failed shard.
        shard: usize,
    },
    /// [`ServingEstimator::ingest_with_deadline`] saw `Overloaded` for the
    /// whole deadline: the queues never drained. Nothing changed; the
    /// sample can be retried or shed.
    Timeout {
        /// How long the call waited before giving up.
        waited: Duration,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::NonFinite { index, value } => {
                write!(f, "non-finite value {value} at index {index} quarantined")
            }
            IngestError::Overloaded { shard, capacity } => {
                write!(f, "shard {shard} queue full ({capacity} batches)")
            }
            IngestError::ShardFailed { shard } => {
                write!(f, "shard {shard} exceeded its restart budget")
            }
            IngestError::Timeout { waited } => {
                write!(
                    f,
                    "shard queues stayed full for {:.1} ms",
                    waited.as_secs_f64() * 1e3
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Why a snapshot refresh (or shutdown) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A shard exhausted its restart budget; its state is unrecoverable
    /// within this instance.
    ShardFailed {
        /// The failed shard.
        shard: usize,
    },
    /// The collect barrier did not complete within the deadline.
    SnapshotTimeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShardFailed { shard } => {
                write!(f, "shard {shard} exceeded its restart budget")
            }
            ServeError::SnapshotTimeout => write!(f, "snapshot collect barrier timed out"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Deterministic fault-injection hooks, implemented by the testkit's
/// `FaultPlan` and defaulting to no-ops ([`NoFaults`]) in production.
///
/// Injected faults fire on the *first delivery* of a batch only by
/// default: recovery replays run without injection, so a panic-at-update-N
/// fault cannot put a worker into an infinite crash loop. Returning `true`
/// from [`FaultInjector::inject_during_recovery`] lifts that exemption —
/// the supervisor's restart budget then bounds the crash loop, terminating
/// in a typed [`IngestError::ShardFailed`]. Hooks that block
/// ([`FaultInjector::before_batch`], [`FaultInjector::before_recovery`])
/// must be released before the serving instance is dropped — shutdown
/// joins the supervision tree.
pub trait FaultInjector: Send + Sync + 'static {
    /// Return `true` to panic the worker right before applying the update
    /// with this shard-local index (0-based over all updates the shard has
    /// been asked to apply on first delivery).
    fn inject_panic(&self, _shard: usize, _update_index: u64) -> bool {
        false
    }

    /// Mutate (e.g. truncate) freshly serialized checkpoint bytes before
    /// they are validated; a corrupted record keeps the previous good
    /// checkpoint in place.
    fn corrupt_checkpoint(&self, _shard: usize, _bytes: &mut Vec<u8>) {}

    /// Called at the start of a worker's recovery (restore + replay). May
    /// block to let tests observe degraded mode.
    fn before_recovery(&self, _shard: usize) {}

    /// Called before a worker applies a batch. May block to force
    /// queue-full storms.
    fn before_batch(&self, _shard: usize) {}

    /// Whether [`FaultInjector::inject_panic`] may also fire during a
    /// recovery replay. The `false` default keeps replays clean (a
    /// one-shot panic cannot loop); `true` exposes the crash-during-
    /// recovery path, bounded by [`ServeOptions::max_restarts`].
    fn inject_during_recovery(&self) -> bool {
        false
    }
}

/// The production no-op injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Tunables of the serving core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Number of shard workers (`1..=MAX_SHARDS`), each owning a
    /// full-geometry sketch on its own thread.
    pub shards: usize,
    /// Bound on *pending* batches per shard queue; one batch is the slice
    /// of one sample's updates owned by that shard. A full queue surfaces
    /// as [`IngestError::Overloaded`] instead of unbounded blocking.
    pub queue_capacity: usize,
    /// Batches applied between worker checkpoints. Smaller means faster
    /// recovery (shorter replay log) at more checkpoint serialization
    /// cost.
    pub checkpoint_interval: usize,
    /// Per-shard restart budget; a shard panicking more than this many
    /// times is abandoned and surfaces as [`IngestError::ShardFailed`].
    pub max_restarts: u64,
    /// How long [`ServingEstimator::ingest_blocking`] waits out a full
    /// queue (yield, then exponentially backed-off sleeps) before
    /// surfacing [`IngestError::Timeout`].
    pub ingest_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            shards: 2,
            queue_capacity: 256,
            checkpoint_interval: 32,
            max_restarts: 8,
            ingest_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared between the producer, the workers, the supervisor and
/// every [`SnapshotReader`].
pub(crate) struct ServeShared {
    published: Mutex<Arc<Snapshot>>,
    /// Stream time of the newest fully enqueued sample.
    pub(crate) ingest_epoch: AtomicU64,
    /// Workers currently restoring + replaying after a panic.
    pub(crate) recovering: AtomicU64,
    /// Worker panics observed by the supervisor.
    pub(crate) panics: AtomicU64,
    /// Worker restarts performed by the supervisor.
    pub(crate) restarts: AtomicU64,
    /// Checkpoint writes rejected by validation (kept the previous one).
    pub(crate) torn_checkpoints: AtomicU64,
    /// Shards abandoned after exhausting their restart budget.
    pub(crate) failed_shards: AtomicU64,
}

/// An immutable, epoch-stamped merged view of the whole serving state.
/// Cheap to share (`Arc`), safe to read from any thread, and bit-identical
/// to a sequential [`ShardedAscs`] replay of the first
/// [`Snapshot::epoch`] samples.
pub struct Snapshot {
    epoch: u64,
    merged: CountSketch,
    top: Vec<(u64, f64)>,
    inserted: u64,
    skipped: u64,
    num_pairs: u64,
    indexer: PairIndexer,
}

impl Snapshot {
    /// Stream time (samples fully ingested) this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The merged count-sketch table (read-only; used by the consistency
    /// tests to compare tables bit for bit).
    pub fn sketch(&self) -> &CountSketch {
        &self.merged
    }

    /// Point estimate for a linear pair key.
    pub fn estimate(&self, key: u64) -> f64 {
        self.merged.estimate(key)
    }

    /// Point estimate for the feature pair `(a, b)`.
    pub fn estimate_pair(&self, a: u64, b: u64) -> f64 {
        self.merged.estimate(self.indexer.index(a, b))
    }

    /// Estimates for every pair key in `0..p` as one blocked
    /// `estimate_many` sweep (point queries beyond the transient-plan
    /// bound), mirroring `CovarianceEstimator::all_estimates`.
    pub fn all_estimates(&self) -> Vec<f64> {
        let p = self.num_pairs;
        assert!(
            p <= MAX_PLANNED_PAIRS,
            "enumerating {p} pairs would be prohibitively slow; use top_pairs()"
        );
        let mut out = Vec::new();
        if p <= TRANSIENT_PLAN_PAIRS {
            self.merged
                .estimate_many(&self.merged.build_plan(p as usize), &mut out);
            out.truncate(p as usize);
        } else {
            out.extend((0..p).map(|key| self.merged.estimate(key)));
        }
        out
    }

    /// The top tracked pairs (largest estimate magnitude first, ties by
    /// key), decoded into feature coordinates; at most `k` are returned.
    pub fn top_pairs(&self, k: usize) -> Vec<ReportedPair> {
        self.top
            .iter()
            .take(k)
            .map(|&(key, estimate)| {
                let (a, b) = self.indexer.pair(key);
                ReportedPair {
                    key,
                    a,
                    b,
                    estimate,
                }
            })
            .collect()
    }

    /// Updates inserted / skipped by the gates up to this epoch.
    pub fn update_counts(&self) -> (u64, u64) {
        (self.inserted, self.skipped)
    }
}

/// What a reader sees: the snapshot plus liveness metadata.
pub struct SnapshotView {
    /// The last published snapshot.
    pub snapshot: Arc<Snapshot>,
    /// `true` while a worker is recovering from a panic or a shard has
    /// been abandoned — the snapshot is still internally consistent, but
    /// refreshes are stalled until recovery completes.
    pub degraded: bool,
    /// Samples ingested since this snapshot was published
    /// (`ingest epoch − snapshot epoch`).
    pub lag: u64,
}

/// A cheap, cloneable handle for querying published snapshots from any
/// thread. Readers never block ingestion and never observe a torn table:
/// they see the previous snapshot until the next one is fully built and
/// swapped in.
#[derive(Clone)]
pub struct SnapshotReader {
    shared: Arc<ServeShared>,
}

impl SnapshotReader {
    /// The current published snapshot with staleness metadata.
    pub fn current(&self) -> SnapshotView {
        let snapshot = lock(&self.shared.published).clone();
        let degraded = self.shared.recovering.load(Ordering::SeqCst) > 0
            || self.shared.failed_shards.load(Ordering::SeqCst) > 0;
        let lag = self
            .shared
            .ingest_epoch
            .load(Ordering::SeqCst)
            .saturating_sub(snapshot.epoch);
        SnapshotView {
            snapshot,
            degraded,
            lag,
        }
    }
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Samples accepted by `try_ingest`.
    pub ingested_samples: u64,
    /// Pair updates emitted into the shard queues.
    pub emitted_updates: u64,
    /// Samples rejected for non-finite values.
    pub quarantined_samples: u64,
    /// `Overloaded` rejections (including retries of the same sample).
    pub overload_rejections: u64,
    /// Blocking ingests that exhausted their deadline
    /// ([`IngestError::Timeout`]).
    pub ingest_timeouts: u64,
    /// Worker panics observed by the supervisor.
    pub worker_panics: u64,
    /// Worker restarts performed by the supervisor.
    pub worker_restarts: u64,
    /// Checkpoint writes rejected by validation.
    pub torn_checkpoints: u64,
    /// Workers currently mid-recovery.
    pub recovering_workers: u64,
    /// Shards abandoned after exhausting their restart budget.
    pub failed_shards: u64,
    /// Epoch of the last published snapshot.
    pub published_epoch: u64,
}

/// The full typed health report of a serving instance — what an operator
/// (or the bench harness) reads to decide whether the service is healthy,
/// degraded or durably compromised. Built by [`ServingEstimator::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingHealth {
    /// Number of shard workers.
    pub shards: usize,
    /// Restarts performed per shard (index = shard), the budget spent.
    pub shard_restarts: Vec<u64>,
    /// Shards abandoned after exhausting their restart budget.
    pub failed_shards: Vec<usize>,
    /// Worker panics observed by the supervisor.
    pub worker_panics: u64,
    /// Checkpoint writes rejected by validation.
    pub torn_checkpoints: u64,
    /// Samples rejected for non-finite values.
    pub quarantined_samples: u64,
    /// `Overloaded` rejections (including retries of the same sample).
    pub overload_rejections: u64,
    /// Blocking ingests that exhausted their deadline.
    pub ingest_timeouts: u64,
    /// Workers currently mid-recovery.
    pub recovering_workers: u64,
    /// Any of: a worker recovering, a shard abandoned, durability lost.
    pub degraded: bool,
    /// Stream time of the newest fully enqueued sample.
    pub ingest_epoch: u64,
    /// Epoch of the last published snapshot.
    pub published_epoch: u64,
    /// Durability-side flags and counters.
    pub durability: DurabilityHealth,
}

impl ServingHealth {
    /// Cross-checks the counters against each other and returns every
    /// internal inconsistency found — the standing health invariants the
    /// chaos harness asserts after each fault. Empty means coherent.
    ///
    /// The panic identity allows one in-flight event: the supervisor
    /// counts a panic before deciding restart-vs-abandon, so a concurrent
    /// read may legitimately observe `panics == restarts + abandoned + 1`.
    pub fn coherence_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |ok: bool, what: String| {
            if !ok {
                out.push(what);
            }
        };
        check(
            self.shard_restarts.len() == self.shards,
            format!(
                "restart counters for {} shards, {} expected",
                self.shard_restarts.len(),
                self.shards
            ),
        );
        check(
            self.published_epoch <= self.ingest_epoch,
            format!(
                "published epoch {} ahead of ingest epoch {}",
                self.published_epoch, self.ingest_epoch
            ),
        );
        check(
            self.recovering_workers <= self.shards as u64,
            format!(
                "{} workers recovering out of {} shards",
                self.recovering_workers, self.shards
            ),
        );
        check(
            self.failed_shards.len() <= self.shards
                && self.failed_shards.iter().all(|&s| s < self.shards)
                && self.failed_shards.windows(2).all(|w| w[0] < w[1]),
            format!(
                "abandoned shard list {:?} invalid for {} shards",
                self.failed_shards, self.shards
            ),
        );
        let restarts: u64 = self.shard_restarts.iter().sum();
        let abandoned = self.failed_shards.len() as u64;
        check(
            (restarts + abandoned..=restarts + abandoned + 1).contains(&self.worker_panics),
            format!(
                "{} panics vs {restarts} restarts + {abandoned} abandoned shards",
                self.worker_panics
            ),
        );
        check(
            self.degraded
                == (self.recovering_workers > 0
                    || !self.failed_shards.is_empty()
                    || self.durability.durability_lost),
            format!(
                "degraded flag {} contradicts recovering {} / failed {:?} / durability_lost {}",
                self.degraded,
                self.recovering_workers,
                self.failed_shards,
                self.durability.durability_lost
            ),
        );
        if self.durability.enabled {
            check(
                self.durability.last_checkpoint_epoch <= self.durability.last_durable_epoch,
                format!(
                    "checkpoint epoch {} ahead of durable epoch {}",
                    self.durability.last_checkpoint_epoch, self.durability.last_durable_epoch
                ),
            );
            check(
                self.durability.last_durable_epoch <= self.ingest_epoch,
                format!(
                    "durable epoch {} ahead of ingest epoch {}",
                    self.durability.last_durable_epoch, self.ingest_epoch
                ),
            );
        } else {
            check(
                self.durability == DurabilityHealth::disabled(),
                "durability counters non-zero on an in-memory instance".to_string(),
            );
        }
        out
    }
}

impl std::fmt::Display for ServingHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serving health: {} ({} shards, ingest epoch {}, published epoch {})",
            if self.degraded { "DEGRADED" } else { "ok" },
            self.shards,
            self.ingest_epoch,
            self.published_epoch,
        )?;
        writeln!(
            f,
            "  workers: restarts per shard {:?}, {} panics, {} recovering, abandoned {:?}",
            self.shard_restarts, self.worker_panics, self.recovering_workers, self.failed_shards,
        )?;
        writeln!(
            f,
            "  ingest: {} quarantined, {} overload rejections, {} timeouts, {} torn checkpoints",
            self.quarantined_samples,
            self.overload_rejections,
            self.ingest_timeouts,
            self.torn_checkpoints,
        )?;
        if self.durability.enabled {
            write!(
                f,
                "  durability: {}, durable through epoch {} (checkpoint epoch {}, \
                 {} generations), {} wal records / {} syncs, {} retries, {} failed checkpoints",
                if self.durability.durability_lost {
                    "LOST"
                } else {
                    "ok"
                },
                self.durability.last_durable_epoch,
                self.durability.last_checkpoint_epoch,
                self.durability.checkpoint_generations,
                self.durability.wal_records,
                self.durability.wal_syncs,
                self.durability.persistence_retries,
                self.durability.checkpoint_failures,
            )
        } else {
            write!(f, "  durability: disabled (in-memory only)")
        }
    }
}

/// The long-running serving front end: single-producer ingest with
/// backpressure, supervised shard workers, and epoch-stamped snapshot
/// publication.
pub struct ServingEstimator {
    config: AscsConfig,
    ctx: StreamContext,
    t: u64,
    router_salt: u64,
    opts: ServeOptions,
    shared: Arc<ServeShared>,
    workers: Vec<Arc<WorkerShared>>,
    supervisor: Option<JoinHandle<()>>,
    scratch: Vec<Vec<ShardUpdate>>,
    quarantined_samples: u64,
    overload_rejections: u64,
    ingest_timeouts: u64,
    emitted_updates: u64,
    backoff_rng: u64,
    shut_down: bool,
    store: Option<DurableStore>,
    recovery_report: Option<RecoveryReport>,
    crash_simulated: bool,
}

/// Salt separating the backoff-jitter stream from every other consumer of
/// the configured seed (router, hashes).
const JITTER_SALT: u64 = 0x6A09_E667_F3BC_C909;

/// One backoff delay of [`ServingEstimator::ingest_with_deadline`]: the
/// nominal exponential delay for `step` (20 µs doubling up to a 2.5 ms
/// cap) scaled by a jitter factor drawn uniformly from `[0.5, 1.0)` out of
/// the caller's [`splitmix64`]-chained `rng` state. Pure and fully
/// deterministic in `(step, rng)` — the regression test pins the exact
/// sequence — while distinct seeds decorrelate concurrent retry storms.
pub fn jittered_backoff(step: u32, rng: &mut u64) -> Duration {
    const SLEEP_BASE_MICROS: u64 = 20;
    const SLEEP_CAP_MICROS: u64 = 2500;
    let nominal = (SLEEP_BASE_MICROS << step.min(7)).min(SLEEP_CAP_MICROS);
    *rng = splitmix64(*rng);
    // Top 53 bits → a uniform f64 in [0, 1), halved and shifted to [0.5, 1).
    let factor = 0.5 + (*rng >> 11) as f64 * (0.5 / (1u64 << 53) as f64);
    Duration::from_nanos(((nominal * 1_000) as f64 * factor) as u64)
}

impl ServingEstimator {
    /// Launches a gated serving instance, solving the hyperparameters via
    /// Algorithm 3 with the 10 %-exploration fallback (like
    /// `CovarianceEstimator::new_or_fallback`).
    pub fn launch(config: AscsConfig, opts: ServeOptions) -> Self {
        let bounds = TheoryBounds::new(
            config.num_pairs(),
            config.geometry.range,
            config.geometry.rows,
            config.alpha,
            config.sigma,
            config.signal_strength,
            config.total_samples,
        );
        let solver = HyperParameterSolver::new(bounds);
        let (hp, _fell_back) =
            solver.solve_or_fallback(config.tau0, config.delta, config.delta_star, 0.1);
        Self::launch_with_hyperparameters(config, Some(hp), opts)
    }

    /// Launches a vanilla (always-ingest) serving instance — the gate-free
    /// counterpart, where sharded state is bit-identical to sequential
    /// ingestion unconditionally.
    pub fn launch_vanilla(config: AscsConfig, opts: ServeOptions) -> Self {
        Self::launch_with_hyperparameters(config, None, opts)
    }

    /// Launches with explicit hyperparameters (`None` → vanilla workers),
    /// bypassing Algorithm 3.
    pub fn launch_with_hyperparameters(
        config: AscsConfig,
        hyper: Option<HyperParameters>,
        opts: ServeOptions,
    ) -> Self {
        Self::launch_with_faults(config, hyper, opts, Arc::new(NoFaults))
    }

    /// [`ServingEstimator::launch_with_hyperparameters`] with a fault
    /// injector wired into every worker — the entry point the
    /// deterministic failure tests and the recovery benchmark use.
    ///
    /// # Panics
    /// Panics on an invalid configuration, `shards` outside
    /// `1..=MAX_SHARDS`, or a zero queue capacity / checkpoint interval.
    pub fn launch_with_faults(
        config: AscsConfig,
        hyper: Option<HyperParameters>,
        opts: ServeOptions,
        injector: Arc<dyn FaultInjector>,
    ) -> Self {
        Self::launch_core(config, hyper, opts, injector, None, None, None)
    }

    /// Launches a *durable* serving instance rooted at the durability
    /// options' data directory: recovery runs first (scanning checkpoints
    /// and replaying the WAL tail — a fresh directory recovers to epoch
    /// 0), every worker boots from the recovered state, and from then on
    /// each accepted sample is logged to the write-ahead log before its
    /// updates are delivered, with checkpoint generations rotated on the
    /// configured cadence.
    ///
    /// # Errors
    /// [`DurabilityError`] when the data directory cannot be read or the
    /// filesystem fails during recovery. Torn or corrupt *bytes* on disk
    /// never error — they are discarded with counters in
    /// [`ServingEstimator::recovery_report`].
    pub fn launch_durable(
        config: AscsConfig,
        hyper: Option<HyperParameters>,
        opts: ServeOptions,
        durability: DurabilityOptions,
    ) -> Result<Self, DurabilityError> {
        Self::launch_durable_with_faults(
            config,
            hyper,
            opts,
            durability,
            Arc::new(NoFaults),
            Arc::new(StdFs),
        )
    }

    /// [`ServingEstimator::launch_durable`] with an explicit fault
    /// injector and filesystem — the entry point the fault-injection
    /// tests use to script torn writes, failed fsyncs and crash points.
    ///
    /// # Errors
    /// Same contract as [`ServingEstimator::launch_durable`].
    pub fn launch_durable_with_faults(
        config: AscsConfig,
        hyper: Option<HyperParameters>,
        opts: ServeOptions,
        durability: DurabilityOptions,
        injector: Arc<dyn FaultInjector>,
        fs: Arc<dyn DurableFs>,
    ) -> Result<Self, DurabilityError> {
        let manager = RecoveryManager::with_fs(durability.dir.clone(), fs.clone());
        let outcome = manager.recover(&config, hyper.as_ref(), opts.shards)?;
        let store = DurableStore::open(fs, durability, opts.shards, outcome.bootstrap)?;
        Ok(Self::launch_core(
            config,
            hyper,
            opts,
            injector,
            Some(outcome.state),
            Some(store),
            Some(outcome.report),
        ))
    }

    fn launch_core(
        config: AscsConfig,
        hyper: Option<HyperParameters>,
        opts: ServeOptions,
        injector: Arc<dyn FaultInjector>,
        recovered: Option<RecoveredState>,
        store: Option<DurableStore>,
        recovery_report: Option<RecoveryReport>,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ASCS configuration: {e}"));
        assert!(
            opts.shards >= 1 && opts.shards <= MAX_SHARDS,
            "serving needs 1..={MAX_SHARDS} shards, got {}",
            opts.shards
        );
        assert!(opts.queue_capacity >= 1, "queue capacity must be positive");
        assert!(
            opts.checkpoint_interval >= 1,
            "checkpoint interval must be positive"
        );
        // Every worker boots by restoring a serialized checkpoint — the
        // prototype on a cold start, the recovered shard sketch on a
        // durable one — so the bootstrap path and the crash-recovery path
        // are one code path: a recovery bug cannot hide behind a
        // divergent cold start.
        let (t, stream_ctx, emitted_updates, boot, initial) = match recovered {
            Some(state) => {
                let boot: Vec<(Vec<u8>, u64)> = state
                    .shard_sketches
                    .iter()
                    .map(|sketch| {
                        let mut bytes = Vec::new();
                        sketch
                            .save(&mut bytes)
                            .expect("in-memory checkpoint write cannot fail");
                        (bytes, sketch.inserted_updates() + sketch.skipped_updates())
                    })
                    .collect();
                assert_eq!(boot.len(), opts.shards, "recovery shard count mismatch");
                let replies: Vec<(usize, AscsSketch)> =
                    state.shard_sketches.into_iter().enumerate().collect();
                let initial = snapshot_from(&config, state.epoch, &replies);
                (state.epoch, state.ctx, state.emitted_updates, boot, initial)
            }
            None => {
                let prototype = prototype_sketch(&config, hyper.as_ref());
                let mut checkpoint = Vec::new();
                prototype
                    .save(&mut checkpoint)
                    .expect("in-memory checkpoint write cannot fail");
                let initial = Snapshot {
                    epoch: 0,
                    merged: prototype.sketch().clone(),
                    top: Vec::new(),
                    inserted: 0,
                    skipped: 0,
                    num_pairs: config.num_pairs(),
                    indexer: PairIndexer::new(config.dim),
                };
                let ctx = StreamContext::new(config.dim, config.update_mode, config.estimand);
                (0, ctx, 0, vec![(checkpoint, 0); opts.shards], initial)
            }
        };
        let shared = Arc::new(ServeShared {
            published: Mutex::new(Arc::new(initial)),
            ingest_epoch: AtomicU64::new(t),
            recovering: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            torn_checkpoints: AtomicU64::new(0),
            failed_shards: AtomicU64::new(0),
        });
        let (events_tx, events_rx) = mpsc::channel();
        let mut workers = Vec::with_capacity(opts.shards);
        let mut contexts = Vec::with_capacity(opts.shards);
        for (shard, (checkpoint, checkpoint_updates)) in boot.into_iter().enumerate() {
            let worker = Arc::new(WorkerShared {
                queue: ShardQueue::new(opts.queue_capacity),
                recovery: Mutex::new(RecoveryState {
                    checkpoint,
                    checkpoint_updates,
                    replay: Vec::new(),
                    applied_updates: 0,
                }),
                failed: AtomicBool::new(false),
                restarts: AtomicU64::new(0),
            });
            let ctx = WorkerContext {
                shard,
                shared: worker.clone(),
                stats: shared.clone(),
                injector: injector.clone(),
                checkpoint_interval: opts.checkpoint_interval,
            };
            spawn_worker(ctx.clone(), events_tx.clone(), false);
            workers.push(worker);
            contexts.push(ctx);
        }
        let supervisor = spawn_supervisor(contexts, events_tx, events_rx, opts.max_restarts);
        Self {
            ctx: stream_ctx,
            t,
            router_salt: splitmix64(config.seed ^ ROUTER_SALT),
            shared,
            workers,
            supervisor: Some(supervisor),
            scratch: vec![Vec::new(); opts.shards],
            quarantined_samples: 0,
            overload_rejections: 0,
            ingest_timeouts: 0,
            emitted_updates,
            backoff_rng: splitmix64(config.seed ^ JITTER_SALT),
            shut_down: false,
            store,
            recovery_report,
            crash_simulated: false,
            config,
            opts,
        }
    }

    /// Offers one sample. On success the sample's pair updates are routed
    /// into the shard queues (one batch per shard, FIFO per shard) and the
    /// stream time advances; the returned count is the number of updates
    /// emitted.
    ///
    /// # Errors
    /// * [`IngestError::NonFinite`] — the sample carries NaN/±inf and was
    ///   quarantined; nothing else changed.
    /// * [`IngestError::Overloaded`] — some shard queue is full; nothing
    ///   changed, retry later (or use
    ///   [`ServingEstimator::ingest_blocking`]). The check is
    ///   all-or-nothing *before* any push, so a rejected sample is never
    ///   partially enqueued.
    /// * [`IngestError::ShardFailed`] — a shard exhausted its restart
    ///   budget; this instance no longer accepts ingest.
    ///
    /// # Panics
    /// Panics if the sample's dimensionality disagrees with the
    /// configuration (same contract as the batch estimator).
    pub fn try_ingest(&mut self, sample: &Sample) -> Result<u64, IngestError> {
        if let Some(shard) = self
            .workers
            .iter()
            .position(|w| w.failed.load(Ordering::SeqCst))
        {
            return Err(IngestError::ShardFailed { shard });
        }
        if let Some((index, value)) = sample.first_non_finite() {
            self.quarantined_samples += 1;
            return Err(IngestError::NonFinite { index, value });
        }
        // Conservative all-or-nothing backpressure: `&mut self` makes this
        // the only producer, and consumers only shrink the queues, so room
        // observed here still exists at push time below.
        for (shard, worker) in self.workers.iter().enumerate() {
            if !worker.queue.has_batch_room() {
                self.overload_rejections += 1;
                return Err(IngestError::Overloaded {
                    shard,
                    capacity: self.opts.queue_capacity,
                });
            }
        }
        let t = self.t + 1;
        if let Some(store) = self.store.as_mut() {
            // Write-ahead: the sample is logged before its updates reach
            // any queue, so a crash after this point replays it. A
            // persistence failure must not kill serving — the store
            // retried with backoff, then degraded (`durability_lost` in
            // the health report); in-memory ingestion continues.
            let _ = store.append_sample(t, sample);
        }
        for buf in &mut self.scratch {
            buf.clear();
        }
        let scratch = &mut self.scratch;
        let salt = self.router_salt;
        let shards = self.workers.len();
        let emitted = self.ctx.ingest(sample, |u| {
            scratch[shard_for(u.key, salt, shards)].push(ShardUpdate {
                key: u.key,
                value: u.value,
                t,
            });
        });
        self.t = t;
        self.shared.ingest_epoch.store(t, Ordering::SeqCst);
        for (worker, buf) in self.workers.iter().zip(self.scratch.iter_mut()) {
            if !buf.is_empty() {
                worker.queue.push(Envelope::Batch(std::mem::take(buf)));
            }
        }
        self.emitted_updates += emitted;
        if self.store.as_ref().is_some_and(|s| s.should_checkpoint(t)) {
            // Cadence-driven durable checkpoint; a failure is counted by
            // the store and retried at the next cadence boundary.
            let _ = self.persist_checkpoint();
        }
        Ok(emitted)
    }

    /// [`ServingEstimator::try_ingest`] that waits out
    /// [`IngestError::Overloaded`] with bounded exponential backoff — a
    /// few yields first (the common case: a worker is one batch away from
    /// draining), then jittered sleeps doubling from a 20 µs base up to a
    /// 2.5 ms cap ([`jittered_backoff`]) — instead of busy-spinning. The
    /// jitter stream is seeded per instance from the configured seed, so
    /// concurrent blocked ingesters with different seeds don't retry in
    /// lockstep while each sequence stays deterministic. Gives up after
    /// `timeout` with [`IngestError::Timeout`]; every retry still counts
    /// an overload rejection.
    ///
    /// # Errors
    /// Same as [`ServingEstimator::try_ingest`] with `Overloaded`
    /// replaced by [`IngestError::Timeout`].
    pub fn ingest_with_deadline(
        &mut self,
        sample: &Sample,
        timeout: Duration,
    ) -> Result<u64, IngestError> {
        const YIELDS: u32 = 16;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.try_ingest(sample) {
                Err(IngestError::Overloaded { .. }) => {
                    let waited = started.elapsed();
                    if waited >= timeout {
                        self.ingest_timeouts += 1;
                        return Err(IngestError::Timeout { waited });
                    }
                    if attempt < YIELDS {
                        std::thread::yield_now();
                    } else {
                        let delay = jittered_backoff(attempt - YIELDS, &mut self.backoff_rng)
                            .min(timeout.saturating_sub(waited));
                        std::thread::sleep(delay);
                    }
                    attempt = attempt.saturating_add(1);
                }
                other => return other,
            }
        }
    }

    /// [`ServingEstimator::ingest_with_deadline`] at the configured
    /// [`ServeOptions::ingest_timeout`] — convenience for bulk loads.
    ///
    /// # Errors
    /// Same as [`ServingEstimator::ingest_with_deadline`].
    pub fn ingest_blocking(&mut self, sample: &Sample) -> Result<u64, IngestError> {
        self.ingest_with_deadline(sample, self.opts.ingest_timeout)
    }

    /// Builds and publishes a fresh snapshot at the current ingest epoch.
    ///
    /// A `Collect` envelope is enqueued behind every pending batch, so
    /// each worker replies with a clone of its sketch reflecting *exactly*
    /// the samples `1..=epoch` — the barrier rides the same FIFO as the
    /// data. Replies are merged in shard order (bit-identical to
    /// [`ShardedAscs::merged_sketch`]) and swapped in atomically; readers
    /// keep the previous snapshot until then. Blocks until every worker
    /// replies — through a recovery if one is in progress (that wait *is*
    /// the recovery-to-fresh-snapshot time the bench reports).
    ///
    /// # Errors
    /// [`ServeError::ShardFailed`] if a shard has been abandoned,
    /// [`ServeError::SnapshotTimeout`] if the barrier exceeds 60 s.
    pub fn refresh_snapshot(&mut self) -> Result<Arc<Snapshot>, ServeError> {
        let epoch = self.t;
        let replies = self.collect_sketches()?;
        let snapshot = Arc::new(snapshot_from(&self.config, epoch, &replies));
        *lock(&self.shared.published) = snapshot.clone();
        Ok(snapshot)
    }

    /// Runs the collect barrier: a `Collect` envelope behind every pending
    /// batch, replies gathered and sorted in shard order. Shared by
    /// snapshot publication and durable checkpointing — both need every
    /// shard's sketch at exactly the current ingest epoch.
    fn collect_sketches(&mut self) -> Result<Vec<(usize, AscsSketch)>, ServeError> {
        let (tx, rx) = mpsc::channel();
        for (shard, worker) in self.workers.iter().enumerate() {
            if worker.failed.load(Ordering::SeqCst) {
                return Err(ServeError::ShardFailed { shard });
            }
            worker.queue.push(Envelope::Collect { reply: tx.clone() });
        }
        drop(tx);
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut replies: Vec<(usize, AscsSketch)> = Vec::with_capacity(self.workers.len());
        while replies.len() < self.workers.len() {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(reply) => replies.push(reply),
                Err(mpsc::RecvTimeoutError::Timeout)
                | Err(mpsc::RecvTimeoutError::Disconnected) => {
                    if let Some(shard) = self
                        .workers
                        .iter()
                        .position(|w| w.failed.load(Ordering::SeqCst))
                    {
                        return Err(ServeError::ShardFailed { shard });
                    }
                    if Instant::now() >= deadline {
                        return Err(ServeError::SnapshotTimeout);
                    }
                }
            }
        }
        replies.sort_by_key(|&(shard, _)| shard);
        Ok(replies)
    }

    /// Writes a durable checkpoint generation at the current ingest epoch:
    /// collect barrier (so every shard sketch reflects exactly the samples
    /// `1..=epoch`), per-shard files through the atomic commit protocol,
    /// manifest last. On success the WAL tail the generation covers
    /// becomes collectable and a lost durability flag is cleared. Returns
    /// the epoch persisted.
    ///
    /// # Errors
    /// [`DurabilityError`] when the filesystem rejects the generation even
    /// after retries (the failure is also counted in the health report),
    /// or when the collect barrier fails ([`DurabilityError::Collect`]).
    ///
    /// # Panics
    /// Panics when this instance was not launched durable.
    pub fn persist_checkpoint(&mut self) -> Result<u64, DurabilityError> {
        assert!(
            self.store.is_some(),
            "persist_checkpoint requires a durable launch"
        );
        let epoch = self.t;
        let replies = self.collect_sketches().map_err(DurabilityError::Collect)?;
        let sketches: Vec<AscsSketch> = replies.into_iter().map(|(_, sketch)| sketch).collect();
        let store = self.store.as_mut().expect("checked above");
        store.persist_checkpoint(
            epoch,
            &self.ctx,
            &sketches,
            self.config.seed,
            self.emitted_updates,
        )?;
        Ok(epoch)
    }

    /// What recovery found when this instance was launched durable:
    /// `None` for in-memory launches.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery_report.as_ref()
    }

    /// Durability-side health: the degraded flag, last durable epoch and
    /// persistence counters ([`DurabilityHealth::disabled`] for in-memory
    /// launches).
    pub fn durability_health(&self) -> DurabilityHealth {
        self.store
            .as_ref()
            .map_or_else(DurabilityHealth::disabled, |s| s.health())
    }

    /// The full typed health report: per-shard restart counts, abandoned
    /// shards, quarantine and torn-checkpoint counters, and the
    /// durability flags.
    pub fn health(&self) -> ServingHealth {
        let shard_restarts: Vec<u64> = self
            .workers
            .iter()
            .map(|w| w.restarts.load(Ordering::SeqCst))
            .collect();
        let failed_shards: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.failed.load(Ordering::SeqCst))
            .map(|(shard, _)| shard)
            .collect();
        let durability = self.durability_health();
        let recovering_workers = self.shared.recovering.load(Ordering::SeqCst);
        let degraded =
            recovering_workers > 0 || !failed_shards.is_empty() || durability.durability_lost;
        ServingHealth {
            shards: self.workers.len(),
            shard_restarts,
            failed_shards,
            worker_panics: self.shared.panics.load(Ordering::SeqCst),
            torn_checkpoints: self.shared.torn_checkpoints.load(Ordering::SeqCst),
            quarantined_samples: self.quarantined_samples,
            overload_rejections: self.overload_rejections,
            ingest_timeouts: self.ingest_timeouts,
            recovering_workers,
            degraded,
            ingest_epoch: self.t,
            published_epoch: lock(&self.shared.published).epoch,
            durability,
        }
    }

    /// Tears the instance down *as if the process had been killed*: no
    /// final WAL sync, no final checkpoint — the disk keeps exactly what
    /// the durability policy had made durable mid-stream. The worker
    /// threads still join (they hold no durable state), so the call is
    /// safe to follow with an immediate [`ServingEstimator::launch_durable`]
    /// over the same directory; the in-process recovery assertions in
    /// `serve_bench` and the tests are built on this.
    pub fn simulate_crash(mut self) {
        self.crash_simulated = true;
        self.shutdown_inner();
    }

    /// A cloneable reader handle over the published snapshots.
    pub fn snapshot_reader(&self) -> SnapshotReader {
        SnapshotReader {
            shared: self.shared.clone(),
        }
    }

    /// Samples accepted so far (the current ingest epoch).
    pub fn processed_samples(&self) -> u64 {
        self.t
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The configuration this instance serves.
    pub fn config(&self) -> &AscsConfig {
        &self.config
    }

    /// The options this instance was launched with.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// A copy of every serving counter.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            ingested_samples: self.t,
            emitted_updates: self.emitted_updates,
            quarantined_samples: self.quarantined_samples,
            overload_rejections: self.overload_rejections,
            ingest_timeouts: self.ingest_timeouts,
            worker_panics: self.shared.panics.load(Ordering::SeqCst),
            worker_restarts: self.shared.restarts.load(Ordering::SeqCst),
            torn_checkpoints: self.shared.torn_checkpoints.load(Ordering::SeqCst),
            recovering_workers: self.shared.recovering.load(Ordering::SeqCst),
            failed_shards: self.shared.failed_shards.load(Ordering::SeqCst),
            published_epoch: lock(&self.shared.published).epoch,
        }
    }

    /// Stops every worker, joins the supervision tree and returns the
    /// final counters. Dropping the instance performs the same shutdown
    /// implicitly.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        if !self.crash_simulated {
            if let Some(store) = self.store.as_mut() {
                // Make the WAL tail durable on a clean shutdown so a
                // relaunch resumes at exactly the last accepted sample,
                // whatever the fsync policy deferred.
                let _ = store.sync_wal();
            }
        }
        for worker in &self.workers {
            // A failed shard has no consumer; the envelope is harmless.
            worker.queue.push(Envelope::Shutdown);
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

/// Merges worker replies exactly like [`ShardedAscs`]: tables fold in
/// shard order, and the top list is the shard-ordered union of tracker
/// keys re-scored against the merged table. A free function so the
/// durable launch path can publish the recovered state before the
/// estimator exists.
fn snapshot_from(config: &AscsConfig, epoch: u64, replies: &[(usize, AscsSketch)]) -> Snapshot {
    let mut merged = replies[0].1.sketch().clone();
    for (_, worker) in &replies[1..] {
        merged.merge(worker.sketch());
    }
    let absolute = replies[0].1.absolute_gate();
    let capacity = replies[0].1.top_k_capacity();
    let mut top: Vec<(u64, f64)> = Vec::new();
    for (_, worker) in replies {
        for (key, _) in worker.top_pairs() {
            let est = merged.estimate(key);
            top.push((key, if absolute { est.abs() } else { est }));
        }
    }
    top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(capacity);
    let inserted = replies.iter().map(|(_, w)| w.inserted_updates()).sum();
    let skipped = replies.iter().map(|(_, w)| w.skipped_updates()).sum();
    Snapshot {
        epoch,
        merged,
        top,
        inserted,
        skipped,
        num_pairs: config.num_pairs(),
        indexer: PairIndexer::new(config.dim),
    }
}

impl Drop for ServingEstimator {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Time-aware reads over published [`Snapshot`]s, by count-sketch
/// linearity: a snapshot's merged table is the cumulative `1/T`-scaled
/// update sum at its epoch, so the table of any epoch interval is the
/// *difference* of two retained snapshots
/// ([`CountSketch::merge_scaled`] with factor `−1`) — no worker
/// cooperation, no second ingest path.
///
/// The ring retains the last `segments` snapshots observed at epochs
/// divisible by `segment_len` (the block boundaries of the equivalent
/// [`crate::timeaware::WindowedSketch`] ring) plus the newest snapshot.
/// Feed it every snapshot the serving loop publishes (boundary-epoch
/// snapshots matter; the rest just advance the head):
///
/// * [`WindowedSnapshotRing::windowed_view`] — the sliding-window table
///   `cum(e) − cum(window start − 1)` with the exact mean normaliser.
/// * [`WindowedSnapshotRing::decayed_view`] — a block-granular EWMA: each
///   retained inter-boundary segment folds in with weight
///   `γ^(epoch − segment end)`, normalised by the matching block weights.
pub struct WindowedSnapshotRing {
    segment_len: u64,
    segments: usize,
    total_samples: u64,
    boundaries: VecDeque<Arc<Snapshot>>,
    current: Option<Arc<Snapshot>>,
}

impl WindowedSnapshotRing {
    /// A ring with window geometry `segments × segment_len` over a stream
    /// of `total_samples` (the `T` the serving sketches scale updates by).
    ///
    /// # Panics
    /// Panics if `segment_len`, `segments` or `total_samples` is zero.
    pub fn new(segment_len: u64, segments: usize, total_samples: u64) -> Self {
        assert!(segment_len >= 1, "window segments must cover ≥ 1 sample");
        assert!(segments >= 1, "window ring needs ≥ 1 segment");
        assert!(total_samples >= 1, "stream length must be ≥ 1");
        Self {
            segment_len,
            segments,
            total_samples,
            boundaries: VecDeque::new(),
            current: None,
        }
    }

    /// Samples per window segment (`L`).
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Window segments retained (`S`).
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Epoch of the newest observed snapshot (0 before any).
    pub fn epoch(&self) -> u64 {
        self.current.as_ref().map_or(0, |s| s.epoch)
    }

    /// Boundary snapshots currently retained.
    pub fn retained_boundaries(&self) -> usize {
        self.boundaries.len()
    }

    /// Offers a published snapshot to the ring. Snapshots at or behind the
    /// current head epoch are ignored (returns `false`); a snapshot on a
    /// block boundary is retained as a window base until it expires.
    pub fn observe(&mut self, snapshot: Arc<Snapshot>) -> bool {
        if self
            .current
            .as_ref()
            .is_some_and(|c| snapshot.epoch <= c.epoch)
        {
            return false;
        }
        if snapshot.epoch.is_multiple_of(self.segment_len) {
            self.boundaries.push_back(snapshot.clone());
            // The window base at a boundary epoch `b·L` is `(b−S)·L` — the
            // (S+1)-th most recent boundary — so keep S+1 of them.
            while self.boundaries.len() > self.segments + 1 {
                self.boundaries.pop_front();
            }
        }
        self.current = Some(snapshot);
        true
    }

    /// The retained boundary the window differences against: the oldest
    /// one at or after the ideal window base `start − 1` (`None` when the
    /// window still covers the whole prefix, or when every usable
    /// boundary was skipped by the publisher — both fall back to the
    /// cumulative table).
    fn base_boundary(&self, epoch: u64) -> Option<&Arc<Snapshot>> {
        let (start, _) = window_span(epoch, self.segment_len, self.segments);
        if start <= 1 {
            return None;
        }
        self.boundaries
            .iter()
            .find(|b| b.epoch >= start - 1 && b.epoch < epoch)
    }

    /// Materialises the sliding-window read at the newest observed epoch:
    /// the head table minus the base-boundary table. `None` before any
    /// snapshot. The view names the exact epoch interval it covers —
    /// `(base, epoch]` — so a publisher that skipped a boundary yields a
    /// shorter (never wrong) window.
    pub fn windowed_view(&self) -> Option<TimeAwareSnapshotView> {
        let current = self.current.as_ref()?;
        let (sketch, base_epoch) = match self.base_boundary(current.epoch) {
            Some(base) => {
                let mut diff = current.merged.clone();
                diff.merge_scaled(&base.merged, -1.0);
                (diff, base.epoch)
            }
            None => (current.merged.clone(), 0),
        };
        // Bit-cleanliness: the diff of two identical prefixes can leave
        // `-0.0` in untouched buckets; normalise is not needed — count
        // sketch reads treat -0.0 and 0.0 identically through sums.
        let span = current.epoch - base_epoch;
        let weight = span as f64 / self.total_samples as f64;
        Some(TimeAwareSnapshotView {
            sketch,
            epoch: current.epoch,
            base_epoch,
            weight,
            total_samples: self.total_samples,
            indexer: current.indexer,
        })
    }

    /// Materialises a block-granular exponentially decayed read at the
    /// newest observed epoch: every retained inter-boundary segment folds
    /// in with weight `γ^(epoch − segment end)` (the prefix before the
    /// oldest retained boundary counts as one segment). `None` before any
    /// snapshot.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and strictly inside `(0, 1)`.
    pub fn decayed_view(&self, gamma: f64) -> Option<TimeAwareSnapshotView> {
        assert!(
            gamma.is_finite() && gamma > 0.0 && gamma < 1.0,
            "decay factor must be in (0, 1), got {gamma}"
        );
        let current = self.current.as_ref()?;
        let epoch = current.epoch;
        let pow = |exp: u64| {
            if exp > i32::MAX as u64 {
                0.0
            } else {
                gamma.powi(exp as i32)
            }
        };
        // The retained timeline, oldest first, ending at the head.
        let mut timeline: Vec<&Arc<Snapshot>> =
            self.boundaries.iter().filter(|b| b.epoch < epoch).collect();
        timeline.push(current);
        let mut sketch = CountSketch::new(
            current.merged.rows(),
            current.merged.range(),
            current.merged.seed(),
        );
        let mut weight = 0.0f64;
        // Head segment: the whole prefix up to the oldest retained point.
        let first = timeline[0];
        if first.epoch > 0 {
            let w = pow(epoch - first.epoch);
            sketch.merge_scaled(&first.merged, w);
            weight += w * first.epoch as f64;
        }
        // Inter-boundary segments: cum(end) − cum(start), weighted by the
        // segment-end decay.
        for pair in timeline.windows(2) {
            let (seg_start, seg_end) = (pair[0], pair[1]);
            let w = pow(epoch - seg_end.epoch);
            sketch.merge_scaled(&seg_end.merged, w);
            sketch.merge_scaled(&seg_start.merged, -w);
            weight += w * (seg_end.epoch - seg_start.epoch) as f64;
        }
        Some(TimeAwareSnapshotView {
            sketch,
            epoch,
            base_epoch: 0,
            weight: weight / self.total_samples as f64,
            total_samples: self.total_samples,
            indexer: current.indexer,
        })
    }
}

/// An immutable time-aware read materialised by [`WindowedSnapshotRing`]:
/// a derived count-sketch table (window difference or decayed fold) plus
/// the normaliser that turns its `1/T`-scaled sums into mean estimates.
pub struct TimeAwareSnapshotView {
    sketch: CountSketch,
    epoch: u64,
    base_epoch: u64,
    /// Total update weight the table carries, in `1/T`-scaled units: the
    /// windowed span `/ T`, or the block-EWMA weight sum `/ T`.
    weight: f64,
    total_samples: u64,
    indexer: PairIndexer,
}

impl TimeAwareSnapshotView {
    /// Stream epoch of the head snapshot this view was cut at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch of the subtracted base snapshot (0 when the view covers the
    /// whole prefix — windowed warm-up, or any decayed view).
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Samples between the base and head epochs.
    pub fn span(&self) -> u64 {
        self.epoch - self.base_epoch
    }

    /// The stream length `T` the serving sketches scale by.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The derived table (read-only; the consistency tests compare it bit
    /// for bit against a directly maintained time-aware sketch).
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    /// Mean estimate for a linear pair key: the raw `1/T`-scaled read
    /// divided by the view's weight.
    pub fn estimate(&self, key: u64) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.sketch.estimate(key) / self.weight
        }
    }

    /// Mean estimate for the feature pair `(a, b)`.
    pub fn estimate_pair(&self, a: u64, b: u64) -> f64 {
        self.estimate(self.indexer.index(a, b))
    }
}
