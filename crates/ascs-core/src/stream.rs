//! Turning incoming samples into per-pair covariance/correlation updates.
//!
//! Section 4 of the paper describes how the empirical covariance entries are
//! maintained inside a count sketch: at time `t` the update for pair
//! `i = (a, b)` is `X_i^{(t)}`, inserted scaled by `1/T` so the sketch ends
//! up holding (an estimate of) the mean `μ_i`. Two update forms are
//! supported:
//!
//! * **Product** (`X_i = Y_a Y_b`) — the approximation of eq. (2), exact for
//!   centred features and the form that makes sparse data cheap: a sample
//!   with `nz` non-zeros touches only `nz(nz−1)/2` pairs.
//! * **Centered** (`X_i = (Y_a − Ȳ_a)(Y_b − Ȳ_b)`) — the running-mean form
//!   of Section 4 with the negligible "adjustment" term dropped, exactly as
//!   the paper's implementation does.
//!
//! For the correlation estimand each update is additionally divided by the
//! current running standard deviations `σ̂_a σ̂_b`, implementing the left
//! hand side of eq. (2).

use crate::config::{EstimandKind, UpdateMode};
use crate::pair::PairIndexer;
use ascs_count_sketch::codec::{self, CodecError};
use ascs_numerics::RunningMoments;
use serde::{Deserialize, Serialize};

/// One observed sample `Y^{(t)} ∈ R^d`, either dense or sparse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sample {
    /// Dense representation; the vector length is the dimensionality.
    Dense(Vec<f64>),
    /// Sparse representation: explicit dimensionality plus `(index, value)`
    /// entries for the non-zero coordinates.
    Sparse {
        /// Dimensionality `d`.
        dim: u64,
        /// Non-zero coordinates as `(feature index, value)` pairs.
        entries: Vec<(u32, f64)>,
    },
}

impl Sample {
    /// Builds a dense sample.
    pub fn dense(values: Vec<f64>) -> Self {
        Self::Dense(values)
    }

    /// Builds a sparse sample; entries with value exactly zero are dropped.
    pub fn sparse(dim: u64, mut entries: Vec<(u32, f64)>) -> Self {
        entries.retain(|&(_, v)| v != 0.0);
        Self::Sparse { dim, entries }
    }

    /// Dimensionality of the sample.
    pub fn dim(&self) -> u64 {
        match self {
            Self::Dense(v) => v.len() as u64,
            Self::Sparse { dim, .. } => *dim,
        }
    }

    /// Number of structurally non-zero coordinates.
    pub fn nonzero_count(&self) -> usize {
        match self {
            Self::Dense(v) => v.iter().filter(|&&x| x != 0.0).count(),
            Self::Sparse { entries, .. } => entries.len(),
        }
    }

    /// Iterates over the non-zero coordinates as `(index, value)`.
    pub fn nonzeros(&self) -> Vec<(u64, f64)> {
        match self {
            Self::Dense(v) => v
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(i, &x)| (i as u64, x))
                .collect(),
            Self::Sparse { entries, .. } => {
                entries.iter().map(|&(i, x)| (u64::from(i), x)).collect()
            }
        }
    }

    /// The first non-finite coordinate of the sample, as
    /// `(feature index, offending value)`, or `None` when every coordinate
    /// is finite. Ingest boundaries use this to quarantine poisoned samples
    /// *before* any state is touched: a single NaN update would otherwise
    /// corrupt every sketch bucket its pairs hash into. Note that
    /// [`Sample::sparse`] retains NaN entries (NaN `!= 0.0`), so sparse
    /// samples are screened like dense ones.
    pub fn first_non_finite(&self) -> Option<(u64, f64)> {
        match self {
            Self::Dense(v) => v
                .iter()
                .enumerate()
                .find(|(_, x)| !x.is_finite())
                .map(|(i, &x)| (i as u64, x)),
            Self::Sparse { entries, .. } => entries
                .iter()
                .find(|&&(_, x)| !x.is_finite())
                .map(|&(i, x)| (u64::from(i), x)),
        }
    }

    /// Value at coordinate `i` (zero when absent).
    pub fn value(&self, i: u64) -> f64 {
        match self {
            Self::Dense(v) => v.get(i as usize).copied().unwrap_or(0.0),
            Self::Sparse { entries, .. } => entries
                .iter()
                .find(|&&(j, _)| u64::from(j) == i)
                .map(|&(_, x)| x)
                .unwrap_or(0.0),
        }
    }
}

/// One per-pair update emitted by the stream context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairUpdate {
    /// Linear pair index (the sketch item identifier).
    pub key: u64,
    /// First feature of the pair (`a < b`).
    pub a: u64,
    /// Second feature of the pair.
    pub b: u64,
    /// The update value `X_i^{(t)}` (already normalised for correlation if
    /// the estimand asks for it, **not** yet scaled by `1/T` — the sketch
    /// layer owns that scaling).
    pub value: f64,
}

/// Streaming context: feature statistics plus the sample→updates expansion.
#[derive(Debug, Clone)]
pub struct StreamContext {
    indexer: PairIndexer,
    update_mode: UpdateMode,
    estimand: EstimandKind,
    features: Vec<RunningMoments>,
    samples_seen: u64,
}

impl StreamContext {
    /// Creates a context for `dim`-dimensional samples.
    pub fn new(dim: u64, update_mode: UpdateMode, estimand: EstimandKind) -> Self {
        assert!(dim >= 2, "need at least two features");
        assert!(
            dim <= 50_000_000,
            "per-feature statistics for dim > 5·10^7 would not fit in memory"
        );
        Self {
            indexer: PairIndexer::new(dim),
            update_mode,
            estimand,
            features: vec![RunningMoments::new(); dim as usize],
            samples_seen: 0,
        }
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> u64 {
        self.indexer.dim()
    }

    /// Number of samples ingested so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// The pair indexer shared with the sketches.
    pub fn indexer(&self) -> &PairIndexer {
        &self.indexer
    }

    /// Running mean of feature `i`.
    pub fn feature_mean(&self, i: u64) -> f64 {
        self.features[i as usize].mean()
    }

    /// Running (population) standard deviation of feature `i`.
    pub fn feature_std(&self, i: u64) -> f64 {
        self.features[i as usize].population_std()
    }

    /// Ratio |mean| / std per feature, the quantity of Figure 2. Features
    /// with zero variance report `None`.
    pub fn mean_to_std_ratios(&self) -> Vec<Option<f64>> {
        self.features
            .iter()
            .map(|m| {
                let std = m.population_std();
                if std > 0.0 {
                    Some(m.mean().abs() / std)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Ingests one sample: updates the per-feature statistics, then calls
    /// `emit` once per non-trivial pair update. Returns the number of
    /// updates emitted.
    pub fn ingest(&mut self, sample: &Sample, mut emit: impl FnMut(PairUpdate)) -> u64 {
        assert_eq!(
            sample.dim(),
            self.dim(),
            "sample dimensionality does not match the stream context"
        );
        self.samples_seen += 1;
        self.update_feature_stats(sample);

        match self.update_mode {
            UpdateMode::Product => self.emit_product_updates(sample, &mut emit),
            UpdateMode::Centered => self.emit_centered_updates(sample, &mut emit),
        }
    }

    /// Convenience wrapper collecting the updates into a vector.
    pub fn pair_updates(&mut self, sample: &Sample) -> Vec<PairUpdate> {
        let mut out = Vec::new();
        self.ingest(sample, |u| out.push(u));
        out
    }

    fn update_feature_stats(&mut self, sample: &Sample) {
        match sample {
            Sample::Dense(values) => {
                for (i, &v) in values.iter().enumerate() {
                    self.features[i].push(v);
                }
            }
            Sample::Sparse { entries, .. } => {
                // Sparse features are implicitly zero everywhere else; every
                // feature still receives one observation per sample so that
                // the running means/stds (and hence the correlation
                // normalisation) stay correct.
                let mut sorted: Vec<(usize, f64)> =
                    entries.iter().map(|&(i, v)| (i as usize, v)).collect();
                sorted.sort_unstable_by_key(|&(i, _)| i);
                let mut next = 0usize;
                for (idx, feature) in self.features.iter_mut().enumerate() {
                    if next < sorted.len() && sorted[next].0 == idx {
                        feature.push(sorted[next].1);
                        next += 1;
                    } else {
                        feature.push(0.0);
                    }
                }
            }
        }
    }

    /// Number of samples the running standard deviations must have seen
    /// before correlation-normalised updates are emitted. With fewer
    /// observations the std estimates are so noisy that a single
    /// `y_a y_b / (σ̂_a σ̂_b)` update can dwarf the rest of the stream and
    /// permanently corrupt the sketch; skipping the first few samples costs
    /// a bias of only `warmup / T` on the final estimates.
    pub const CORRELATION_WARMUP: u64 = 16;

    fn scale_for(&self, a: u64, b: u64) -> Option<f64> {
        match self.estimand {
            EstimandKind::Covariance => Some(1.0),
            EstimandKind::Correlation => {
                if self.samples_seen <= Self::CORRELATION_WARMUP {
                    return None;
                }
                let sa = self.feature_std(a);
                let sb = self.feature_std(b);
                if sa > 0.0 && sb > 0.0 {
                    Some(1.0 / (sa * sb))
                } else {
                    None
                }
            }
        }
    }

    fn emit_product_updates(&self, sample: &Sample, emit: &mut impl FnMut(PairUpdate)) -> u64 {
        let nz = sample.nonzeros();
        let mut emitted = 0;
        for i in 0..nz.len() {
            for j in (i + 1)..nz.len() {
                let (fa, va) = nz[i];
                let (fb, vb) = nz[j];
                let (a, b, va, vb) = if fa < fb {
                    (fa, fb, va, vb)
                } else {
                    (fb, fa, vb, va)
                };
                let Some(scale) = self.scale_for(a, b) else {
                    continue;
                };
                let value = va * vb * scale;
                if value == 0.0 {
                    continue;
                }
                emit(PairUpdate {
                    key: self.indexer.index(a, b),
                    a,
                    b,
                    value,
                });
                emitted += 1;
            }
        }
        emitted
    }

    fn emit_centered_updates(&self, sample: &Sample, emit: &mut impl FnMut(PairUpdate)) -> u64 {
        let d = self.dim();
        let mut emitted = 0;
        // Centered mode touches every pair; it is intended for moderate d
        // (the paper's rigorous-evaluation datasets use d = 1000).
        let centered: Vec<f64> = (0..d)
            .map(|i| sample.value(i) - self.feature_mean(i))
            .collect();
        for a in 0..d {
            let ca = centered[a as usize];
            if ca == 0.0 {
                continue;
            }
            for b in (a + 1)..d {
                let cb = centered[b as usize];
                if cb == 0.0 {
                    continue;
                }
                let Some(scale) = self.scale_for(a, b) else {
                    continue;
                };
                emit(PairUpdate {
                    key: self.indexer.index(a, b),
                    a,
                    b,
                    value: ca * cb * scale,
                });
                emitted += 1;
            }
        }
        emitted
    }

    /// Serializes the context: dimensionality, update mode, estimand,
    /// sample counter, then every feature's running-moment accumulator as
    /// raw `(count, mean, m2, min, max)` parts so a restored context
    /// resumes centering/normalisation bit-identically.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_STREAM_CONTEXT)?;
        codec::write_u64(w, self.dim())?;
        codec::write_u8(w, self.update_mode as u8)?;
        codec::write_u8(w, self.estimand as u8)?;
        codec::write_u64(w, self.samples_seen)?;
        for feature in &self.features {
            let (count, mean, m2, min, max) = feature.to_raw_parts();
            codec::write_u64(w, count)?;
            codec::write_f64(w, mean)?;
            codec::write_f64(w, m2)?;
            codec::write_f64(w, min)?;
            codec::write_f64(w, max)?;
        }
        Ok(())
    }

    /// Restores a context saved by [`StreamContext::save`], enforcing the
    /// same dimensionality bounds as [`StreamContext::new`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_STREAM_CONTEXT)?;
        let dim = codec::read_u64(r)?;
        if !(2..=50_000_000).contains(&dim) {
            return Err(CodecError::Corrupt("stream dimensionality out of range"));
        }
        let update_mode = match codec::read_u8(r)? {
            0 => UpdateMode::Product,
            1 => UpdateMode::Centered,
            _ => return Err(CodecError::Corrupt("unknown update mode")),
        };
        let estimand = match codec::read_u8(r)? {
            0 => EstimandKind::Covariance,
            1 => EstimandKind::Correlation,
            _ => return Err(CodecError::Corrupt("unknown estimand kind")),
        };
        let samples_seen = codec::read_u64(r)?;
        let mut features = Vec::with_capacity((dim as usize).min(1 << 20));
        for _ in 0..dim {
            let count = codec::read_u64(r)?;
            let mean = codec::read_f64(r)?;
            let m2 = codec::read_f64(r)?;
            let min = codec::read_f64(r)?;
            let max = codec::read_f64(r)?;
            features.push(RunningMoments::from_raw_parts(count, mean, m2, min, max));
        }
        Ok(Self {
            indexer: PairIndexer::new(dim),
            update_mode,
            estimand,
            features,
            samples_seen,
        })
    }

    /// Merges another context's feature statistics into `self` using
    /// Chan's parallel-moments combination. Exact in real arithmetic;
    /// merged moments are *not* bit-identical to sequential ingestion, so
    /// cross-process merge is bit-exact for the product/covariance path
    /// (which never reads them) and approximate for centered/correlation
    /// scaling.
    ///
    /// # Panics
    /// Panics if the contexts disagree on dimensionality, update mode or
    /// estimand — the estimator-level merge validates compatibility first.
    pub fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dim(), other.dim(), "stream context dim mismatch");
        assert_eq!(
            self.update_mode, other.update_mode,
            "stream context update mode mismatch"
        );
        assert_eq!(
            self.estimand, other.estimand,
            "stream context estimand mismatch"
        );
        for (mine, theirs) in self.features.iter_mut().zip(&other.features) {
            mine.merge(theirs);
        }
        self.samples_seen += other.samples_seen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(v: &[f64]) -> Sample {
        Sample::dense(v.to_vec())
    }

    #[test]
    fn sample_accessors_dense_and_sparse() {
        let d = dense(&[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.nonzero_count(), 2);
        assert_eq!(d.value(3), 2.0);
        assert_eq!(d.value(0), 0.0);

        let s = Sample::sparse(10, vec![(1, 1.0), (5, 0.0), (7, -2.0)]);
        assert_eq!(s.dim(), 10);
        assert_eq!(s.nonzero_count(), 2); // the explicit zero is dropped
        assert_eq!(s.value(7), -2.0);
        assert_eq!(s.value(2), 0.0);
        assert_eq!(s.nonzeros(), vec![(1, 1.0), (7, -2.0)]);
    }

    #[test]
    fn first_non_finite_screens_dense_and_sparse_samples() {
        assert_eq!(dense(&[1.0, 2.0, 3.0]).first_non_finite(), None);
        let poisoned = dense(&[1.0, f64::NAN, f64::INFINITY]);
        let (idx, val) = poisoned.first_non_finite().unwrap();
        assert_eq!(idx, 1);
        assert!(val.is_nan());
        // Sparse: NaN entries survive the zero-dropping constructor and are
        // reported with their feature index.
        let sparse = Sample::sparse(10, vec![(2, 1.0), (7, f64::NEG_INFINITY)]);
        assert_eq!(sparse.first_non_finite(), Some((7, f64::NEG_INFINITY)));
        assert_eq!(Sample::sparse(4, vec![(0, 0.5)]).first_non_finite(), None);
    }

    #[test]
    fn product_updates_enumerate_nonzero_pairs_only() {
        let mut ctx = StreamContext::new(5, UpdateMode::Product, EstimandKind::Covariance);
        let updates = ctx.pair_updates(&dense(&[1.0, 0.0, 2.0, 0.0, 3.0]));
        // Non-zero features {0, 2, 4} → 3 pairs.
        assert_eq!(updates.len(), 3);
        let values: Vec<(u64, u64, f64)> = updates.iter().map(|u| (u.a, u.b, u.value)).collect();
        assert!(values.contains(&(0, 2, 2.0)));
        assert!(values.contains(&(0, 4, 3.0)));
        assert!(values.contains(&(2, 4, 6.0)));
    }

    #[test]
    fn product_updates_respect_pair_ordering_regardless_of_entry_order() {
        let mut ctx = StreamContext::new(6, UpdateMode::Product, EstimandKind::Covariance);
        let sample = Sample::sparse(6, vec![(4, 2.0), (1, 3.0)]);
        let updates = ctx.pair_updates(&sample);
        assert_eq!(updates.len(), 1);
        assert_eq!((updates[0].a, updates[0].b), (1, 4));
        assert_eq!(updates[0].value, 6.0);
        assert_eq!(updates[0].key, ctx.indexer().index(1, 4));
    }

    #[test]
    fn correlation_normalisation_divides_by_running_stds() {
        let mut ctx = StreamContext::new(2, UpdateMode::Product, EstimandKind::Correlation);
        // During the warm-up window no correlation updates are emitted even
        // though both features are non-zero.
        for t in 0..StreamContext::CORRELATION_WARMUP {
            let x = if t % 2 == 0 { 1.0 } else { -1.0 };
            let updates = ctx.pair_updates(&dense(&[x, x]));
            assert!(updates.is_empty(), "no updates expected during warm-up");
        }
        // After warm-up the update is the product scaled by the running stds.
        let updates = ctx.pair_updates(&dense(&[1.0, 1.0]));
        assert_eq!(updates.len(), 1);
        let sa = ctx.feature_std(0);
        let sb = ctx.feature_std(1);
        assert!(sa > 0.0 && sb > 0.0);
        assert!((updates[0].value - 1.0 / (sa * sb)).abs() < 1e-12);
    }

    #[test]
    fn centered_updates_subtract_running_means() {
        let mut ctx = StreamContext::new(3, UpdateMode::Centered, EstimandKind::Covariance);
        let _ = ctx.pair_updates(&dense(&[1.0, 2.0, 3.0]));
        let _ = ctx.pair_updates(&dense(&[3.0, 2.0, 1.0]));
        // Means are now [2, 2, 2]. Next sample [4, 2, 0]:
        // centered = [4-?,...] — means update first (they include this
        // sample): new means = [8/3, 2, 4/3]. centered = [4/3, 0, -4/3].
        let updates = ctx.pair_updates(&dense(&[4.0, 2.0, 0.0]));
        // Feature 1 centres to zero → only the (0,2) pair remains.
        assert_eq!(updates.len(), 1);
        assert_eq!((updates[0].a, updates[0].b), (0, 2));
        assert!((updates[0].value - (4.0 / 3.0) * (-4.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn centered_and_product_agree_for_zero_mean_streams() {
        // Symmetric ±1 features have zero running means in the long run, so
        // both modes should produce similar accumulated values.
        let mut prod = StreamContext::new(2, UpdateMode::Product, EstimandKind::Covariance);
        let mut cent = StreamContext::new(2, UpdateMode::Centered, EstimandKind::Covariance);
        let mut sum_p = 0.0;
        let mut sum_c = 0.0;
        for t in 0..200 {
            let x = if t % 2 == 0 { 1.0 } else { -1.0 };
            let sample = dense(&[x, x]);
            for u in prod.pair_updates(&sample) {
                sum_p += u.value;
            }
            for u in cent.pair_updates(&sample) {
                sum_c += u.value;
            }
        }
        // Product mode: every update is +1 → 200. Centered differs only by
        // the shrinking running-mean correction.
        assert!((sum_p - 200.0).abs() < 1e-9);
        assert!((sum_c - sum_p).abs() / sum_p < 0.05, "sum_c = {sum_c}");
    }

    #[test]
    fn feature_statistics_track_sparse_zeros() {
        let mut ctx = StreamContext::new(3, UpdateMode::Product, EstimandKind::Covariance);
        // Feature 2 never appears → its mean must reflect the implicit zeros.
        for _ in 0..10 {
            ctx.ingest(&Sample::sparse(3, vec![(0, 2.0)]), |_| {});
        }
        assert_eq!(ctx.feature_mean(0), 2.0);
        assert_eq!(ctx.feature_mean(2), 0.0);
        assert_eq!(ctx.samples_seen(), 10);
        let ratios = ctx.mean_to_std_ratios();
        assert_eq!(ratios.len(), 3);
        // A constant feature has zero std → no ratio.
        assert!(ratios[0].is_none());
    }

    #[test]
    fn mean_to_std_ratio_reflects_centredness() {
        let mut ctx = StreamContext::new(2, UpdateMode::Product, EstimandKind::Covariance);
        for t in 0..100 {
            let x = if t % 2 == 0 { 1.0 } else { -1.0 }; // zero-mean feature
            let y = if t % 2 == 0 { 10.0 } else { 12.0 }; // mean 11, std 1
            ctx.ingest(&dense(&[x, y]), |_| {});
        }
        let ratios = ctx.mean_to_std_ratios();
        assert!(ratios[0].unwrap() < 0.01);
        assert!(ratios[1].unwrap() > 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn dimension_mismatch_is_rejected() {
        let mut ctx = StreamContext::new(4, UpdateMode::Product, EstimandKind::Covariance);
        ctx.ingest(&dense(&[1.0, 2.0]), |_| {});
    }

    #[test]
    fn ingest_returns_emitted_count() {
        let mut ctx = StreamContext::new(4, UpdateMode::Product, EstimandKind::Covariance);
        let n = ctx.ingest(&dense(&[1.0, 1.0, 1.0, 0.0]), |_| {});
        assert_eq!(n, 3);
    }
}
