//! Mapping between feature pairs and the linear item universe.
//!
//! The paper's problem statement encodes the off-diagonal covariance
//! entries of a `d`-dimensional vector as a flat vector
//! `X ∈ R^p, p = d(d−1)/2` (Section 3). The sketches operate on `u64` item
//! identifiers, so this module provides the bijection between ordered pairs
//! `(a, b)` with `a < b` and indices `0 ≤ i < p`, in the row-major order
//!
//! ```text
//! (0,1), (0,2), …, (0,d−1), (1,2), …, (d−2,d−1)
//! ```
//!
//! The DNA k-mer dataset of the paper has `d = 1.7 × 10^7`, hence
//! `p ≈ 1.4 × 10^14` — comfortably inside `u64` but far outside `u32`, so
//! all pair indices are `u64` and all arithmetic is done in `u128` where
//! overflow is conceivable.

use serde::{Deserialize, Serialize};

/// Number of unique off-diagonal pairs of a `d`-dimensional vector:
/// `p = d(d−1)/2`.
///
/// ```
/// use ascs_core::num_pairs;
/// assert_eq!(num_pairs(0), 0);
/// assert_eq!(num_pairs(1), 0);
/// assert_eq!(num_pairs(4), 6);
/// assert_eq!(num_pairs(17_000_000), 144_499_991_500_000);
/// ```
pub fn num_pairs(d: u64) -> u64 {
    if d < 2 {
        return 0;
    }
    let d = d as u128;
    (d * (d - 1) / 2) as u64
}

/// Maps an ordered pair `(a, b)` with `a < b < d` to its linear index.
///
/// # Panics
/// Panics if `a >= b` or `b >= d`.
pub fn pair_to_index(a: u64, b: u64, d: u64) -> u64 {
    assert!(a < b, "pair_to_index requires a < b (got a={a}, b={b})");
    assert!(b < d, "pair_to_index requires b < d (got b={b}, d={d})");
    let (a128, b128, d128) = (a as u128, b as u128, d as u128);
    // Items before row `a`: sum_{r<a} (d−1−r) = a·d − a(a+1)/2.
    let before = a128 * d128 - a128 * (a128 + 1) / 2;
    (before + (b128 - a128 - 1)) as u64
}

/// Inverse of [`pair_to_index`]: recovers `(a, b)` from the linear index.
///
/// # Panics
/// Panics if `index >= num_pairs(d)`.
pub fn pair_from_index(index: u64, d: u64) -> (u64, u64) {
    let p = num_pairs(d);
    assert!(index < p, "pair index {index} out of range (p = {p})");
    // Solve for the row `a`: the largest a with  a·d − a(a+1)/2 ≤ index.
    // Use the quadratic formula for a first guess, then correct by ±1 to be
    // safe against floating point rounding at large d.
    let idx = index as f64;
    let df = d as f64;
    // a satisfies: a²/2 − a(d − 1/2) + index ≥ 0 boundary.
    let disc = (2.0 * df - 1.0) * (2.0 * df - 1.0) - 8.0 * idx;
    let mut a = ((2.0 * df - 1.0 - disc.max(0.0).sqrt()) / 2.0).floor() as u64;
    a = a.min(d.saturating_sub(2));
    let row_start = |a: u64| -> u64 {
        let (a128, d128) = (a as u128, d as u128);
        (a128 * d128 - a128 * (a128 + 1) / 2) as u64
    };
    // Correct the guess: move down while the row starts after the index,
    // move up while the next row still starts at or before the index.
    while a > 0 && row_start(a) > index {
        a -= 1;
    }
    while a < d - 2 && row_start(a + 1) <= index {
        a += 1;
    }
    let b = a + 1 + (index - row_start(a));
    (a, b)
}

/// A pair codec bound to a fixed dimensionality, convenient when passing a
/// single object around the streaming engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairIndexer {
    dim: u64,
}

impl PairIndexer {
    /// Creates an indexer for `dim`-dimensional samples.
    ///
    /// # Panics
    /// Panics if `dim < 2` — there are no pairs to index.
    pub fn new(dim: u64) -> Self {
        assert!(dim >= 2, "need at least two features to form pairs");
        Self { dim }
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> u64 {
        self.dim
    }

    /// Number of pairs `p = d(d−1)/2`.
    pub fn num_pairs(&self) -> u64 {
        num_pairs(self.dim)
    }

    /// Linear index of pair `(a, b)`; the arguments may be given in either
    /// order but must be distinct.
    ///
    /// # Panics
    /// Panics if `a == b` or either is out of range.
    pub fn index(&self, a: u64, b: u64) -> u64 {
        assert_ne!(a, b, "diagonal entries are not part of the pair universe");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        pair_to_index(lo, hi, self.dim)
    }

    /// Recovers the pair `(a, b)` (with `a < b`) from its linear index.
    pub fn pair(&self, index: u64) -> (u64, u64) {
        pair_from_index(index, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_pairs_small_values() {
        assert_eq!(num_pairs(2), 1);
        assert_eq!(num_pairs(3), 3);
        assert_eq!(num_pairs(5), 10);
        assert_eq!(num_pairs(1000), 499_500);
    }

    #[test]
    fn indexing_is_row_major_for_small_d() {
        let d = 5;
        let expected = [
            ((0, 1), 0),
            ((0, 2), 1),
            ((0, 3), 2),
            ((0, 4), 3),
            ((1, 2), 4),
            ((1, 3), 5),
            ((1, 4), 6),
            ((2, 3), 7),
            ((2, 4), 8),
            ((3, 4), 9),
        ];
        for ((a, b), idx) in expected {
            assert_eq!(pair_to_index(a, b, d), idx, "({a},{b})");
            assert_eq!(pair_from_index(idx, d), (a, b), "index {idx}");
        }
    }

    #[test]
    fn round_trip_is_exhaustive_for_moderate_d() {
        let d = 73;
        let mut seen = vec![false; num_pairs(d) as usize];
        for a in 0..d {
            for b in (a + 1)..d {
                let idx = pair_to_index(a, b, d);
                assert!(!seen[idx as usize], "index {idx} assigned twice");
                seen[idx as usize] = true;
                assert_eq!(pair_from_index(idx, d), (a, b));
            }
        }
        assert!(seen.iter().all(|&s| s), "some indices never produced");
    }

    #[test]
    fn round_trip_at_large_dimension() {
        // DNA k-mer scale: d = 17M, p ≈ 1.44e14.
        let d = 17_000_000u64;
        let p = num_pairs(d);
        for &idx in &[0, 1, p / 3, p / 2, p - 2, p - 1] {
            let (a, b) = pair_from_index(idx, d);
            assert!(a < b && b < d);
            assert_eq!(pair_to_index(a, b, d), idx, "round trip failed at {idx}");
        }
        // Boundary pairs map to boundary indices.
        assert_eq!(pair_to_index(0, 1, d), 0);
        assert_eq!(pair_to_index(d - 2, d - 1, d), p - 1);
    }

    #[test]
    fn indexer_accepts_either_argument_order() {
        let ix = PairIndexer::new(10);
        assert_eq!(ix.index(3, 7), ix.index(7, 3));
        assert_eq!(ix.pair(ix.index(3, 7)), (3, 7));
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn indexer_rejects_diagonal() {
        PairIndexer::new(4).index(2, 2);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn raw_encoder_rejects_unordered() {
        pair_to_index(3, 3, 5);
    }

    #[test]
    #[should_panic(expected = "b < d")]
    fn raw_encoder_rejects_out_of_range() {
        pair_to_index(1, 5, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decoder_rejects_out_of_range_index() {
        pair_from_index(10, 5);
    }

    #[test]
    #[should_panic(expected = "at least two features")]
    fn indexer_needs_two_features() {
        PairIndexer::new(1);
    }

    #[test]
    fn round_trip_is_exhaustive_over_all_small_dims() {
        // Every dimensionality from the smallest legal one up to 40: the
        // codec must be a bijection onto 0..p with row-major order, through
        // both the free functions and the `PairIndexer` wrapper.
        for d in 2..=40u64 {
            let p = num_pairs(d);
            let ix = PairIndexer::new(d);
            assert_eq!(ix.num_pairs(), p);
            let mut expected = 0u64;
            for a in 0..d {
                for b in (a + 1)..d {
                    let idx = pair_to_index(a, b, d);
                    assert_eq!(idx, expected, "row-major order broken at d={d} ({a},{b})");
                    assert_eq!(pair_from_index(idx, d), (a, b));
                    assert_eq!(ix.index(a, b), idx);
                    assert_eq!(ix.index(b, a), idx);
                    assert_eq!(ix.pair(idx), (a, b));
                    expected += 1;
                }
            }
            assert_eq!(expected, p, "codec did not cover the universe at d={d}");
        }
    }

    #[test]
    fn boundary_pairs_round_trip_across_scales() {
        // First pair, last pair, and the row boundaries (where the quadratic
        // initial guess of the decoder is most at risk) for a spread of
        // dimensionalities up to the paper's DNA k-mer scale.
        for &d in &[2u64, 3, 10, 1000, 131_072, 1_000_000, 17_000_000] {
            let p = num_pairs(d);
            assert_eq!(pair_to_index(0, 1, d), 0);
            assert_eq!(pair_from_index(0, d), (0, 1));
            assert_eq!(pair_to_index(d - 2, d - 1, d), p - 1);
            assert_eq!(pair_from_index(p - 1, d), (d - 2, d - 1));
            // Row starts and row ends around a mid row.
            let a = d / 2;
            if a > 0 && a < d - 1 {
                let row_first = pair_to_index(a, a + 1, d);
                let row_last = pair_to_index(a, d - 1, d);
                assert_eq!(pair_from_index(row_first, d), (a, a + 1));
                assert_eq!(pair_from_index(row_last, d), (a, d - 1));
                if row_first > 0 {
                    let (pa, pb) = pair_from_index(row_first - 1, d);
                    assert_eq!((pa, pb), (a - 1, d - 1), "row boundary at d={d}");
                }
            }
        }
    }

    #[test]
    fn num_pairs_matches_dna_kmer_scale_from_paper() {
        // The paper quotes "144 trillion unique entries" for d = 17M.
        let p = num_pairs(17_000_000);
        assert!(p > 144_000_000_000_000 && p < 145_000_000_000_000);
    }
}
