//! End-to-end ingestion benchmarks — the Criterion counterpart of Table 6:
//! time to push a sample stream through vanilla CS vs ASCS vs the ASketch
//! baseline at identical memory.

use ascs_core::{
    AscsConfig, CovarianceEstimator, EstimandKind, Sample, SketchBackend, SketchGeometry,
    UpdateMode,
};
use ascs_datasets::{SimulatedDataset, SimulationSpec, SurrogateDataset, SurrogateSpec};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn config(dim: u64, total: u64) -> AscsConfig {
    AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 4000),
        alpha: 0.01,
        signal_strength: 0.4,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Correlation,
        update_mode: UpdateMode::Product,
        seed: 3,
        top_k_capacity: 200,
    }
}

fn run(backend: SketchBackend, cfg: AscsConfig, samples: &[Sample]) -> u64 {
    let (mut est, _) = CovarianceEstimator::new_or_fallback(cfg, backend);
    for s in samples {
        est.process_sample(s);
    }
    est.processed_samples()
}

fn bench_dense_simulation_ingest(c: &mut Criterion) {
    let dim = 150u64;
    let n = 300usize;
    let dataset = SimulatedDataset::new(SimulationSpec::smoke(dim, 5));
    let samples = dataset.samples(0, n);
    let cfg = config(dim, n as u64);

    let mut group = c.benchmark_group("ingest_dense_simulation");
    group.sample_size(10);
    for (name, backend) in [
        ("vanilla_cs", SketchBackend::VanillaCs),
        ("ascs", SketchBackend::Ascs),
        (
            "asketch",
            SketchBackend::AugmentedSketch {
                filter_capacity: 128,
            },
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &backend,
            |b, &backend| b.iter(|| black_box(run(backend, cfg, &samples))),
        );
    }
    group.finish();
}

fn bench_sparse_surrogate_ingest(c: &mut Criterion) {
    let dataset = SurrogateDataset::new(SurrogateSpec::rcv1().scaled(500, 400));
    let samples = dataset.all_samples();
    let cfg = config(500, samples.len() as u64);

    let mut group = c.benchmark_group("ingest_sparse_rcv1_surrogate");
    group.sample_size(10);
    for (name, backend) in [
        ("vanilla_cs", SketchBackend::VanillaCs),
        ("ascs", SketchBackend::Ascs),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &backend,
            |b, &backend| b.iter(|| black_box(run(backend, cfg, &samples))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_simulation_ingest,
    bench_sparse_surrogate_ingest
);
criterion_main!(benches);
