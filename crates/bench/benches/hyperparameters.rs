//! Benchmarks of the hyperparameter machinery: evaluating the theorem
//! bounds and running the full Algorithm 3 solve. These are cheap (called
//! once per run), but the benchmark documents that cost and guards against
//! accidental blow-ups in the bound evaluation.

use ascs_core::{num_pairs, HyperParameterSolver, TheoryBounds};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn paper_bounds(dim: u64) -> TheoryBounds {
    let p = num_pairs(dim);
    TheoryBounds::new(p, (p / 100).max(16) as usize, 5, 0.005, 1.0, 0.5, 10_000)
}

fn bench_bound_evaluation(c: &mut Criterion) {
    let bounds = paper_bounds(1000);
    c.bench_function("theorem1_bound_eval", |b| {
        let mut t0 = 30u64;
        b.iter(|| {
            t0 = 30 + (t0 + 7) % 5000;
            black_box(bounds.theorem1_miss_bound(black_box(t0), 1e-4))
        })
    });
    c.bench_function("theorem2_bound_eval", |b| {
        let mut theta = 0.01f64;
        b.iter(|| {
            theta = 0.01 + (theta * 1.37) % 0.45;
            black_box(bounds.theorem2_omission_bound(black_box(theta), 1e-4, 500))
        })
    });
    c.bench_function("theorem3_ratio_eval", |b| {
        let mut t = 600u64;
        b.iter(|| {
            t = 600 + (t + 13) % 9000;
            black_box(bounds.theorem3_snr_ratio_lower_bound(black_box(t), 500, 0.2, 0.2))
        })
    });
}

fn bench_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3_solve");
    for &dim in &[1_000u64, 100_000, 10_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let solver = HyperParameterSolver::new(paper_bounds(dim));
            b.iter(|| black_box(solver.solve_or_fallback(1e-4, 0.05, 0.20, 0.1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_evaluation, bench_full_solve);
criterion_main!(benches);
