//! Micro-benchmarks of the sketching substrate: update and point-query
//! throughput of the count sketch as a function of the number of rows `K`,
//! the single-row vs median-of-K retrieval ablation called out in
//! DESIGN.md, and the plan-driven execution paths (hash-free updates and
//! the cache-blocked whole-universe sweep) against their hashing
//! counterparts.

use ascs_count_sketch::{AugmentedSketch, CountMinSketch, CountSketch};
use ascs_sketch_hash::HashFamily;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hashing(c: &mut Criterion) {
    let family = HashFamily::new(5, 1 << 16, 42);
    c.bench_function("hash_family_locate_5_rows", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            let mut acc = 0usize;
            for loc in family.locate(black_box(key)) {
                acc ^= loc.bucket;
            }
            black_box(acc)
        })
    });
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_update");
    for &k in &[1usize, 3, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut cs = CountSketch::new(k, 1 << 16, 7);
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9);
                cs.update(black_box(key), black_box(0.5));
            })
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_estimate");
    for &k in &[1usize, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut cs = CountSketch::new(k, 1 << 16, 9);
            for key in 0..100_000u64 {
                cs.update(key, (key % 13) as f64);
            }
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9);
                black_box(cs.estimate(black_box(key % 100_000)))
            })
        });
    }
    group.finish();
}

fn bench_row_estimate_vs_median(c: &mut Criterion) {
    let mut cs = CountSketch::new(5, 1 << 16, 11);
    for key in 0..100_000u64 {
        cs.update(key, 1.0);
    }
    c.bench_function("single_row_estimate", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            black_box(cs.row_estimate(0, black_box(key % 100_000)))
        })
    });
    c.bench_function("median_of_5_estimate", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            black_box(cs.estimate(black_box(key % 100_000)))
        })
    });
}

fn bench_planned_execution(c: &mut Criterion) {
    let universe = 100_000usize;

    let mut group = c.benchmark_group("planned_vs_hashed_update");
    group.bench_function("update_hashed", |b| {
        let mut cs = CountSketch::new(5, 1 << 16, 7);
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % universe as u64;
            cs.update(black_box(key), black_box(0.5));
        })
    });
    group.bench_function("update_planned", |b| {
        let mut cs = CountSketch::new(5, 1 << 16, 7);
        let plan = cs.build_plan(universe);
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % universe;
            cs.update_planned(&plan, black_box(slot), black_box(0.5));
        })
    });
    group.finish();

    let mut group = c.benchmark_group("planned_vs_hashed_estimate");
    let mut cs = CountSketch::new(5, 1 << 16, 9);
    for key in 0..universe as u64 {
        cs.update(key, (key % 13) as f64);
    }
    let plan = cs.build_plan(universe);
    group.bench_function("estimate_hashed", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % universe as u64;
            black_box(cs.estimate(black_box(key)))
        })
    });
    group.bench_function("estimate_planned", |b| {
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % universe;
            black_box(cs.estimate_planned(&plan, black_box(slot)))
        })
    });
    group.finish();

    // Whole-universe sweeps: p point queries vs one blocked pass. Reported
    // per sweep (each iteration answers `universe` queries).
    let mut group = c.benchmark_group("query_sweep");
    group.sample_size(10);
    group.bench_function("point_query_loop", |b| {
        let mut out: Vec<f64> = Vec::with_capacity(universe);
        b.iter(|| {
            out.clear();
            out.extend((0..universe as u64).map(|key| cs.estimate(key)));
            black_box(out.len())
        })
    });
    group.bench_function("estimate_many", |b| {
        let mut out: Vec<f64> = Vec::with_capacity(universe);
        b.iter(|| {
            cs.estimate_many(&plan, &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_baseline_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_update");
    group.bench_function("count_min", |b| {
        let mut cm = CountMinSketch::new(5, 1 << 16, 3);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            cm.update(black_box(key), 1.0);
        })
    });
    group.bench_function("augmented_sketch", |b| {
        let mut asketch = AugmentedSketch::new(5, 1 << 16, 64, 3);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            asketch.update(black_box(key % 4096), 1.0);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_update,
    bench_estimate,
    bench_row_estimate_vs_median,
    bench_planned_execution,
    bench_baseline_structures
);
criterion_main!(benches);
