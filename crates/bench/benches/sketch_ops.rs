//! Micro-benchmarks of the sketching substrate: update and point-query
//! throughput of the count sketch as a function of the number of rows `K`,
//! plus the single-row vs median-of-K retrieval ablation called out in
//! DESIGN.md.

use ascs_count_sketch::{AugmentedSketch, CountMinSketch, CountSketch};
use ascs_sketch_hash::HashFamily;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hashing(c: &mut Criterion) {
    let family = HashFamily::new(5, 1 << 16, 42);
    c.bench_function("hash_family_locate_5_rows", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            let mut acc = 0usize;
            for loc in family.locate(black_box(key)) {
                acc ^= loc.bucket;
            }
            black_box(acc)
        })
    });
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_update");
    for &k in &[1usize, 3, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut cs = CountSketch::new(k, 1 << 16, 7);
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9);
                cs.update(black_box(key), black_box(0.5));
            })
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_estimate");
    for &k in &[1usize, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut cs = CountSketch::new(k, 1 << 16, 9);
            for key in 0..100_000u64 {
                cs.update(key, (key % 13) as f64);
            }
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9);
                black_box(cs.estimate(black_box(key % 100_000)))
            })
        });
    }
    group.finish();
}

fn bench_row_estimate_vs_median(c: &mut Criterion) {
    let mut cs = CountSketch::new(5, 1 << 16, 11);
    for key in 0..100_000u64 {
        cs.update(key, 1.0);
    }
    c.bench_function("single_row_estimate", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            black_box(cs.row_estimate(0, black_box(key % 100_000)))
        })
    });
    c.bench_function("median_of_5_estimate", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            black_box(cs.estimate(black_box(key % 100_000)))
        })
    });
}

fn bench_baseline_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_update");
    group.bench_function("count_min", |b| {
        let mut cm = CountMinSketch::new(5, 1 << 16, 3);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            cm.update(black_box(key), 1.0);
        })
    });
    group.bench_function("augmented_sketch", |b| {
        let mut asketch = AugmentedSketch::new(5, 1 << 16, 64, 3);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            asketch.update(black_box(key % 4096), 1.0);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_update,
    bench_estimate,
    bench_row_estimate_vs_median,
    bench_baseline_structures
);
criterion_main!(benches);
