//! Figure 1: distribution of absolute correlations of high-dimensional
//! datasets. For each dataset the table reports the empirical proportion of
//! pairs with |correlation| ≤ x — most mass sits near zero, which is the
//! sparsity premise of the whole paper.

use ascs_bench::{emit_table, exact_correlations, paper_surrogates, Scale};
use ascs_eval::ExperimentTable;
use ascs_numerics::EmpiricalCdf;

fn main() {
    let scale = Scale::from_args();
    let thresholds = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8];

    let datasets = paper_surrogates(scale);
    let mut table = ExperimentTable::new(
        "Figure 1: empirical P(|correlation| <= x) per dataset",
        std::iter::once("x")
            .chain(datasets.iter().map(|d| d.spec().name.as_str()))
            .collect(),
    );

    let cdfs: Vec<EmpiricalCdf> = datasets
        .iter()
        .map(|ds| {
            let samples = ds.all_samples();
            let exact = exact_correlations(&samples);
            EmpiricalCdf::of_absolute_values(exact.values().iter().copied())
        })
        .collect();

    for &x in &thresholds {
        let mut row = vec![ascs_eval::TableCell::Number(x)];
        for cdf in &cdfs {
            row.push(cdf.eval(x).into());
        }
        table.push_row(row);
    }

    emit_table(&table, "fig1_correlation_cdf");
    println!(
        "Expected shape (paper Figure 1): the CDF rises steeply near zero — \
         the overwhelming majority of correlations are tiny, only a sparse tail is large."
    );
}
