//! Table 6: wall-clock time to sketch each evaluation dataset with CS vs
//! ASCS. The paper's point is that active sampling adds only a per-update
//! estimate query, so the two run at essentially the same speed; absolute
//! seconds depend on hardware and are not part of the claim.

use ascs_bench::emit_table;
use ascs_bench::{paper_surrogates, run_backend, section83_config, Scale};
use ascs_core::SketchBackend;
use ascs_eval::ExperimentTable;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let datasets = paper_surrogates(scale);

    let mut table = ExperimentTable::new(
        "Table 6: sketching wall-clock time (seconds)",
        vec!["dataset", "CS (s)", "ASCS (s)", "ASCS / CS"],
    );

    for ds in &datasets {
        let samples = ds.all_samples();
        let config = section83_config(ds, scale, 29);

        let start = Instant::now();
        let _cs = run_backend(config, SketchBackend::VanillaCs, &samples);
        let cs_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let _ascs = run_backend(config, SketchBackend::Ascs, &samples);
        let ascs_secs = start.elapsed().as_secs_f64();

        table.push_row(vec![
            ds.spec().name.clone().into(),
            cs_secs.into(),
            ascs_secs.into(),
            (ascs_secs / cs_secs.max(1e-9)).into(),
        ]);
        eprintln!("timed {}", ds.spec().name);
    }

    emit_table(&table, "table6_timing");
    println!(
        "Expected shape (paper Table 6): CS and ASCS take comparable time on every dataset — the \
         ASCS/CS ratio stays within a small constant of 1 (the paper reports 0.8x–1.25x)."
    );
}
