//! Scenario conformance report: runs the bound-conformance suite and emits
//! `BENCH_scenarios.json` at the repository root with machine-readable
//! per-scenario pass flags (CI guards them on every push).
//!
//! * default — the quick catalogue at the quick trial count (the same run
//!   as the tier-1 `tests/bound_conformance.rs` quick profile);
//! * `--smoke` — identical scenarios, kept as an explicit alias so CI
//!   invocations read uniformly across the bench binaries;
//! * `--deep` — the deep catalogue (larger dims, longer streams, more
//!   trials, plus the planned sharded backend).
//!
//! The table printed per scenario shows, for every backend and checkpoint,
//! the worst enforced gate margin (`budget / observed quantile`; > 1 means
//! pass) so trend regressions are visible long before a gate actually
//! fails.
//!
//! Before the JSON is written the binary re-proves, in process, that the
//! windowed ring is bit-identical to a from-scratch in-window rebuild on
//! dyadic updates — the conformance verdict for `windowed_cs` is only
//! published on top of that invariant (`windowed_bit_identity_asserted`),
//! together with the enforced drift-gate flag
//! (`windowed_drift_gate_enforced`): the windowed backend's
//! `emergent_signal_pairs` gate at the post-flip checkpoint of
//! `covariance_flip` must be present, enforced, and green.

use ascs_core::{window_span, WindowedSketch};
use ascs_count_sketch::CountSketch;
use ascs_eval::ExperimentTable;
use ascs_testkit::{deep_suite, quick_suite, run_suite, ConformanceConfig, SuiteReport};
use std::fmt::Write as _;

/// Where the JSON lands: the repository root, independent of the
/// invocation directory.
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");

fn margin_table(report: &SuiteReport) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        format!("Bound conformance ({} profile)", report.profile),
        vec![
            "scenario",
            "backend",
            "t",
            "worst gate",
            "observed",
            "budget",
            "margin",
            "pass",
        ],
    );
    for scenario in &report.scenarios {
        for backend in &scenario.backends {
            for ck in &backend.checkpoints {
                let worst = ck
                    .gates
                    .iter()
                    .filter(|g| g.enforced)
                    .min_by(|a, b| a.margin().total_cmp(&b.margin()))
                    .expect("every checkpoint carries enforced gates");
                table.push_row(vec![
                    scenario.scenario.as_str().into(),
                    backend.backend.as_str().into(),
                    ck.t.into(),
                    worst.name.as_str().into(),
                    worst.observed_quantile.into(),
                    worst.budget.into(),
                    worst.margin().into(),
                    if ck.passed { "yes" } else { "NO" }.into(),
                ]);
            }
        }
    }
    table.with_precision(4)
}

/// In-process re-proof of the windowed ring's bit-identity contract: a
/// maintained ring over dyadic updates must equal a from-scratch rebuild
/// of only the in-window samples, bit for bit, at every sample of a
/// stream crossing several retire boundaries. Panics on any divergence —
/// the report is never written on top of a broken ring.
fn assert_windowed_bit_identity() {
    let (rows, range, seed) = (4usize, 256usize, 17u64);
    let (segment_len, segments) = (8u64, 4usize);
    let total = 67u64; // several retires, ends mid-block
    let per_sample = 3usize;
    let updates: Vec<(u64, f64)> = (0..total * per_sample as u64)
        .map(|i| (i % 32, ((i * 7 + 2) % 9) as f64 * 0.25 - 1.0))
        .collect();
    let mut win = WindowedSketch::new(rows, range, seed, segment_len, segments);
    for t in 1..=total {
        let _ = win.begin_sample();
        let base = (t as usize - 1) * per_sample;
        for &(key, w) in &updates[base..base + per_sample] {
            win.ingest(key, w);
        }
        let (start, n) = window_span(t, segment_len, segments);
        assert_eq!(
            win.window_span(),
            (start, n),
            "window span diverged at t = {t}"
        );
        let mut rebuild = CountSketch::new(rows, range, seed);
        for s in start..=t {
            let b = (s as usize - 1) * per_sample;
            for &(key, w) in &updates[b..b + per_sample] {
                rebuild.update(key, w);
            }
        }
        let merged = win.merged_sketch();
        assert!(
            merged
                .table()
                .iter()
                .zip(rebuild.table())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "windowed ring table diverged from the in-window rebuild at t = {t}"
        );
        for key in 0..32u64 {
            assert_eq!(
                win.raw_estimate(key).to_bits(),
                rebuild.estimate(key).to_bits(),
                "windowed point query diverged at t = {t}, key = {key}"
            );
        }
    }
}

/// Whether the windowed backend's post-flip emergent gate on
/// `covariance_flip` is present, enforced and green.
fn windowed_drift_gate_enforced(report: &SuiteReport) -> bool {
    report
        .scenarios
        .iter()
        .find(|s| s.scenario == "covariance_flip")
        .and_then(|s| s.backends.iter().find(|b| b.backend == "windowed_cs"))
        .and_then(|b| b.checkpoints.last())
        .and_then(|ck| ck.gates.iter().find(|g| g.name == "emergent_signal_pairs"))
        .is_some_and(|g| g.enforced && g.passed)
}

fn main() {
    let deep = std::env::args().any(|a| a == "--deep");
    let (suite, cfg, profile) = if deep {
        (deep_suite(), ConformanceConfig::deep(), "deep")
    } else {
        // `--smoke` is accepted as an explicit alias of the default.
        (quick_suite(), ConformanceConfig::quick(), "quick")
    };
    eprintln!(
        "running {} scenarios x {} backends x {} trials ({profile} profile)...",
        suite.len(),
        cfg.backends.len(),
        cfg.trials
    );
    let report = run_suite(&suite, &cfg, profile);

    println!("{}", margin_table(&report).to_markdown());
    for scenario in &report.scenarios {
        for backend in &scenario.backends {
            if backend.fell_back {
                eprintln!(
                    "note: {}/{} used fallback hyperparameters (Algorithm 3 infeasible at this scale)",
                    scenario.scenario, backend.backend
                );
            }
        }
    }

    // The bit-identity invariant is re-proved in process before any
    // verdict involving the windowed backend is published.
    assert_windowed_bit_identity();
    eprintln!("windowed ring bit-identity re-proved in process");
    let drift_gate = windowed_drift_gate_enforced(&report);
    if !drift_gate {
        eprintln!(
            "FAIL: the windowed backend's enforced emergent gate on \
             covariance_flip is missing, unenforced, or red"
        );
    }

    // JSON: the full serialised suite plus a flat per-scenario pass map so
    // CI can guard flags without parsing nested structures.
    let mut flags = String::new();
    for (i, scenario) in report.scenarios.iter().enumerate() {
        let comma = if i + 1 == report.scenarios.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            flags,
            "    \"{}\": {}{comma}",
            scenario.scenario, scenario.passed
        );
    }
    let json = format!(
        "{{\n  \"windowed_bit_identity_asserted\": true,\n  \
         \"windowed_drift_gate_enforced\": {drift_gate},\n  \
         \"scenario_pass_flags\": {{\n{flags}  }},\n  \"suite\": {}\n}}\n",
        serde_json::to_string_pretty(&report).expect("suite reports always serialise")
    );
    match std::fs::write(OUTPUT_PATH, &json) {
        Ok(()) => eprintln!("(wrote {OUTPUT_PATH})"),
        Err(e) => eprintln!("warning: could not write {OUTPUT_PATH}: {e}"),
    }

    if !report.all_passed || !drift_gate {
        eprintln!("FAIL: at least one scenario violated its enforced gates");
        std::process::exit(1);
    }
    println!(
        "all {} scenarios passed on every backend ({profile} profile)",
        report.scenarios.len()
    );
}
