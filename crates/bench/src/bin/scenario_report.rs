//! Scenario conformance report: runs the bound-conformance suite and emits
//! `BENCH_scenarios.json` at the repository root with machine-readable
//! per-scenario pass flags (CI guards them on every push).
//!
//! * default — the quick catalogue at the quick trial count (the same run
//!   as the tier-1 `tests/bound_conformance.rs` quick profile);
//! * `--smoke` — identical scenarios, kept as an explicit alias so CI
//!   invocations read uniformly across the bench binaries;
//! * `--deep` — the deep catalogue (larger dims, longer streams, more
//!   trials, plus the planned sharded backend).
//!
//! The table printed per scenario shows, for every backend and checkpoint,
//! the worst enforced gate margin (`budget / observed quantile`; > 1 means
//! pass) so trend regressions are visible long before a gate actually
//! fails.

use ascs_eval::ExperimentTable;
use ascs_testkit::{deep_suite, quick_suite, run_suite, ConformanceConfig, SuiteReport};
use std::fmt::Write as _;

/// Where the JSON lands: the repository root, independent of the
/// invocation directory.
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");

fn margin_table(report: &SuiteReport) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        format!("Bound conformance ({} profile)", report.profile),
        vec![
            "scenario",
            "backend",
            "t",
            "worst gate",
            "observed",
            "budget",
            "margin",
            "pass",
        ],
    );
    for scenario in &report.scenarios {
        for backend in &scenario.backends {
            for ck in &backend.checkpoints {
                let worst = ck
                    .gates
                    .iter()
                    .filter(|g| g.enforced)
                    .min_by(|a, b| a.margin().total_cmp(&b.margin()))
                    .expect("every checkpoint carries enforced gates");
                table.push_row(vec![
                    scenario.scenario.as_str().into(),
                    backend.backend.as_str().into(),
                    ck.t.into(),
                    worst.name.as_str().into(),
                    worst.observed_quantile.into(),
                    worst.budget.into(),
                    worst.margin().into(),
                    if ck.passed { "yes" } else { "NO" }.into(),
                ]);
            }
        }
    }
    table.with_precision(4)
}

fn main() {
    let deep = std::env::args().any(|a| a == "--deep");
    let (suite, cfg, profile) = if deep {
        (deep_suite(), ConformanceConfig::deep(), "deep")
    } else {
        // `--smoke` is accepted as an explicit alias of the default.
        (quick_suite(), ConformanceConfig::quick(), "quick")
    };
    eprintln!(
        "running {} scenarios x {} backends x {} trials ({profile} profile)...",
        suite.len(),
        cfg.backends.len(),
        cfg.trials
    );
    let report = run_suite(&suite, &cfg, profile);

    println!("{}", margin_table(&report).to_markdown());
    for scenario in &report.scenarios {
        for backend in &scenario.backends {
            if backend.fell_back {
                eprintln!(
                    "note: {}/{} used fallback hyperparameters (Algorithm 3 infeasible at this scale)",
                    scenario.scenario, backend.backend
                );
            }
        }
    }

    // JSON: the full serialised suite plus a flat per-scenario pass map so
    // CI can guard flags without parsing nested structures.
    let mut flags = String::new();
    for (i, scenario) in report.scenarios.iter().enumerate() {
        let comma = if i + 1 == report.scenarios.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            flags,
            "    \"{}\": {}{comma}",
            scenario.scenario, scenario.passed
        );
    }
    let json = format!(
        "{{\n  \"scenario_pass_flags\": {{\n{flags}  }},\n  \"suite\": {}\n}}\n",
        serde_json::to_string_pretty(&report).expect("suite reports always serialise")
    );
    match std::fs::write(OUTPUT_PATH, &json) {
        Ok(()) => eprintln!("(wrote {OUTPUT_PATH})"),
        Err(e) => eprintln!("warning: could not write {OUTPUT_PATH}: {e}"),
    }

    if !report.all_passed {
        eprintln!("FAIL: at least one scenario violated its enforced gates");
        std::process::exit(1);
    }
    println!(
        "all {} scenarios passed on every backend ({profile} profile)",
        report.scenarios.len()
    );
}
