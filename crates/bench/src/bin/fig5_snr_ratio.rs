//! Figure 5: the signal-to-noise ratio of the stream ASCS ingests, relative
//! to vanilla CS, as the stream progresses — theoretical lower bound
//! (Theorem 3) vs measured.

use ascs_bench::{emit_table, Scale};
use ascs_core::{
    AscsConfig, CovarianceEstimator, EstimandKind, SketchBackend, SketchGeometry, TheoryBounds,
    UpdateMode,
};
use ascs_datasets::{SimulatedDataset, SimulationSpec};
use ascs_eval::ExperimentTable;

fn main() {
    let scale = Scale::from_args();
    let dim = scale.pick(120u64, 1000);
    let total = scale.pick(2000u64, 6000);
    let stride = scale.pick(200usize, 200);

    let dataset = SimulatedDataset::new(SimulationSpec {
        dim,
        alpha: 0.005,
        rho_min: 0.5,
        rho_max: 0.95,
        block_size: 4,
        seed: 202,
    });
    let p = dataset.indexer().num_pairs();
    let geometry = SketchGeometry::new(5, ((p / 20) / 5).max(16) as usize);
    let alpha = dataset.realised_alpha();
    let u = 0.5;
    let sigma = 1.0;

    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry,
        alpha,
        signal_strength: u,
        sigma,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 5,
        top_k_capacity: 200,
    };

    // Run ASCS with the SNR probe attached.
    let (mut ascs, _) = CovarianceEstimator::new_or_fallback(config, SketchBackend::Ascs);
    ascs = ascs.with_snr_probe(dataset.signal_keys());
    // Run vanilla CS with the probe too: its (constant) SNR is the
    // denominator of the ratio.
    let (mut cs, _) = CovarianceEstimator::new_or_fallback(config, SketchBackend::VanillaCs);
    cs = cs.with_snr_probe(dataset.signal_keys());

    for i in 0..total {
        let sample = dataset.sample_at(i);
        ascs.process_sample(&sample);
        cs.process_sample(&sample);
    }

    let hp = *ascs.hyperparameters().expect("ASCS has hyperparameters");
    let bounds = TheoryBounds::new(p, geometry.range, geometry.rows, alpha, sigma, u, total);

    let ascs_probe = ascs.snr_probe().unwrap();
    let cs_probe = cs.snr_probe().unwrap();

    let mut table = ExperimentTable::new(
        "Figure 5: SNR(ASCS, t) / SNR(CS) — Theorem 3 lower bound vs measured (simulation)",
        vec!["t", "theoretical lower bound", "measured ratio"],
    );
    let mut start = 0usize;
    while start < total as usize {
        let end = (start + stride).min(total as usize);
        let ascs_snr = ascs_probe.windowed_snr(start, end);
        let cs_snr = cs_probe.windowed_snr(start, end);
        let measured = match (ascs_snr, cs_snr) {
            (Some(a), Some(c)) if c > 0.0 => a / c,
            (None, Some(_)) => f64::INFINITY, // ASCS ingested no noise at all
            _ => f64::NAN,
        };
        let theory =
            bounds.theorem3_snr_ratio_lower_bound(end as u64, hp.t0, hp.theta, hp.delta_star);
        table.push_row(vec![
            (end as u64).into(),
            theory.into(),
            if measured.is_finite() {
                measured.into()
            } else {
                "inf (no noise ingested)".into()
            },
        ]);
        start = end;
    }
    emit_table(&table, "fig5_snr_ratio");
    println!(
        "Expected shape (paper Figure 5): the ratio is ~1 during exploration, grows once sampling \
         starts and plateaus; the measured ratio sits above the theoretical lower bound."
    );
}
