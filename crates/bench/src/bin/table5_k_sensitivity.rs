//! Table 5: sensitivity of ASCS to the number of hash tables `K` under a
//! fixed total memory budget `M` (so `R = M / K`), on the gisette
//! surrogate. The reported metric is the mean exact correlation of the top
//! `0.1 · α · p` reported pairs, as in the paper.

use ascs_bench::{
    emit_table, exact_correlations, full_ranking, mean_exact_correlation, run_backend, Scale,
};
use ascs_core::{AscsConfig, EstimandKind, SketchBackend, SketchGeometry, UpdateMode};
use ascs_datasets::{SurrogateDataset, SurrogateSpec};
use ascs_eval::ExperimentTable;

fn main() {
    let scale = Scale::from_args();
    let dim = scale.pick(300u64, 1000);
    let samples_n = scale.pick(2000u64, 6000);
    let dataset = SurrogateDataset::new(SurrogateSpec::gisette().scaled(dim, samples_n));
    let samples = dataset.all_samples();
    let exact = exact_correlations(&samples);

    let p = dim * (dim - 1) / 2;
    let alpha = dataset.spec().alpha;
    let top_k = ((0.1 * alpha * p as f64).round() as usize).max(1);

    let budgets: Vec<usize> = scale.pick(
        vec![2_000, 5_000, 10_000, 25_000, 100_000],
        vec![10_000, 20_000, 50_000, 100_000, 500_000],
    );
    let ks = [2usize, 4, 6, 8, 10];

    let mut table = ExperimentTable::new(
        format!("Table 5: ASCS mean correlation of top 0.1*alpha*p = {top_k} pairs vs (budget, K) — gisette surrogate"),
        std::iter::once("budget M".to_string())
            .chain(ks.iter().map(|k| format!("K = {k}")))
            .map(|s| Box::leak(s.into_boxed_str()) as &str)
            .collect(),
    );

    for &budget in &budgets {
        let mut row = vec![ascs_eval::TableCell::Integer(budget as i64)];
        for &k in &ks {
            let config = AscsConfig {
                dim,
                total_samples: samples.len() as u64,
                geometry: SketchGeometry::from_budget(k, budget),
                alpha,
                signal_strength: 0.3,
                sigma: 1.0,
                delta: 0.05,
                delta_star: 0.20,
                tau0: 1e-4,
                estimand: EstimandKind::Correlation,
                update_mode: UpdateMode::Product,
                seed: 23,
                top_k_capacity: 2000,
            };
            let estimator = run_backend(config, SketchBackend::Ascs, &samples);
            let ranking = full_ranking(&estimator);
            row.push(mean_exact_correlation(&ranking, &exact, top_k).into());
        }
        table.push_row(row);
        eprintln!("finished budget {budget}");
    }

    emit_table(&table, "table5_k_sensitivity");
    println!(
        "Expected shape (paper Table 5): performance improves with the budget M and is flat in K \
         for K between 4 and 10; K = 2 is noticeably worse (medians over two rows are fragile)."
    );
}
