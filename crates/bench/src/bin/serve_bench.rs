//! Serving-core harness: sustained ingest throughput with concurrent
//! readers, query latency percentiles, and recovery time from an injected
//! worker panic to a fresh consistent snapshot — with the correctness
//! contract asserted in-harness before any number is reported.
//!
//! Three flags land in `BENCH_serve.json` (CI greps for them):
//!
//! * `snapshot_consistency_asserted` — every snapshot published during the
//!   live-ingest phase (readers querying concurrently throughout) is
//!   bit-identical to a sequential replay of the same stream up to its
//!   epoch: merged table, gate counters and top list;
//! * `recovery_replay_asserted` — after a scripted worker panic
//!   mid-stream, the recovered service's final snapshot is bit-identical
//!   to an uninterrupted sequential run on the same seed;
//! * `durable_recovery_asserted` — a durable run (WAL + checkpoints) torn
//!   down mid-flight as if SIGKILLed cold-starts from the bare directory
//!   to the full stream epoch, bit-identical to the oracle, with the
//!   recovery wall-clock reported as `durable_recovery_ms`.
//!
//! Query latency is measured from reader threads doing point queries (with
//! periodic top-k and whole-universe sweeps mixed in) against the
//! published snapshot while ingestion runs. Recovery time is the wall
//! clock from the panic being observed to a *fresh* post-recovery snapshot
//! being published — restore + replay + backlog drain + merge, the figure
//! a caller actually waits for.
//!
//! `--smoke` shrinks the workload for CI.

use ascs_core::serve::{ServeOptions, ServingEstimator, Snapshot};
use ascs_core::{
    AscsConfig, DurabilityOptions, EstimandKind, HyperParameters, Sample, SketchGeometry,
    UpdateMode,
};
use ascs_testkit::{FaultPlan, ReplayOracle};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where the JSON report lands: the repository root, independent of the
/// invocation directory.
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

fn hyper_gated(total: u64) -> HyperParameters {
    HyperParameters {
        t0: (total / 10).max(1),
        theta: 0.2,
        tau0: 1e-4,
        delta: 0.05,
        delta_star: 0.20,
    }
}

fn config(dim: u64, total: u64, range: usize, seed: u64) -> AscsConfig {
    AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, range),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 64,
    }
}

/// Deterministic dense samples with every coordinate non-zero, so every
/// sample emits the full pair universe and shard-local update indices are
/// exactly computable for the scripted panic.
fn sample_at(dim: u64, t: u64) -> Sample {
    let values: Vec<f64> = (0..dim)
        .map(|f| ((t * 31 + f * 7) % 4) as f64 * 0.6 - 0.9)
        .collect();
    Sample::dense(values)
}

fn assert_snapshot_matches(snapshot: &Snapshot, oracle: &ReplayOracle, what: &str) {
    assert_eq!(snapshot.epoch(), oracle.samples(), "{what}: epoch mismatch");
    let served = snapshot.sketch().table();
    let truth = oracle.merged_sketch();
    assert!(
        served
            .iter()
            .zip(truth.table())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{what}: merged tables diverged"
    );
    assert_eq!(
        snapshot.update_counts(),
        oracle.update_counts(),
        "{what}: gate counters diverged"
    );
    let top: Vec<(u64, f64)> = snapshot
        .top_pairs(usize::MAX)
        .into_iter()
        .map(|p| (p.key, p.estimate))
        .collect();
    assert_eq!(top, oracle.top_pairs(), "{what}: top pairs diverged");
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0 // µs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, total, range, shards, readers, refresh_every) = if smoke {
        (24u64, 1024u64, 2048usize, 2usize, 2usize, 128u64)
    } else {
        (64u64, 8192u64, 8192usize, 4usize, 4usize, 512u64)
    };
    let pairs = dim * (dim - 1) / 2;
    let cfg = config(dim, total, range, 42);
    let hp = hyper_gated(total);
    let opts = ServeOptions {
        shards,
        ..ServeOptions::default()
    };

    // ------------------------------------------------------------------
    // Phase A: sustained ingest with concurrent readers. Every published
    // snapshot is captured and afterwards checked bit for bit against a
    // sequential replay at the same epoch.
    // ------------------------------------------------------------------
    eprintln!(
        "serving {total} samples of d = {dim} across {shards} shards \
         ({readers} readers querying concurrently)..."
    );
    let mut serving = ServingEstimator::launch_with_hyperparameters(cfg, Some(hp), opts);
    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let reader = serving.snapshot_reader();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut lat_ns: Vec<u64> = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let view = reader.current();
                    let key = (i * 1099) % pairs;
                    let start = Instant::now();
                    let est = view.snapshot.estimate(key);
                    lat_ns.push(start.elapsed().as_nanos() as u64);
                    assert!(est.is_finite(), "reader {r} observed a torn estimate");
                    // Mix in the heavier read shapes without letting them
                    // dominate the latency distribution.
                    if i.is_multiple_of(512) {
                        let top = view.snapshot.top_pairs(16);
                        assert!(top.iter().all(|p| p.estimate.is_finite()));
                    }
                    if i.is_multiple_of(4096) {
                        let sweep = view.snapshot.all_estimates();
                        assert_eq!(sweep.len() as u64, pairs);
                    }
                    i += 1;
                }
                lat_ns
            })
        })
        .collect();

    let ingest_start = Instant::now();
    let mut snapshots: Vec<Arc<Snapshot>> = Vec::new();
    for t in 1..=total {
        serving
            .ingest_blocking(&sample_at(dim, t))
            .expect("ingest failed");
        if t % refresh_every == 0 {
            snapshots.push(serving.refresh_snapshot().expect("refresh failed"));
        }
    }
    let ingest_secs = ingest_start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let mut lat_ns: Vec<u64> = Vec::new();
    for h in reader_handles {
        lat_ns.extend(h.join().expect("reader panicked"));
    }
    let live_stats = serving.shutdown();
    lat_ns.sort_unstable();
    let queries = lat_ns.len();

    // Consistency: replay the same stream sequentially and check every
    // captured snapshot at its own epoch.
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), shards);
    {
        let mut pending = snapshots.iter();
        let mut next = pending.next();
        for t in 1..=total {
            oracle.ingest(&sample_at(dim, t));
            if let Some(snap) = next {
                if snap.epoch() == t {
                    assert_snapshot_matches(snap, &oracle, &format!("live snapshot at epoch {t}"));
                    next = pending.next();
                }
            }
        }
        assert!(next.is_none(), "a captured snapshot was never checked");
    }
    let snapshot_consistency_asserted = true;
    eprintln!(
        "  {} snapshots consistent; {} concurrent queries",
        snapshots.len(),
        queries
    );

    // ------------------------------------------------------------------
    // Phase B: crash recovery. A scripted panic kills shard 0 mid-stream;
    // measure panic-observed → fresh snapshot published, then require the
    // final state to equal an uninterrupted run bit for bit.
    // ------------------------------------------------------------------
    eprintln!("injecting a shard-0 panic mid-stream and timing recovery...");
    let mut fresh_oracle = ReplayOracle::new(&cfg, Some(&hp), shards);
    let k0 = (0..pairs)
        .filter(|&key| fresh_oracle.shard_of(key) == 0)
        .count() as u64;
    assert!(k0 > 0, "benchmark geometry routes nothing to shard 0");
    let panic_sample = total / 2;
    let plan = Arc::new(FaultPlan::new().panic_at(0, k0 * (panic_sample - 1)));
    let mut faulted = ServingEstimator::launch_with_faults(cfg, Some(hp), opts, plan.clone());
    let mut recovery_secs = None;
    for t in 1..=total {
        faulted
            .ingest_blocking(&sample_at(dim, t))
            .expect("ingest failed");
        fresh_oracle.ingest(&sample_at(dim, t));
        if recovery_secs.is_none() && faulted.stats().worker_panics >= 1 {
            // Time to a *fresh* consistent snapshot: restore + replay +
            // backlog drain + merge — what a caller actually waits for.
            let start = Instant::now();
            let snap = faulted.refresh_snapshot().expect("recovery refresh");
            recovery_secs = Some(start.elapsed().as_secs_f64());
            assert_eq!(snap.epoch(), t);
        }
    }
    let recovery_secs = recovery_secs.expect("scripted panic never fired");
    let final_snap = faulted.refresh_snapshot().expect("final refresh");
    assert_snapshot_matches(&final_snap, &fresh_oracle, "post-recovery final state");
    let fault_stats = faulted.shutdown();
    assert_eq!(fault_stats.worker_panics, 1);
    assert_eq!(fault_stats.worker_restarts, 1);
    let recovery_replay_asserted = true;

    // ------------------------------------------------------------------
    // Phase C: durable cold-start recovery. The same stream runs with the
    // WAL + checkpoint store enabled, the process state is torn down as if
    // SIGKILLed (no final sync, no final checkpoint), and a cold relaunch
    // over the bare directory is timed — then its snapshot must equal the
    // sequential oracle bit for bit before any number is reported.
    // ------------------------------------------------------------------
    eprintln!("durable ingest, simulated crash, timing cold-start recovery...");
    let durable_dir = std::env::temp_dir().join(format!("ascs-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    let dopts = DurabilityOptions {
        checkpoint_every: refresh_every,
        ..DurabilityOptions::new(&durable_dir)
    };
    let mut durable = ServingEstimator::launch_durable(cfg, Some(hp), opts, dopts.clone())
        .expect("durable launch failed");
    let durable_start = Instant::now();
    for t in 1..=total {
        durable
            .ingest_blocking(&sample_at(dim, t))
            .expect("durable ingest failed");
    }
    let durable_secs = durable_start.elapsed().as_secs_f64();
    let health = durable.health();
    println!("\n{health}");
    assert!(
        !health.durability.durability_lost,
        "durability degraded on a healthy filesystem"
    );
    assert!(health.durability.last_durable_epoch > 0);
    durable.simulate_crash();

    let recover_start = Instant::now();
    let mut recovered = ServingEstimator::launch_durable(cfg, Some(hp), opts, dopts)
        .expect("cold-start recovery failed");
    let durable_recovery_secs = recover_start.elapsed().as_secs_f64();
    let report = recovered
        .recovery_report()
        .expect("durable launch must carry a recovery report")
        .clone();
    eprintln!("  {report}");
    let recovered_epoch = report.recovered_epoch;
    let wal_records_replayed = report.wal_records_replayed;
    assert_eq!(recovered_epoch, total, "recovery lost a stream suffix");
    assert_eq!(report.torn_generations_discarded, 0);
    let recovered_snap = recovered.refresh_snapshot().expect("recovered refresh");
    assert_snapshot_matches(&recovered_snap, &oracle, "cold-start recovered state");
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&durable_dir);
    let durable_recovery_asserted = true;

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let updates_per_sec = live_stats.emitted_updates as f64 / ingest_secs;
    let samples_per_sec = total as f64 / ingest_secs;
    let p50 = percentile(&lat_ns, 0.50);
    let p99 = percentile(&lat_ns, 0.99);
    let recovery_ms = recovery_secs * 1_000.0;
    println!("\nserving core (d = {dim}, T = {total}, K×R = 5×{range}, {shards} shards):");
    println!(
        "  ingest             {:.0} updates/s ({:.0} samples/s) with {readers} readers live",
        updates_per_sec, samples_per_sec
    );
    println!("  point query        p50 {p50:.3} µs   p99 {p99:.3} µs   ({queries} queries)");
    println!("  recovery           {recovery_ms:.2} ms panic → fresh consistent snapshot");
    let durable_recovery_ms = durable_recovery_secs * 1_000.0;
    let durable_samples_per_sec = total as f64 / durable_secs;
    println!("  durable ingest     {durable_samples_per_sec:.0} samples/s (WAL + checkpoints on)");
    println!(
        "  cold-start recovery {durable_recovery_ms:.2} ms to epoch {recovered_epoch} \
         ({wal_records_replayed} WAL records replayed)"
    );
    println!("  snapshot consistency / recovery replay / durable recovery: all asserted");

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"smoke\": {smoke}, \"dim\": {dim}, \"samples\": {total}, \"rows\": 5, \
         \"range\": {range}, \"shards\": {shards}, \"readers\": {readers},\n  \
         \"updates_per_sec\": {updates_per_sec:.0}, \"samples_per_sec\": {samples_per_sec:.0},\n  \
         \"query_p50_us\": {p50:.3}, \"query_p99_us\": {p99:.3}, \"queries\": {queries},\n  \
         \"snapshots_published\": {}, \"recovery_to_fresh_snapshot_ms\": {recovery_ms:.2},\n  \
         \"overload_rejections\": {}, \"worker_panics\": {}, \"worker_restarts\": {},\n  \
         \"durable_samples_per_sec\": {durable_samples_per_sec:.0}, \
         \"durable_recovery_ms\": {durable_recovery_ms:.2},\n  \
         \"durable_recovered_epoch\": {recovered_epoch}, \
         \"durable_wal_records_replayed\": {wal_records_replayed},\n  \
         \"snapshot_consistency_asserted\": {snapshot_consistency_asserted},\n  \
         \"recovery_replay_asserted\": {recovery_replay_asserted},\n  \
         \"durable_recovery_asserted\": {durable_recovery_asserted}\n}}\n",
        snapshots.len(),
        live_stats.overload_rejections,
        fault_stats.worker_panics,
        fault_stats.worker_restarts,
    );
    match std::fs::write(OUTPUT_PATH, &json) {
        Ok(()) => eprintln!("(wrote {OUTPUT_PATH})"),
        Err(e) => eprintln!("warning: could not write {OUTPUT_PATH}: {e}"),
    }
}
