//! Chaos sweep: runs seeded randomized fault schedules against the
//! durable serving core and proves (a) every standing invariant held on
//! every schedule and (b) every registered fault-injection site actually
//! fired at least once across the sweep.
//!
//! Modes:
//!   --smoke        64 consecutive seeds (CI gate, ~seconds)
//!   --soak [N]     N seeds, default 2048 (nightly)
//!   --seed N       one schedule, verbose (reproduce a failure)
//!
//! Writes `BENCH_chaos.json` at the repo root with
//! `chaos_invariants_asserted` and the fault-site coverage map; CI greps
//! the flag and requires zero uncovered sites. On violation the greedy
//! shrinker emits a minimal reproducing schedule (also written to
//! `CHAOS_MINIMAL_SCHEDULE.txt`) and the process exits nonzero.

use ascs_sketch_hash::codec::FaultSiteRegistry;
use ascs_testkit::chaos::{run_schedule, ChaosOptions, ChaosSchedule};
use ascs_testkit::shrink;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
const MINIMAL_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../CHAOS_MINIMAL_SCHEDULE.txt"
);

/// Base of the smoke seed range: 64 consecutive seeds from here cover
/// every fault kind (`seed % 9`) and every kill residue (`seed % 4`).
const SMOKE_BASE: u64 = 1000;
const SMOKE_SEEDS: u64 = 64;
const SOAK_SEEDS: u64 = 2048;

fn temp_dir(seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ascs-chaos-bench-{seed}-{}", std::process::id()))
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single_seed = arg_value(&args, "--seed");
    let soak = args.iter().any(|a| a == "--soak");
    let seeds: Vec<u64> = if let Some(seed) = single_seed {
        vec![seed]
    } else if soak {
        let n = arg_value(&args, "--soak").unwrap_or(SOAK_SEEDS);
        (SMOKE_BASE..SMOKE_BASE + n).collect()
    } else {
        (SMOKE_BASE..SMOKE_BASE + SMOKE_SEEDS).collect()
    };

    let opts = ChaosOptions::default();
    let registry = Arc::new(FaultSiteRegistry::new());
    let started = Instant::now();
    let mut invariant_checks = 0u64;
    let mut kills = 0u64;
    let mut faults_scheduled = 0usize;

    for &seed in &seeds {
        let schedule = ChaosSchedule::generate(seed, &opts);
        faults_scheduled += schedule.fault_count();
        if single_seed.is_some() {
            print!("{}", schedule.describe());
        }
        let dir = temp_dir(seed);
        let outcome = run_schedule(&schedule, &opts, &registry, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        match outcome {
            Ok(report) => {
                invariant_checks += report.invariant_checks;
                kills += report.kills;
                if single_seed.is_some() {
                    println!(
                        "seed {seed}: OK — {} lives, {} kills, {} invariant checks",
                        report.lives, report.kills, report.invariant_checks
                    );
                }
            }
            Err(violation) => {
                eprintln!("{violation}");
                eprintln!("shrinking the schedule to a minimal reproduction...");
                let mut attempt = 0u64;
                let minimal = shrink(&schedule, |candidate| {
                    attempt += 1;
                    let dir = temp_dir(seed ^ (attempt << 32));
                    let failed = run_schedule(candidate, &opts, &registry, &dir).is_err();
                    let _ = std::fs::remove_dir_all(&dir);
                    failed
                });
                let rendered = format!(
                    "{violation}\n\nminimal reproducing schedule \
                     ({} of {} fault components kept):\n{}\nreproduce with:\n  \
                     cargo run --release -p ascs_bench --bin chaos_bench -- --seed {seed}\n",
                    minimal.fault_count(),
                    schedule.fault_count(),
                    minimal.describe()
                );
                eprintln!("{rendered}");
                std::fs::write(MINIMAL_PATH, &rendered).expect("write minimal schedule");
                std::process::exit(1);
            }
        }
    }

    let coverage = registry.counts();
    let unfired = registry.unfired();
    let elapsed = started.elapsed().as_secs_f64();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seeds_run\": {},\n", seeds.len()));
    out.push_str(&format!(
        "  \"seed_base\": {},\n",
        seeds.first().copied().unwrap_or(0)
    ));
    out.push_str(&format!("  \"faults_scheduled\": {faults_scheduled},\n"));
    out.push_str(&format!("  \"kill_cycles\": {kills},\n"));
    out.push_str(&format!("  \"invariant_checks\": {invariant_checks},\n"));
    out.push_str(&format!("  \"elapsed_seconds\": {elapsed:.3},\n"));
    out.push_str("  \"fault_site_coverage\": {\n");
    for (i, (site, count)) in coverage.iter().enumerate() {
        let comma = if i + 1 == coverage.len() { "" } else { "," };
        out.push_str(&format!("    \"{site}\": {count}{comma}\n"));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"uncovered_sites\": {},\n", unfired.len()));
    out.push_str(&format!(
        "  \"chaos_invariants_asserted\": {}\n",
        unfired.is_empty()
    ));
    out.push_str("}\n");

    let mut file = std::fs::File::create(OUTPUT_PATH).expect("create BENCH_chaos.json");
    file.write_all(out.as_bytes())
        .expect("write BENCH_chaos.json");
    println!(
        "chaos sweep: {} seeds, {} invariant checks, {} kill cycles in {elapsed:.1}s",
        seeds.len(),
        invariant_checks,
        kills
    );
    for (site, count) in &coverage {
        println!("  {site}: fired {count}");
    }
    if !unfired.is_empty() {
        eprintln!("UNCOVERED fault sites (injection points that never fired): {unfired:?}");
        std::process::exit(1);
    }
    println!(
        "all {} fault sites fired; wrote {OUTPUT_PATH}",
        coverage.len()
    );
}
