//! Ingestion throughput harness: updates/sec for the plan-driven and fused
//! hash-once hot paths vs the pre-PR ingestion path, shard behaviour of the
//! parallel ingestion layer, and the whole-universe query sweep.
//!
//! Workload: the dense simulation of Sections 6.2/7.3 — every sample of a
//! `d`-feature Gaussian stream expands into `d(d−1)/2` pair updates, which
//! is exactly the regime where per-update sketch work dominates. The stream
//! is expanded into a flat update vector **once**, so every measured number
//! is pure sketch-ingestion time.
//!
//! The `*_baseline` variants run [`PrePrAscs`], a verbatim replica of the
//! ingestion path as it existed before the fused-offer change: three table
//! passes per accepted update (estimate → update → estimate), `1/T` applied
//! as a per-update division, phase and `τ(t−1)` re-derived per update, and
//! a SipHash-backed top-k tracker fed a full fresh point query on every
//! insert. The unsuffixed variants run the PR 2 fused
//! [`AscsSketch::offer_gated`] path (one hashing round per update); the
//! `*_planned` variants run the ingestion-plan path
//! ([`AscsSketch::ingest_planned`]), which replays a precomputed
//! [`HashPlan`] arena instead of hashing at all — the plan is built once
//! (its cost is reported separately as `plan_build_seconds`) and reused by
//! every repetition, exactly as the estimator reuses it across samples.
//! Stream lengths are powers of two so `x / T` and `x · (1/T)` round
//! identically and the harness can assert that all three paths build
//! **bit-identical sketch tables** before reporting any number (the JSON
//! records `bit_identity_asserted`, which CI checks).
//!
//! The query-sweep section measures the other half of the plan subsystem:
//! `p` point queries (`CovarianceEstimator::all_estimates` before this PR)
//! vs one cache-blocked [`CountSketch::estimate_many`] pass over the plan,
//! on the Figure 1 / Section 8.3 sketch geometry.
//!
//! Results are printed as a table and written to `BENCH_ingest.json` at the
//! repository root so future changes have a perf trajectory to compare
//! against. `--smoke` shrinks the workload for CI.
//!
//! Note on shard scaling: sharding distributes ingestion across OS threads,
//! so its wall-clock benefit requires multiple hardware threads. The JSON
//! records `available_parallelism` — on a single-CPU machine the sharded
//! rows measure the (small) coordination overhead, not the scaling.

use ascs_core::{
    AscsSketch, EstimandKind, HyperParameters, SampleGate, ShardUpdate, ShardedAscs,
    SketchGeometry, StreamContext, ThresholdSchedule, UpdateMode,
};
use ascs_count_sketch::{CountSketch, HashPlan};
use ascs_datasets::{SimulatedDataset, SimulationSpec};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Where the JSON trajectory lands: the repository root, independent of the
/// invocation directory.
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");

// ---------------------------------------------------------------------------
// Pre-PR replica: the ingestion path exactly as the seed had it.
// ---------------------------------------------------------------------------

/// The seed's median reduction: an insertion sort (the branchless median
/// networks are part of the post-PR fast path and must not leak into the
/// baseline).
fn pre_pr_median(rows: &mut [f64]) -> f64 {
    for i in 1..rows.len() {
        let mut j = i;
        while j > 0 && rows[j - 1] > rows[j] {
            rows.swap(j - 1, j);
            j -= 1;
        }
    }
    let n = rows.len();
    if n % 2 == 1 {
        rows[n / 2]
    } else {
        0.5 * (rows[n / 2 - 1] + rows[n / 2])
    }
}

/// The seed's point query: per-row hash + signed read, insertion-sort
/// median. (`CountSketch::row_estimate` is unchanged since the seed, so the
/// hashing and reads are the genuine pre-PR article.)
fn pre_pr_estimate(cs: &CountSketch, key: u64) -> f64 {
    let mut buf = [0.0f64; 16];
    let rows = cs.rows();
    for (row, slot) in buf.iter_mut().enumerate().take(rows) {
        *slot = cs.row_estimate(row, key);
    }
    pre_pr_median(&mut buf[..rows])
}

/// The seed's `TopKTracker`: a SipHash `HashMap` (std default hasher) with
/// the admission-bar fast path.
struct PrePrTracker {
    capacity: usize,
    entries: HashMap<u64, f64>,
    admission_bar: f64,
}

impl PrePrTracker {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            admission_bar: f64::NEG_INFINITY,
        }
    }

    fn offer(&mut self, key: u64, estimate: f64) {
        if estimate.is_nan() {
            return;
        }
        if self.entries.len() >= self.capacity
            && estimate < self.admission_bar
            && !self.entries.contains_key(&key)
        {
            return;
        }
        self.entries.insert(key, estimate);
        if self.entries.len() > self.capacity {
            if let Some((&evict_key, _)) = self.entries.iter().min_by(|a, b| a.1.total_cmp(b.1)) {
                self.entries.remove(&evict_key);
            }
            self.admission_bar = self.entries.values().copied().fold(f64::INFINITY, f64::min);
        }
    }
}

/// The seed's `AscsSketch::offer`, reproduced verbatim: this is the
/// pre-PR baseline every speedup in `BENCH_ingest.json` is measured
/// against. Gate decisions and table contents match the fused path bit for
/// bit when `T` is a power of two; only the tracker policy differs (the
/// seed fed it on every insert).
struct PrePrAscs {
    sketch: CountSketch,
    schedule: ThresholdSchedule,
    t0: u64,
    total: u64,
    tracker: PrePrTracker,
    inserted: u64,
    skipped: u64,
}

impl PrePrAscs {
    fn new(
        geometry: SketchGeometry,
        hyper: &HyperParameters,
        total: u64,
        top_k_capacity: usize,
        seed: u64,
    ) -> Self {
        Self {
            sketch: CountSketch::new(geometry.rows, geometry.range, seed),
            schedule: ThresholdSchedule::linear(hyper.tau0, hyper.theta, hyper.t0, total),
            t0: hyper.t0,
            total,
            tracker: PrePrTracker::new(top_k_capacity),
            inserted: 0,
            skipped: 0,
        }
    }

    fn offer(&mut self, key: u64, x: f64, t: u64) {
        let exploration = t <= self.t0;
        let accept = if exploration {
            true
        } else {
            let estimate = pre_pr_estimate(&self.sketch, key);
            let posterior = estimate + x / self.total as f64;
            let tau = self.schedule.tau(t - 1);
            estimate.abs() >= tau || posterior.abs() >= tau
        };
        if accept {
            self.sketch.update(key, x / self.total as f64);
            self.inserted += 1;
            let fresh = pre_pr_estimate(&self.sketch, key);
            self.tracker.offer(key, fresh.abs());
        } else {
            self.skipped += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Measurement {
    name: &'static str,
    updates: usize,
    seconds: f64,
    /// True for sharded rows measured on a single hardware thread: they
    /// quantify the coordination overhead of the sharding layer, **not**
    /// parallel scaling, and the JSON labels them as such.
    coordination_overhead_only: bool,
}

impl Measurement {
    fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.seconds
    }
}

fn hyper_gated(total: u64) -> HyperParameters {
    HyperParameters {
        t0: (total / 10).max(1),
        theta: 0.2,
        tau0: 1e-4,
        delta: 0.05,
        delta_star: 0.20,
    }
}

fn hyper_vanilla(total: u64) -> HyperParameters {
    HyperParameters {
        t0: total,
        theta: 0.0,
        tau0: 0.0,
        delta: 0.05,
        delta_star: 0.20,
    }
}

/// Runs `ingest` against fresh state `reps` times and returns the best
/// wall-clock seconds (best-of-N suppresses scheduler noise) plus the final
/// run's state for correctness checks.
fn time_best<S>(
    reps: usize,
    mut fresh: impl FnMut() -> S,
    mut ingest: impl FnMut(&mut S),
) -> (f64, S) {
    let mut best = f64::INFINITY;
    let mut state = fresh();
    for _ in 0..reps {
        state = fresh();
        let start = Instant::now();
        ingest(&mut state);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, state)
}

/// The estimator-style hot loop: gate invariants recomputed only when the
/// stream time changes, fused offer per update.
fn ingest_fused(sketch: &mut AscsSketch, updates: &[ShardUpdate]) {
    let mut gate_t = u64::MAX;
    let mut gate: Option<SampleGate> = None;
    for u in updates {
        if u.t != gate_t {
            gate = Some(sketch.sample_gate(u.t));
            gate_t = u.t;
        }
        sketch.offer_gated(u.key, u.value, gate.expect("gate set above"));
    }
}

fn ingest_baseline(sketch: &mut PrePrAscs, updates: &[ShardUpdate]) {
    for u in updates {
        sketch.offer(u.key, u.value, u.t);
    }
}

/// The plan-driven hot loop: no hashing at all — every update replays its
/// precomputed arena entry, with look-ahead prefetch of upcoming buckets.
fn ingest_planned(sketch: &mut AscsSketch, plan: &HashPlan, updates: &[ShardUpdate]) {
    sketch.ingest_planned(plan, updates);
}

fn assert_tables_identical(fused: &AscsSketch, baseline: &CountSketch, what: &str) {
    let ta = fused.sketch().table();
    let tb = baseline.table();
    assert!(
        ta.iter().zip(tb).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: fused and baseline sketch tables diverged"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Stream lengths are powers of two so the baseline's `x / T` and the
    // fused path's `x · (1/T)` round identically and the cross-checks can
    // demand bit-identical tables.
    let (dim, n_samples, range, reps) = if smoke {
        (60u64, 64usize, 4096usize, 2usize)
    } else {
        (160u64, 256usize, 16384usize, 7usize)
    };
    let geometry = SketchGeometry::new(5, range);
    let total = n_samples as u64;
    let top_k = 64usize;
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!("generating dense simulation workload (d = {dim}, T = {n_samples})...");
    let dataset = SimulatedDataset::new(SimulationSpec::smoke(dim, 11));
    let samples = dataset.samples_par(0, n_samples, 4);

    // Expand the stream once; every measurement below is pure ingestion.
    let mut ctx = StreamContext::new(dim, UpdateMode::Product, EstimandKind::Covariance);
    let mut updates: Vec<ShardUpdate> = Vec::new();
    for (i, sample) in samples.iter().enumerate() {
        let t = i as u64 + 1;
        ctx.ingest(sample, |u| {
            updates.push(ShardUpdate {
                key: u.key,
                value: u.value,
                t,
            });
        });
    }
    let count = updates.len();
    eprintln!("expanded into {count} pair updates");

    let gated = hyper_gated(total);
    let vanilla = hyper_vanilla(total);
    let mut results: Vec<Measurement> = Vec::new();
    let mut push = |name: &'static str, seconds: f64| {
        results.push(Measurement {
            name,
            updates: count,
            seconds,
            coordination_overhead_only: false,
        });
    };

    // The ingestion plan: every pair key of the d-feature universe hashed
    // exactly once, then reused by every planned repetition below (as the
    // estimator reuses it across samples). Built off a probe sketch so the
    // arena provably matches the benchmarked geometry/seed.
    let num_pairs = (dim * (dim - 1) / 2) as usize;
    let plan_start = Instant::now();
    let plan = AscsSketch::vanilla(geometry, total, top_k, 42)
        .sketch()
        .build_plan(num_pairs);
    let plan_build_seconds = plan_start.elapsed().as_secs_f64();
    eprintln!(
        "built ingestion plan: {num_pairs} slots, {:.1} KiB arena, {plan_build_seconds:.4}s",
        plan.arena_bytes() as f64 / 1024.0
    );

    // --- raw sketch write path (tracker disabled) — no pre-PR counterpart,
    // reported for the ingestion-floor trajectory.
    let (secs, _) = time_best(
        reps,
        || AscsSketch::vanilla(geometry, total, top_k, 42).without_tracking(),
        |s| ingest_fused(s, &updates),
    );
    push("cs_ingest_only", secs);
    let (secs, _) = time_best(
        reps,
        || AscsSketch::vanilla(geometry, total, top_k, 42).without_tracking(),
        |s| ingest_planned(s, &plan, &updates),
    );
    push("cs_ingest_only_planned", secs);

    // --- vanilla CS (every update accepted, tracker fed).
    let (secs, fused_state) = time_best(
        reps,
        || AscsSketch::vanilla(geometry, total, top_k, 42),
        |s| ingest_fused(s, &updates),
    );
    push("vanilla_cs", secs);
    let (secs, base_state) = time_best(
        reps,
        || PrePrAscs::new(geometry, &vanilla, total, top_k, 42),
        |s| ingest_baseline(s, &updates),
    );
    push("vanilla_cs_baseline", secs);
    assert_tables_identical(&fused_state, &base_state.sketch, "vanilla_cs");
    let (secs, planned_state) = time_best(
        reps,
        || AscsSketch::vanilla(geometry, total, top_k, 42),
        |s| ingest_planned(s, &plan, &updates),
    );
    push("vanilla_cs_planned", secs);
    assert_tables_identical(&planned_state, fused_state.sketch(), "vanilla_cs_planned");

    // --- ASCS gated: the paper's algorithm, the single hottest path.
    let (secs, fused_state) = time_best(
        reps,
        || AscsSketch::new(geometry, &gated, total, top_k, 42),
        |s| ingest_fused(s, &updates),
    );
    push("ascs_gated", secs);
    let gated_fused_ups = count as f64 / secs;
    let (secs, base_state) = time_best(
        reps,
        || PrePrAscs::new(geometry, &gated, total, top_k, 42),
        |s| ingest_baseline(s, &updates),
    );
    push("ascs_gated_baseline", secs);
    let gated_baseline_ups = count as f64 / secs;
    assert_tables_identical(&fused_state, &base_state.sketch, "ascs_gated");
    assert_eq!(
        (
            fused_state.inserted_updates(),
            fused_state.skipped_updates()
        ),
        (base_state.inserted, base_state.skipped),
        "ascs_gated: gate decisions diverged"
    );

    // --- ASCS gated, plan-driven: the tentpole path — no hashing at all.
    let (secs, planned_state) = time_best(
        reps,
        || AscsSketch::new(geometry, &gated, total, top_k, 42),
        |s| ingest_planned(s, &plan, &updates),
    );
    push("ascs_gated_planned", secs);
    let gated_planned_ups = count as f64 / secs;
    assert_tables_identical(&planned_state, fused_state.sketch(), "ascs_gated_planned");
    assert_eq!(
        (
            planned_state.inserted_updates(),
            planned_state.skipped_updates()
        ),
        (
            fused_state.inserted_updates(),
            fused_state.skipped_updates()
        ),
        "ascs_gated_planned: gate decisions diverged"
    );
    assert_eq!(
        planned_state.top_pairs(),
        fused_state.top_pairs(),
        "ascs_gated_planned: tracker contents diverged"
    );
    let (inserted, skipped) = (
        fused_state.inserted_updates(),
        fused_state.skipped_updates(),
    );
    eprintln!("gate engagement: {inserted} inserted, {skipped} skipped");

    // --- sharded gated ingestion at 1/2/4 shards, batched per chunk.
    let chunk = 65_536usize;
    let mut shard_results: Vec<(usize, f64)> = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let fresh = || ShardedAscs::new(geometry, &gated, total, top_k, 42, shards);
        let (secs, state) = time_best(reps, fresh, |s| {
            for c in updates.chunks(chunk) {
                s.offer_batch(c);
            }
        });
        // The sharded layer must have routed every update somewhere.
        assert_eq!(
            state.inserted_updates() + state.skipped_updates(),
            count as u64
        );
        if shards == 1 {
            // A single shard is sequential gated ingestion: identical table.
            assert_tables_identical(&fused_state, state.workers()[0].sketch(), "sharded_1");
        }
        let name: &'static str = match shards {
            1 => "sharded_1",
            2 => "sharded_2",
            _ => "sharded_4",
        };
        results.push(Measurement {
            name,
            updates: count,
            seconds: secs,
            // On a single hardware thread a multi-shard row measures the
            // sharding layer's coordination overhead, not parallel scaling;
            // the JSON labels it so downstream readers cannot mistake it
            // for a scaling number.
            coordination_overhead_only: parallelism == 1 && shards > 1,
        });
        shard_results.push((shards, count as f64 / secs));
    }

    // --- query sweep: p point queries vs one blocked estimate_many pass on
    // the Figure 1 / Section 8.3 geometry.
    let (query_dim, query_range, query_fill) = if smoke {
        (300u64, 1794usize, 30_000usize)
    } else {
        (1000u64, 20_000usize, 300_000usize)
    };
    let query_pairs = (query_dim * (query_dim - 1) / 2) as usize;
    eprintln!(
        "query sweep: d = {query_dim} (p = {query_pairs} pairs), K×R = 5×{query_range}, \
         {query_fill} fill updates"
    );
    let mut query_cs = CountSketch::new(5, query_range, 42);
    let mut key_walk = 0u64;
    for i in 0..query_fill {
        // A deterministic scattered fill so the sweep reads a busy table.
        key_walk = key_walk.wrapping_add(0x9E37_79B9_7F4A_7C15) % query_pairs as u64;
        query_cs.update(key_walk, ((i % 13) as f64 - 6.0) * 0.05);
    }
    let (query_point_secs, point_answers) = time_best(reps, Vec::new, |out: &mut Vec<f64>| {
        out.clear();
        out.extend((0..query_pairs as u64).map(|key| query_cs.estimate(key)));
    });
    let qplan_start = Instant::now();
    let query_plan = query_cs.build_plan(query_pairs);
    let query_plan_build_seconds = qplan_start.elapsed().as_secs_f64();
    let (query_planned_secs, swept_answers) = time_best(reps, Vec::new, |out: &mut Vec<f64>| {
        query_cs.estimate_many(&query_plan, out)
    });
    assert_eq!(point_answers.len(), swept_answers.len());
    assert!(
        point_answers
            .iter()
            .zip(&swept_answers)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "query sweep: estimate_many diverged from per-key estimates"
    );
    let query_speedup = query_point_secs / query_planned_secs;

    // --- report.
    println!(
        "\nworkload: dense simulation, d = {dim}, T = {n_samples}, K×R = 5×{range}, \
         {count} updates, {parallelism} hardware thread(s)"
    );
    println!("{:<24} {:>12} {:>16}", "variant", "seconds", "updates/sec");
    for m in &results {
        println!(
            "{:<24} {:>12.4} {:>16.0}{}",
            m.name,
            m.seconds,
            m.updates_per_sec(),
            if m.coordination_overhead_only {
                "  (coordination overhead only)"
            } else {
                ""
            }
        );
    }
    let speedup = gated_fused_ups / gated_baseline_ups;
    let planned_speedup = gated_planned_ups / gated_fused_ups;
    println!(
        "\nheadline (ascs_gated): pre-PR {gated_baseline_ups:.0} → fused {gated_fused_ups:.0} \
         updates/sec ({speedup:.2}x single-thread)"
    );
    println!(
        "headline (ascs_gated_planned): fused {gated_fused_ups:.0} → planned \
         {gated_planned_ups:.0} updates/sec ({planned_speedup:.2}x over the PR 2 fused path, \
         {:.2}x over pre-PR; plan built once in {plan_build_seconds:.4}s)",
        gated_planned_ups / gated_baseline_ups
    );
    println!(
        "query sweep (d = {query_dim}, p = {query_pairs}): point loop {:.0} → blocked \
         estimate_many {:.0} queries/sec ({query_speedup:.2}x; plan built once in \
         {query_plan_build_seconds:.4}s)",
        query_pairs as f64 / query_point_secs,
        query_pairs as f64 / query_planned_secs
    );
    let base_shard = shard_results[0].1;
    for &(shards, ups) in &shard_results[1..] {
        println!(
            "shard scaling: {shards} shards → {ups:.0} updates/sec ({:.2}x over 1 shard, \
             {parallelism} hardware thread(s) available)",
            ups / base_shard
        );
    }

    // --- JSON trajectory (hand-rolled: the vendored serde stand-in does
    // not need to grow a serializer for this one file).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"name\": \"dense_simulation\", \"dim\": {dim}, \"samples\": {n_samples}, \"rows\": 5, \"range\": {range}, \"updates\": {count}, \"smoke\": {smoke}, \"available_parallelism\": {parallelism}}},"
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let flag = if m.coordination_overhead_only {
            ", \"coordination_overhead_only\": true"
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"updates_per_sec\": {:.0}{flag}}}{comma}",
            m.name,
            m.seconds,
            m.updates_per_sec()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"workload\": \"ascs_gated dense-simulation\", \"baseline_updates_per_sec\": {:.0}, \"fused_updates_per_sec\": {:.0}, \"speedup\": {:.3}}},",
        gated_baseline_ups, gated_fused_ups, speedup
    );
    let _ = writeln!(
        json,
        "  \"headline_planned\": {{\"workload\": \"ascs_gated_planned dense-simulation\", \"fused_updates_per_sec\": {:.0}, \"planned_updates_per_sec\": {:.0}, \"speedup_over_fused\": {:.3}, \"speedup_over_pre_pr\": {:.3}, \"plan_build_seconds\": {:.6}}},",
        gated_fused_ups,
        gated_planned_ups,
        planned_speedup,
        gated_planned_ups / gated_baseline_ups,
        plan_build_seconds
    );
    let _ = writeln!(
        json,
        "  \"query_sweep\": {{\"dim\": {query_dim}, \"pairs\": {query_pairs}, \"rows\": 5, \"range\": {query_range}, \"point_queries_per_sec\": {:.0}, \"planned_queries_per_sec\": {:.0}, \"speedup\": {:.3}, \"plan_build_seconds\": {:.6}}},",
        query_pairs as f64 / query_point_secs,
        query_pairs as f64 / query_planned_secs,
        query_speedup,
        query_plan_build_seconds
    );
    // Every reported number above sits behind the bit-identity assertions
    // (planned vs fused vs pre-PR tables, planned vs point-query sweeps);
    // reaching this line means they all held. CI greps for this flag.
    let _ = writeln!(json, "  \"bit_identity_asserted\": true,");
    let shard_json: Vec<String> = shard_results
        .iter()
        .map(|(s, ups)| format!("\"{s}\": {ups:.0}"))
        .collect();
    let _ = writeln!(
        json,
        "  \"shard_scaling_updates_per_sec\": {{{}}}",
        shard_json.join(", ")
    );
    let _ = writeln!(json, "}}");
    match std::fs::write(OUTPUT_PATH, &json) {
        Ok(()) => eprintln!("(wrote {OUTPUT_PATH})"),
        Err(e) => eprintln!("warning: could not write {OUTPUT_PATH}: {e}"),
    }

    if speedup < 1.5 {
        eprintln!("warning: fused speedup {speedup:.2}x below the 1.5x target on this machine/run");
    }
    if planned_speedup < 1.3 {
        eprintln!(
            "warning: planned speedup {planned_speedup:.2}x below the 1.3x target on this \
             machine/run"
        );
    }
}
