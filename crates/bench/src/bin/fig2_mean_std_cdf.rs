//! Figure 2: distribution of |mean|/std per feature. The paper uses this to
//! justify the product approximation of eq. (2): when feature means are
//! negligible relative to their standard deviations, `Cov(Y_a, Y_b) ≈
//! E[Y_a Y_b]` and zero entries can be skipped entirely.

use ascs_bench::{emit_table, paper_surrogates, Scale};
use ascs_core::{EstimandKind, StreamContext, UpdateMode};
use ascs_eval::ExperimentTable;
use ascs_numerics::EmpiricalCdf;

fn main() {
    let scale = Scale::from_args();
    let thresholds = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0];

    let datasets = paper_surrogates(scale);
    let mut table = ExperimentTable::new(
        "Figure 2: empirical P(|mean|/std <= x) per dataset feature",
        std::iter::once("x")
            .chain(datasets.iter().map(|d| d.spec().name.as_str()))
            .collect(),
    );

    let cdfs: Vec<EmpiricalCdf> = datasets
        .iter()
        .map(|ds| {
            let mut ctx =
                StreamContext::new(ds.spec().dim, UpdateMode::Product, EstimandKind::Covariance);
            for sample in ds.all_samples() {
                ctx.ingest(&sample, |_| {});
            }
            EmpiricalCdf::new(ctx.mean_to_std_ratios().into_iter().flatten())
        })
        .collect();

    for &x in &thresholds {
        let mut row = vec![ascs_eval::TableCell::Number(x)];
        for cdf in &cdfs {
            row.push(cdf.eval(x).into());
        }
        table.push_row(row);
    }

    emit_table(&table, "fig2_mean_std_cdf");
    println!(
        "Note: the sparse surrogates (rcv1, sector) have non-negligible mean/std because \
         non-negative sparse features are one-sided — the same effect the paper's sparse \
         text datasets show; dense centred surrogates sit near zero."
    );
}
