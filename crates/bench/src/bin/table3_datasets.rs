//! Table 3: the dataset inventory used for the rigorous evaluation —
//! dimensionality, sample count and the chosen signal proportion `α`,
//! together with the measured per-sample density of the surrogates.

use ascs_bench::{emit_table, paper_surrogates, Scale};
use ascs_eval::ExperimentTable;

fn main() {
    let scale = Scale::from_args();
    let mut table = ExperimentTable::new(
        "Table 3: evaluation datasets (surrogates)",
        vec![
            "dataset",
            "features (eval)",
            "samples",
            "alpha",
            "avg non-zeros / sample",
        ],
    );
    for ds in paper_surrogates(scale) {
        table.push_row(vec![
            ds.spec().name.clone().into(),
            ds.spec().dim.into(),
            ds.len().into(),
            ds.spec().alpha.into(),
            ds.average_nonzeros(100).into(),
        ]);
    }
    emit_table(&table, "table3_datasets");
    println!(
        "Paper reference (Table 3): gisette 5000x6000 (alpha 2%), epsilon 2000x400k (10%), \
         cifar10 3072x50k (10%), sector 55k x 6412 (0.5%), rcv1 47k x 20k (0.5%); the paper \
         evaluates on 1000 randomly selected features of each."
    );
}
