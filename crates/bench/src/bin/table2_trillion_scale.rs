//! Table 2: mean of the top-1000 correlations reported by CS and ASCS on
//! the trillion-scale datasets (URL and DNA k-mer), across sketch memory
//! budgets.
//!
//! The surrogate workloads are scaled down in dimensionality but the
//! *compression ratios* (unique pairs per sketch word) sweep the same
//! regime as the paper's 20 MB → 20 GB budgets, which is what determines
//! whether the sketch collapses under collision noise. The "true"
//! correlation of each reported pair is computed exactly with a targeted
//! second pass over the stream (possible here because the surrogate is
//! re-generatable; the paper instead reports the sketch-free correlation of
//! the reported pairs).

use ascs_bench::{emit_table, Scale};
use ascs_core::{
    AscsConfig, CovarianceEstimator, EstimandKind, SketchBackend, SketchGeometry, UpdateMode,
};
use ascs_datasets::{TrillionScaleDataset, TrillionSpec};
use ascs_eval::ExperimentTable;
use ascs_numerics::RunningCovariance;
use std::collections::HashMap;

/// Exact correlation of a specific set of pairs, computed with one targeted
/// pass over the stream.
fn exact_correlation_of_pairs(
    dataset: &TrillionScaleDataset,
    pairs: &[(u64, u64)],
    samples: u64,
) -> HashMap<(u64, u64), f64> {
    let mut accum: HashMap<(u64, u64), RunningCovariance> = pairs
        .iter()
        .map(|&p| (p, RunningCovariance::new()))
        .collect();
    for i in 0..samples {
        let s = dataset.sample_at(i);
        for (&(a, b), cov) in accum.iter_mut() {
            cov.push(s.value(a), s.value(b));
        }
    }
    accum
        .into_iter()
        .map(|(k, cov)| (k, cov.correlation()))
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let dim = scale.pick(5_000u64, 50_000);
    let total = scale.pick(1_500u64, 10_000);
    let top_k = scale.pick(200usize, 1000);

    let workloads = vec![
        (
            "URL-like",
            TrillionScaleDataset::new(TrillionSpec::url_like(dim, 9)),
        ),
        (
            "DNA-kmer-like",
            TrillionScaleDataset::new(TrillionSpec::dna_kmer_like(dim, 9)),
        ),
    ];

    let mut table = ExperimentTable::new(
        format!(
            "Table 2: mean of top-{top_k} reported correlations (scaled surrogates, d = {dim})"
        ),
        vec![
            "dataset",
            "budget (floats)",
            "compression p/(K*R)",
            "CS",
            "ASCS",
            "ASCS (4 shards)",
        ],
    );

    for (name, dataset) in &workloads {
        let p = dataset.num_pairs();
        // Generate the stream once per workload, in parallel, instead of
        // regenerating it per backend/budget.
        let samples = dataset.samples_par(total as usize, 4);
        // Sweep three budgets spanning ~10^5x down to ~10^3x compression.
        let budgets = [
            (p / 200_000).max(500) as usize,
            (p / 20_000).max(2_500) as usize,
            (p / 2_000).max(12_500) as usize,
        ];
        let signal_count = dataset.signal_keys().len();
        eprintln!("{name}: p = {p}, {} planted near-1.0 pairs", signal_count);

        for budget in budgets {
            let geometry = SketchGeometry::from_budget(5, budget);
            let config = AscsConfig {
                dim,
                total_samples: total,
                geometry,
                alpha: (signal_count as f64 / p as f64).max(1e-9),
                signal_strength: 0.5,
                sigma: 1.0,
                delta: 0.05,
                delta_star: 0.20,
                tau0: 1e-4,
                estimand: EstimandKind::Correlation,
                update_mode: UpdateMode::Product,
                seed: 31,
                top_k_capacity: top_k,
            };
            let mut row_means = Vec::new();
            for backend in [
                SketchBackend::VanillaCs,
                SketchBackend::Ascs,
                SketchBackend::ShardedAscs { shards: 4 },
            ] {
                let (mut estimator, _) = CovarianceEstimator::new_or_fallback(config, backend);
                for sample in &samples {
                    estimator.process_sample(sample);
                }
                let reported: Vec<(u64, u64)> = estimator
                    .top_pairs(top_k)
                    .into_iter()
                    .map(|pair| (pair.a, pair.b))
                    .collect();
                let exact = exact_correlation_of_pairs(dataset, &reported, total);
                let mean = if reported.is_empty() {
                    0.0
                } else {
                    reported.iter().map(|p| exact[p].abs()).sum::<f64>() / reported.len() as f64
                };
                row_means.push(mean);
            }
            table.push_row(vec![
                (*name).into(),
                budget.into(),
                (p as f64 / (geometry.words() as f64)).into(),
                row_means[0].into(),
                row_means[1].into(),
                row_means[2].into(),
            ]);
        }
    }

    emit_table(&table, "table2_trillion_scale");
    println!(
        "Expected shape (paper Table 2): at the tightest budget CS reports mostly collision noise \
         (low mean correlation) while ASCS keeps reporting near-1.0 pairs; at the largest budget \
         both succeed. ASCS reaches a given quality with roughly an order of magnitude less memory. \
         The sharded column ingests the same stream across 4 key-partitioned workers (each gating \
         against a shard-local — hence slightly cleaner — estimate) and should match or exceed \
         sequential ASCS."
    );
}
