//! Figure 6: accuracy (maximum F1 score) of locating the top signal
//! correlations.
//!
//! Panels (a)–(e): for each evaluation dataset, CS vs ASCS with the signal
//! strength `u` set to several percentiles of the pilot estimate — ASCS
//! should beat CS across the whole range (robustness to `u`).
//! Panel (f): ASCS on gisette with the assumed `α` swept around its chosen
//! value (robustness to `α`).
//!
//! Pass `--sweep alpha` to run only the panel-(f) sweep, `--sweep u`
//! (default) for panels (a)–(e), or `--sweep schedule` for the threshold
//! schedule ablation described in DESIGN.md.

use ascs_bench::{
    emit_table, exact_correlations, full_ranking, paper_surrogates, run_backend, section83_config,
    Scale,
};
use ascs_core::{CovarianceEstimator, SketchBackend, ThresholdSchedule};
use ascs_eval::{max_f1_score, ExperimentTable};
use std::collections::HashSet;

fn sweep_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--sweep" {
            return w[1].clone();
        }
    }
    "u".to_string()
}

/// Ground-truth signal sets of several sizes: the top-N pairs of the exact
/// correlation matrix, for N a few multiples of the paper's x-axis points.
fn signal_sets(exact: &ascs_eval::ExactMatrix, sizes: &[usize]) -> Vec<(usize, HashSet<u64>)> {
    sizes
        .iter()
        .map(|&n| (n, exact.top_keys_by_magnitude(n).into_iter().collect()))
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let sweep = sweep_arg();
    let sizes = scale.pick(vec![25usize, 50, 100, 250], vec![100usize, 250, 500, 1000]);

    match sweep.as_str() {
        "alpha" => run_alpha_sweep(scale, &sizes),
        "schedule" => run_schedule_ablation(scale, &sizes),
        _ => run_u_sweep(scale, &sizes),
    }
}

/// Panels (a)–(e): robustness to the assumed signal strength u.
fn run_u_sweep(scale: Scale, sizes: &[usize]) {
    let datasets = paper_surrogates(scale);
    let u_percentiles = [90.0, 95.0, 98.0, 99.5];

    for ds in &datasets {
        let samples = ds.all_samples();
        let exact = exact_correlations(&samples);
        let config = section83_config(ds, scale, 41);
        let truth_sets = signal_sets(&exact, sizes);

        let mut table = ExperimentTable::new(
            format!(
                "Figure 6 ({}): max F1 of locating the top-N signal correlations",
                ds.spec().name
            ),
            vec![
                "algorithm",
                "N=sizes[0]",
                "N=sizes[1]",
                "N=sizes[2]",
                "N=sizes[3]",
            ],
        );

        // Vanilla CS baseline.
        let cs = run_backend(config, SketchBackend::VanillaCs, &samples);
        let cs_ranking = full_ranking(&cs);
        let mut row = vec![ascs_eval::TableCell::from("CS")];
        for (_, truth) in &truth_sets {
            row.push(max_f1_score(&cs_ranking, truth).into());
        }
        table.push_row(row);

        // ASCS with u taken at several percentiles of the exact |corr|
        // distribution (standing in for the pilot estimate μ̂).
        for &pct in &u_percentiles {
            let mut cfg = config;
            let abs: Vec<f64> = exact.values().iter().map(|v| v.abs()).collect();
            cfg.signal_strength = ascs_numerics::percentile(&abs, pct)
                .unwrap_or(0.3)
                .max(cfg.tau0 * 2.0)
                .max(1e-3);
            let ascs = run_backend(cfg, SketchBackend::Ascs, &samples);
            let ranking = full_ranking(&ascs);
            let mut row = vec![ascs_eval::TableCell::from(format!("ASCS (u = {pct} %ile)"))];
            for (_, truth) in &truth_sets {
                row.push(max_f1_score(&ranking, truth).into());
            }
            table.push_row(row);
        }
        emit_table(&table, &format!("fig6_{}", ds.spec().name));
    }
    println!(
        "Expected shape (paper Figure 6 a–e): ASCS beats CS for every choice of u across the \
         percentile range — the improvement is robust to the signal-strength guess."
    );
}

/// Panel (f): robustness to the assumed signal proportion alpha (gisette).
fn run_alpha_sweep(scale: Scale, sizes: &[usize]) {
    let ds = &paper_surrogates(scale)[0]; // gisette
    let samples = ds.all_samples();
    let exact = exact_correlations(&samples);
    let truth_sets = signal_sets(&exact, sizes);
    let base = section83_config(ds, scale, 43);

    let mut table = ExperimentTable::new(
        "Figure 6 (f): ASCS robustness to the assumed alpha — gisette surrogate",
        vec![
            "assumed alpha",
            "N=sizes[0]",
            "N=sizes[1]",
            "N=sizes[2]",
            "N=sizes[3]",
        ],
    );
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = base;
        cfg.alpha = (base.alpha * factor).clamp(1e-5, 0.5);
        let ascs = run_backend(cfg, SketchBackend::Ascs, &samples);
        let ranking = full_ranking(&ascs);
        let mut row = vec![ascs_eval::TableCell::Number(cfg.alpha)];
        for (_, truth) in &truth_sets {
            row.push(max_f1_score(&ranking, truth).into());
        }
        table.push_row(row);
    }
    emit_table(&table, "fig6_alpha_sweep");
    println!(
        "Expected shape (paper Figure 6 f): the F1 curves barely move as the assumed alpha is \
         scaled by 4x in either direction."
    );
}

/// DESIGN.md ablation: linear vs constant threshold schedule.
fn run_schedule_ablation(scale: Scale, sizes: &[usize]) {
    let ds = &paper_surrogates(scale)[0];
    let samples = ds.all_samples();
    let exact = exact_correlations(&samples);
    let truth_sets = signal_sets(&exact, sizes);
    let config = section83_config(ds, scale, 47);

    let mut table = ExperimentTable::new(
        "Ablation: threshold schedule (linear ramp vs constant) — gisette surrogate",
        vec![
            "schedule",
            "N=sizes[0]",
            "N=sizes[1]",
            "N=sizes[2]",
            "N=sizes[3]",
        ],
    );

    // Linear (the paper's schedule), via the normal solver path.
    let ascs = run_backend(config, SketchBackend::Ascs, &samples);
    let hp = *ascs.hyperparameters().expect("solved");
    let linear_ranking = full_ranking(&ascs);
    let mut row = vec![ascs_eval::TableCell::from(format!(
        "linear (T0 = {}, theta = {:.3})",
        hp.t0, hp.theta
    ))];
    for (_, truth) in &truth_sets {
        row.push(max_f1_score(&linear_ranking, truth).into());
    }
    table.push_row(row);

    // Constant threshold at tau0 (theta = 0): same exploration length.
    let mut constant_hp = hp;
    constant_hp.theta = 0.0;
    let mut constant =
        CovarianceEstimator::with_hyperparameters(config, SketchBackend::Ascs, Some(constant_hp));
    for s in &samples {
        constant.process_sample(s);
    }
    assert!(matches!(
        constant_hp.schedule(config.total_samples),
        ThresholdSchedule::Linear { theta, .. } if theta == 0.0
    ));
    let constant_ranking = full_ranking(&constant);
    let mut row = vec![ascs_eval::TableCell::from("constant (theta = 0)")];
    for (_, truth) in &truth_sets {
        row.push(max_f1_score(&constant_ranking, truth).into());
    }
    table.push_row(row);

    emit_table(&table, "fig6_schedule_ablation");
    println!(
        "Expected shape: the rising (linear) threshold filters progressively more noise and should \
         match or beat the constant threshold, especially on the larger signal sets."
    );
}
