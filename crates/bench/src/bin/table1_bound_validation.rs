//! Table 1: validation of the Theorem 1 and Theorem 2 bounds.
//!
//! For a range of targets δ (probability of missing a signal pair at the
//! end of exploration) and δ* − δ (probability of dropping a surviving
//! signal pair during the sampling phase), Algorithm 3 picks `T0` and `θ`,
//! ASCS is run on replicated datasets, and the observed miss frequencies
//! are compared against the targets. The paper's claim — reproduced here —
//! is that the observed probabilities stay below their targets.

use ascs_bench::{emit_table, Scale};
use ascs_core::{
    AscsConfig, AscsSketch, EstimandKind, HyperParameterSolver, SketchGeometry, StreamContext,
    TheoryBounds, UpdateMode,
};
use ascs_datasets::{SimulatedDataset, SimulationSpec};
use ascs_eval::ExperimentTable;
use std::collections::HashSet;

struct MissRates {
    missed_at_t0: f64,
    missed_during_sampling: f64,
}

/// Runs ASCS with explicit hyperparameters on `replicates` replicate streams
/// and measures (a) the fraction of signal pairs whose estimate is below
/// τ(T0) at the end of exploration and (b) the fraction of surviving signal
/// pairs that fall below the threshold at some later point.
fn measure_miss_rates(
    dataset: &SimulatedDataset,
    config: AscsConfig,
    t0: u64,
    theta: f64,
    replicates: u64,
) -> MissRates {
    let signal_keys: HashSet<u64> = dataset.signal_keys().into_iter().collect();
    let mut signal_trials = 0u64;
    let mut missed_t0 = 0u64;
    let mut survivor_trials = 0u64;
    let mut missed_later = 0u64;

    for r in 0..replicates {
        let hp = ascs_core::HyperParameters {
            t0,
            theta,
            tau0: config.tau0,
            delta: config.delta,
            delta_star: config.delta_star,
        };
        let mut sketch = AscsSketch::new(
            config.geometry,
            &hp,
            config.total_samples,
            config.top_k_capacity,
            config.seed ^ r,
        );
        let mut ctx = StreamContext::new(config.dim, config.update_mode, config.estimand);
        let schedule = hp.schedule(config.total_samples);

        let mut survived: HashSet<u64> = HashSet::new();
        let mut dropped_later: HashSet<u64> = HashSet::new();
        for t in 1..=config.total_samples {
            let sample = dataset.sample_at(r * config.total_samples + (t - 1));
            ctx.ingest(&sample, |update| {
                sketch.offer(update.key, update.value, t);
            });
            if t == t0 {
                // End of exploration: check every signal pair against τ(T0).
                for &key in &signal_keys {
                    signal_trials += 1;
                    if sketch.estimate(key).abs() < schedule.tau(t0) {
                        missed_t0 += 1;
                    } else {
                        survived.insert(key);
                    }
                }
            } else if t > t0 {
                for &key in &survived {
                    if !dropped_later.contains(&key) && sketch.estimate(key).abs() < schedule.tau(t)
                    {
                        dropped_later.insert(key);
                    }
                }
            }
        }
        survivor_trials += survived.len() as u64;
        missed_later += dropped_later.len() as u64;
    }

    MissRates {
        missed_at_t0: missed_t0 as f64 / signal_trials.max(1) as f64,
        missed_during_sampling: missed_later as f64 / survivor_trials.max(1) as f64,
    }
}

fn main() {
    let scale = Scale::from_args();
    let dim = scale.pick(100u64, 1000);
    let total = scale.pick(600u64, 1000);
    let replicates = scale.pick(6u64, 30);

    let dataset = SimulatedDataset::new(SimulationSpec {
        dim,
        alpha: 0.005,
        rho_min: 0.5,
        rho_max: 0.95,
        block_size: 4,
        seed: 101,
    });
    let p = dataset.indexer().num_pairs();
    let range = ((p / 20) / 5).max(16) as usize; // R = p/20 split over K=5 as in Section 7.3
    let geometry = SketchGeometry::new(5, range);
    let alpha = dataset.realised_alpha();
    let u = 0.5;
    let sigma = 1.0;

    let base_config = AscsConfig {
        dim,
        total_samples: total,
        geometry,
        alpha,
        signal_strength: u,
        sigma,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 7,
        top_k_capacity: 100,
    };
    let bounds = TheoryBounds::new(p, geometry.range, geometry.rows, alpha, sigma, u, total);
    let solver = HyperParameterSolver::new(bounds);

    // --- Theorem 1 sweep: vary δ, measure the miss rate at T0. ---
    let mut t1 = ExperimentTable::new(
        "Table 1 (top): target delta vs observed P(miss at T0) — simulation",
        vec![
            "target delta",
            "T0 from Algorithm 3",
            "observed miss rate",
            "bound holds",
        ],
    );
    // Anchor the sweep at the Section 8.1 default δ = max(1.01·SP, 0.05):
    // at paper scale the saturation probability is tiny and the sweep is the
    // printed 0.05..0.10; at smoke scale the compressed sketch has a larger
    // SP and a fixed 0.05 would make every row infeasible.
    let base_delta = solver.default_delta();
    let delta_sweep: Vec<f64> = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
        .iter()
        .map(|off| base_delta + off)
        .collect();
    for &delta in &delta_sweep {
        let t0 = match solver.solve_t0(base_config.tau0, delta) {
            Ok(t0) => t0,
            Err(e) => {
                eprintln!("delta = {delta}: infeasible ({e})");
                continue;
            }
        };
        let theta = solver.solve_theta(t0, base_config.tau0, 0.15);
        let rates = measure_miss_rates(&dataset, base_config, t0, theta, replicates);
        t1.push_row(vec![
            delta.into(),
            t0.into(),
            rates.missed_at_t0.into(),
            if rates.missed_at_t0 <= delta {
                "yes"
            } else {
                "NO"
            }
            .into(),
        ]);
    }
    emit_table(&t1, "table1_theorem1");

    // --- Theorem 2 sweep: fix δ at the smallest feasible value of the
    // sweep above (the Section 8.1 default at paper scale), vary the
    // sampling budget δ* − δ. ---
    let t0 = delta_sweep
        .iter()
        .find_map(|&d| solver.solve_t0(base_config.tau0, d).ok())
        .expect("no delta in the sweep is feasible for the Table 1 setup");
    let mut t2 = ExperimentTable::new(
        "Table 1 (bottom): target delta*-delta vs observed P(miss during sampling) — simulation",
        vec![
            "target delta*-delta",
            "theta from Algorithm 3",
            "observed miss rate",
            "bound holds",
        ],
    );
    for &budget in &[0.05, 0.07, 0.09, 0.11, 0.13, 0.15] {
        let theta = solver.solve_theta(t0, base_config.tau0, budget);
        let rates = measure_miss_rates(&dataset, base_config, t0, theta, replicates);
        t2.push_row(vec![
            budget.into(),
            theta.into(),
            rates.missed_during_sampling.into(),
            if rates.missed_during_sampling <= budget {
                "yes"
            } else {
                "NO"
            }
            .into(),
        ]);
    }
    emit_table(&t2, "table1_theorem2");

    println!(
        "Expected shape (paper Table 1): every observed probability sits below its target — \
         the bounds are conservative."
    );
}
