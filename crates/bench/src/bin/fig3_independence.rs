//! Figure 3: histogram of the absolute correlations *between empirical
//! covariance entries*, validating the independence assumption of
//! Section 6.1. Thousands of replicate datasets are generated, the
//! empirical covariance of a subset of pairs is computed on each replicate
//! at t = 150, and the cross-replicate correlation between entry pairs is
//! histogrammed — the paper reports that almost all of it sits below 0.02.

use ascs_bench::{emit_table, Scale};
use ascs_core::{EstimandKind, PairIndexer};
use ascs_datasets::{
    BootstrapResampler, SimulatedDataset, SimulationSpec, SurrogateDataset, SurrogateSpec,
};
use ascs_eval::{ExactMatrix, ExperimentTable};
use ascs_numerics::{Histogram, RunningCovariance};

/// Collects, for `replicates` replicate datasets, the empirical covariance
/// of `tracked` randomly spread pair entries at time `t`, then returns the
/// histogram of |correlation| between all tracked entry pairs.
fn cross_entry_correlations(
    replicate_samples: impl Fn(u64) -> Vec<ascs_core::Sample>,
    dim: u64,
    replicates: u64,
    tracked: usize,
) -> Histogram {
    let indexer = PairIndexer::new(dim);
    let p = indexer.num_pairs();
    let stride = (p / tracked as u64).max(1);
    let tracked_keys: Vec<u64> = (0..tracked as u64).map(|i| (i * stride) % p).collect();

    // values[r][j] = empirical covariance of tracked entry j in replicate r.
    let mut values = vec![vec![0.0f64; tracked_keys.len()]; replicates as usize];
    for r in 0..replicates {
        let samples = replicate_samples(r);
        let exact = ExactMatrix::from_samples(&samples, EstimandKind::Covariance);
        for (j, &key) in tracked_keys.iter().enumerate() {
            values[r as usize][j] = exact.value_by_key(key);
        }
    }

    let mut hist = Histogram::new(0.0, 1.0, 50);
    for i in 0..tracked_keys.len() {
        for j in (i + 1)..tracked_keys.len() {
            let mut cov = RunningCovariance::new();
            for row in values.iter().take(replicates as usize) {
                cov.push(row[i], row[j]);
            }
            hist.push(cov.correlation().abs());
        }
    }
    hist
}

fn main() {
    let scale = Scale::from_args();
    let replicates = scale.pick(120u64, 2000);
    let dim = scale.pick(60u64, 1000);
    let t = 150usize;
    let tracked = scale.pick(40usize, 120);

    // Simulation replicates: disjoint sample windows of the same process.
    let sim = SimulatedDataset::new(SimulationSpec {
        dim,
        alpha: 0.005,
        rho_min: 0.5,
        rho_max: 0.95,
        block_size: 4,
        seed: 33,
    });
    let sim_hist =
        cross_entry_correlations(|r| sim.samples(r * t as u64, t), dim, replicates, tracked);

    // "gisette" replicates: bootstrap resamples of one finite dataset, as in
    // Section 6.2.
    let gisette = SurrogateDataset::new(SurrogateSpec::gisette().scaled(dim, 2000));
    let base = gisette.all_samples();
    let boot = BootstrapResampler::new(base, 77);
    let gis_hist = cross_entry_correlations(|r| boot.replicate(r, t), dim, replicates, tracked);

    let mut table = ExperimentTable::new(
        "Figure 3: fraction of |corr(entry_i, entry_j)| below x (independence check)",
        vec!["x", "simulation", "gisette (bootstrap)"],
    );
    for &x in &[0.02, 0.05, 0.1, 0.2, 0.3, 0.5] {
        table.push_row(vec![
            x.into(),
            sim_hist.fraction_below(x).into(),
            gis_hist.fraction_below(x).into(),
        ]);
    }
    emit_table(&table, "fig3_independence");
    println!(
        "Expected shape (paper Figure 3): the overwhelming majority of cross-entry correlations \
         are close to zero (the paper reports >97% below 0.02 on its simulation at full replication)."
    );
}
