//! Table 4: mean exact correlation of the top `f · α · p` reported pairs,
//! for fractions f ∈ {0.01, 0.05, 0.1, 0.25, 0.5, 1}, comparing vanilla CS,
//! Augmented Sketch and ASCS on the five evaluation datasets.

use ascs_bench::{
    emit_table, exact_correlations, full_ranking, paper_surrogates, run_backend, section83_config,
    Scale,
};
use ascs_core::SketchBackend;
use ascs_eval::ExperimentTable;

fn main() {
    let scale = Scale::from_args();
    let fractions = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0];
    let datasets = paper_surrogates(scale);

    let mut table = ExperimentTable::new(
        "Table 4: mean exact |correlation| of the top f*alpha*p reported pairs",
        std::iter::once("fraction of alpha*p")
            .chain(std::iter::once("algorithm"))
            .chain(datasets.iter().map(|d| d.spec().name.as_str()))
            .collect(),
    );

    // Precompute per-dataset artefacts: samples, exact matrix, rankings.
    struct DatasetRun {
        exact: ascs_eval::ExactMatrix,
        rankings: Vec<(&'static str, Vec<u64>)>,
        alpha_p: f64,
    }
    let mut runs = Vec::new();
    for ds in &datasets {
        let samples = ds.all_samples();
        let exact = exact_correlations(&samples);
        let config = section83_config(ds, scale, 17);
        let backends: Vec<(&'static str, SketchBackend)> = vec![
            ("CS", SketchBackend::VanillaCs),
            (
                "ASketch",
                SketchBackend::AugmentedSketch {
                    filter_capacity: 256,
                },
            ),
            ("ASCS", SketchBackend::Ascs),
        ];
        let mut rankings = Vec::new();
        for (name, backend) in backends {
            let estimator = run_backend(config, backend, &samples);
            rankings.push((name, full_ranking(&estimator)));
        }
        let p = ds.spec().dim * (ds.spec().dim - 1) / 2;
        runs.push(DatasetRun {
            exact,
            rankings,
            alpha_p: ds.spec().alpha * p as f64,
        });
        eprintln!("finished dataset {}", ds.spec().name);
    }

    for &fraction in &fractions {
        for algo_idx in 0..3 {
            let algo_name = runs[0].rankings[algo_idx].0;
            let mut row = vec![
                ascs_eval::TableCell::Number(fraction),
                ascs_eval::TableCell::from(algo_name),
            ];
            for run in &runs {
                let k = ((fraction * run.alpha_p).round() as usize).max(1);
                let (_, ranking) = &run.rankings[algo_idx];
                let mean = ascs_bench::mean_exact_correlation(ranking, &run.exact, k);
                row.push(mean.into());
            }
            table.push_row(row);
        }
    }

    emit_table(&table, "table4_top_fraction");
    println!(
        "Expected shape (paper Table 4): ASCS matches or beats CS and ASketch at every fraction, \
         with the largest gains on the small fractions (the strongest signals); all methods decay \
         as the fraction approaches 1 because weaker signals are inherently harder."
    );
}
