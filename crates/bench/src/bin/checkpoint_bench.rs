//! Sketch lifecycle harness: checkpoint save/restore bandwidth and the cost
//! of merging two half-stream checkpoints, with the codec's correctness
//! contract asserted before any number is reported.
//!
//! Three flags land in `BENCH_ingest.json` under `"checkpoint"` (CI greps
//! for them):
//!
//! * `checkpoint_roundtrip_asserted` — a mid-stream checkpoint of a gated
//!   ASCS estimator restores to bit-identical estimates and counters, and a
//!   sharded worker set round-trips the same way;
//! * `corrupt_restore_rejected` — truncated bytes, a flipped magic byte and
//!   a bumped format version all come back as typed [`CodecError`]s, never
//!   panics;
//! * `merge_bit_identity_asserted` — two vanilla-CS estimators over
//!   disjoint dyadic stream halves, serialized and merged via linearity,
//!   equal one sequential run bit for bit.
//!
//! The bandwidth numbers are best-of-N wall clock over the serialized size
//! (sketch table + tracker + stream context), and the merge cost is the
//! `merge_from_checkpoint` call alone (the restore of the incoming record
//! is timed separately as `restore_mb_per_sec`).
//!
//! `--smoke` shrinks the workload for CI. The section is *merged* into the
//! existing `BENCH_ingest.json` (written by the `throughput` bin) rather
//! than replacing the file.

use ascs_core::{
    AscsConfig, CodecError, CovarianceEstimator, EstimandKind, HyperParameters, Sample,
    SketchBackend, SketchGeometry, UpdateMode,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Where the JSON trajectory lands: the repository root, independent of the
/// invocation directory.
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");

fn hyper_gated(total: u64) -> HyperParameters {
    HyperParameters {
        t0: (total / 10).max(1),
        theta: 0.2,
        tau0: 1e-4,
        delta: 0.05,
        delta_star: 0.20,
    }
}

fn config(dim: u64, total: u64, range: usize, seed: u64) -> AscsConfig {
    AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, range),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 64,
    }
}

/// Deterministic dyadic samples (values in {-1, -0.5, 0, 0.5, 1}): with a
/// power-of-two `T`, every pair-update weight and every bucket sum is
/// exactly representable, so a re-associated merge must be bit-exact.
fn dyadic_samples(dim: u64, total: u64) -> Vec<Sample> {
    (1..=total)
        .map(|t| {
            let values: Vec<f64> = (0..dim)
                .map(|f| ((t * 31 + f * 7) % 5) as f64 * 0.5 - 1.0)
                .collect();
            Sample::dense(values)
        })
        .collect()
}

fn best_of<R>(reps: usize, mut work: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = work();
    for _ in 0..reps {
        let start = Instant::now();
        out = work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn assert_bit_identical(a: &CovarianceEstimator, b: &CovarianceEstimator, what: &str) {
    assert_eq!(
        a.processed_samples(),
        b.processed_samples(),
        "{what}: stream time diverged"
    );
    assert_eq!(
        a.update_counts(),
        b.update_counts(),
        "{what}: gate counters diverged"
    );
    let (ea, eb) = (a.all_estimates(), b.all_estimates());
    assert!(
        ea.iter().zip(&eb).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: estimates diverged"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, total, range, reps) = if smoke {
        (60u64, 64u64, 4096usize, 2usize)
    } else {
        (160u64, 256u64, 16384usize, 7usize)
    };
    let samples = dyadic_samples(dim, total);
    let half = samples.len() / 2;

    // ------------------------------------------------------------------
    // 1. Round trip: a gated ASCS estimator checkpointed mid-stream must
    //    restore bit-identically — that checkpoint is also the bandwidth
    //    specimen.
    // ------------------------------------------------------------------
    eprintln!("ingesting {total} samples of d = {dim} (gated ASCS, K×R = 5×{range})...");
    let cfg = config(dim, total, range, 42);
    let hp = Some(hyper_gated(total));
    let mut gated = CovarianceEstimator::with_hyperparameters(cfg, SketchBackend::Ascs, hp);
    for s in &samples[..half] {
        gated.process_sample(s);
    }

    let mut bytes = Vec::new();
    gated.checkpoint(&mut bytes).expect("checkpoint failed");
    let record_bytes = bytes.len();
    let mb = record_bytes as f64 / (1024.0 * 1024.0);

    let (save_secs, _) = best_of(reps, || {
        let mut sink = Vec::with_capacity(record_bytes);
        gated.checkpoint(&mut sink).expect("checkpoint failed");
        sink
    });
    let (restore_secs, restored) = best_of(reps, || {
        CovarianceEstimator::resume(&mut bytes.as_slice()).expect("restore failed")
    });
    assert_bit_identical(&gated, &restored, "gated roundtrip");

    // The restored estimator must *continue* exactly as the original.
    let mut original_run = gated;
    let mut resumed_run = restored;
    for s in &samples[half..] {
        original_run.process_sample(s);
        resumed_run.process_sample(s);
    }
    assert_bit_identical(&original_run, &resumed_run, "gated resumed stream");

    // Sharded worker state round-trips through the same codec.
    let mut sharded = CovarianceEstimator::with_hyperparameters(
        cfg,
        SketchBackend::ShardedAscs { shards: 4 },
        hp,
    );
    for s in &samples[..half] {
        sharded.process_sample(s);
    }
    let mut sharded_bytes = Vec::new();
    sharded
        .checkpoint(&mut sharded_bytes)
        .expect("checkpoint failed");
    let sharded_back =
        CovarianceEstimator::resume(&mut sharded_bytes.as_slice()).expect("restore failed");
    assert_bit_identical(&sharded, &sharded_back, "sharded roundtrip");
    let checkpoint_roundtrip_asserted = true;

    // ------------------------------------------------------------------
    // 2. Corruption: truncation, a flipped magic byte and a bumped format
    //    version must all be typed errors.
    // ------------------------------------------------------------------
    for cut in [0, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                CovarianceEstimator::resume(&mut &bytes[..cut]),
                Err(CodecError::Truncated)
            ),
            "truncation at {cut} was not reported as Truncated"
        );
    }
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xFF;
    assert!(matches!(
        CovarianceEstimator::resume(&mut flipped.as_slice()),
        Err(CodecError::BadMagic(_))
    ));
    let mut bumped = bytes.clone();
    bumped[4] = 0xFE;
    assert!(matches!(
        CovarianceEstimator::resume(&mut bumped.as_slice()),
        Err(CodecError::UnsupportedVersion(_))
    ));
    let corrupt_restore_rejected = true;

    // ------------------------------------------------------------------
    // 3. Merge: two vanilla-CS estimators over disjoint stream halves,
    //    merged from a checkpoint, equal one sequential run bit for bit.
    //    The timed section is the merge call alone.
    // ------------------------------------------------------------------
    eprintln!("merging two disjoint-half checkpoints (vanilla CS)...");
    let vanilla = |n: usize| {
        let mut est = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).expect("config");
        for s in &samples[..n] {
            est.process_sample(s);
        }
        est
    };
    let mut seq = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).expect("config");
    for s in &samples {
        seq.process_sample(s);
    }
    let first = vanilla(half);
    let mut second = CovarianceEstimator::new(cfg, SketchBackend::VanillaCs).expect("config");
    for s in &samples[half..] {
        second.process_sample(s);
    }
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    first.checkpoint(&mut bytes_a).expect("checkpoint failed");
    second.checkpoint(&mut bytes_b).expect("checkpoint failed");
    let mut merge_best = f64::INFINITY;
    let mut merged = CovarianceEstimator::resume(&mut bytes_a.as_slice()).expect("restore failed");
    for _ in 0..reps.max(1) {
        let mut m = CovarianceEstimator::resume(&mut bytes_a.as_slice()).expect("restore failed");
        let start = Instant::now();
        m.merge_from_checkpoint(&mut bytes_b.as_slice())
            .expect("merge failed");
        merge_best = merge_best.min(start.elapsed().as_secs_f64());
        merged = m;
    }
    assert_bit_identical(&seq, &merged, "vanilla checkpoint merge");
    let merge_bit_identity_asserted = true;

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let save_mbps = mb / save_secs;
    let restore_mbps = mb / restore_secs;
    println!("\ncheckpoint lifecycle (d = {dim}, T = {total}, K×R = 5×{range}):");
    println!("  record size        {record_bytes} bytes ({mb:.2} MiB)");
    println!("  save               {save_secs:.6} s  ({save_mbps:.1} MiB/s)");
    println!("  restore            {restore_secs:.6} s  ({restore_mbps:.1} MiB/s)");
    println!("  merge (linearity)  {merge_best:.6} s per half-checkpoint");
    println!("  roundtrip / corruption / merge contracts: all asserted");

    let mut section = String::new();
    let _ = write!(
        section,
        "{{\"smoke\": {smoke}, \"dim\": {dim}, \"samples\": {total}, \"rows\": 5, \"range\": {range}, \
         \"record_bytes\": {record_bytes}, \"save_mb_per_sec\": {save_mbps:.1}, \
         \"restore_mb_per_sec\": {restore_mbps:.1}, \"merge_seconds\": {merge_best:.6}, \
         \"checkpoint_roundtrip_asserted\": {checkpoint_roundtrip_asserted}, \
         \"corrupt_restore_rejected\": {corrupt_restore_rejected}, \
         \"merge_bit_identity_asserted\": {merge_bit_identity_asserted}}}"
    );
    merge_into_trajectory(&section);
}

/// Splices the `"checkpoint"` section into `BENCH_ingest.json`, preserving
/// whatever the `throughput` bin wrote. The section is always the object's
/// last key, so an existing section can be replaced by truncating at its
/// marker; if the file is missing or unparseable a fresh object is written.
fn merge_into_trajectory(section: &str) {
    let fresh = format!("{{\n  \"checkpoint\": {section}\n}}\n");
    let merged = match std::fs::read_to_string(OUTPUT_PATH) {
        Ok(existing) => {
            let base = match existing.find("\n  \"checkpoint\":") {
                Some(pos) => existing[..pos].trim_end().to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .map(|body| body.trim_end().to_string())
                    .unwrap_or_default(),
            };
            if base.is_empty() || base == "{" {
                fresh
            } else {
                let mut out = base;
                if !out.ends_with(',') {
                    out.push(',');
                }
                out.push_str("\n  \"checkpoint\": ");
                out.push_str(section);
                out.push_str("\n}\n");
                out
            }
        }
        Err(_) => fresh,
    };
    match std::fs::write(OUTPUT_PATH, merged) {
        Ok(()) => eprintln!("(merged checkpoint section into {OUTPUT_PATH})"),
        Err(e) => eprintln!("warning: could not write {OUTPUT_PATH}: {e}"),
    }
}
