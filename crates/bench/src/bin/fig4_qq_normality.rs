//! Figure 4: QQ-plots of empirical covariance entries against the normal
//! distribution (the Gaussian assumption of Section 6.1). Instead of a
//! visual plot, the table reports the probability-plot correlation
//! coefficient (PPCC) of each tracked entry — values near 1 mean the
//! marginal distribution is well approximated by a Gaussian.

use ascs_bench::{emit_table, Scale};
use ascs_core::{EstimandKind, PairIndexer};
use ascs_datasets::{
    BootstrapResampler, SimulatedDataset, SimulationSpec, SurrogateDataset, SurrogateSpec,
};
use ascs_eval::{ExactMatrix, ExperimentTable};
use ascs_numerics::qq_correlation;

fn entry_ppcc(
    replicate_samples: impl Fn(u64) -> Vec<ascs_core::Sample>,
    keys: &[u64],
    replicates: u64,
) -> Vec<f64> {
    let mut per_entry = vec![Vec::with_capacity(replicates as usize); keys.len()];
    for r in 0..replicates {
        let samples = replicate_samples(r);
        let exact = ExactMatrix::from_samples(&samples, EstimandKind::Covariance);
        for (j, &key) in keys.iter().enumerate() {
            per_entry[j].push(exact.value_by_key(key));
        }
    }
    per_entry.iter().map(|v| qq_correlation(v)).collect()
}

fn main() {
    let scale = Scale::from_args();
    let replicates = scale.pick(200u64, 2000);
    let dim = scale.pick(60u64, 1000);
    let t = 150usize;

    let indexer = PairIndexer::new(dim);
    let p = indexer.num_pairs();
    // Four entries, spread across the index range as the paper picks four at
    // random.
    let keys = [p / 7, p / 3, p / 2, (4 * p) / 5];

    let sim = SimulatedDataset::new(SimulationSpec {
        dim,
        alpha: 0.005,
        rho_min: 0.5,
        rho_max: 0.95,
        block_size: 4,
        seed: 44,
    });
    let sim_ppcc = entry_ppcc(|r| sim.samples(r * t as u64, t), &keys, replicates);

    let gisette = SurrogateDataset::new(SurrogateSpec::gisette().scaled(dim, 2000));
    let boot = BootstrapResampler::new(gisette.all_samples(), 55);
    let gis_ppcc = entry_ppcc(|r| boot.replicate(r, t), &keys, replicates);

    let mut table = ExperimentTable::new(
        "Figure 4: normality of empirical covariance entries (QQ-plot PPCC, 1.0 = exactly normal)",
        vec!["entry", "simulation PPCC", "gisette PPCC"],
    );
    for (i, &key) in keys.iter().enumerate() {
        let (a, b) = indexer.pair(key);
        table.push_row(vec![
            format!("({a},{b})").into(),
            sim_ppcc[i].into(),
            gis_ppcc[i].into(),
        ]);
    }
    emit_table(&table, "fig4_qq_normality");
    println!(
        "Expected shape (paper Figure 4): PPCC close to 1 on the simulation; slightly lower but \
         still near 1 on the bootstrapped real-data surrogate (mild skew)."
    );
}
