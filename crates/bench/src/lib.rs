//! Shared harness code for the experiment binaries that regenerate the
//! tables and figures of the ASCS paper.
//!
//! Every binary accepts `--scale smoke|paper` (default `smoke`). The smoke
//! scale shrinks dimensionality, sample counts and replication so that the
//! entire experiment suite finishes in minutes on a laptop; the paper scale
//! uses the parameters of Section 8 where that is feasible on a single
//! machine. The *shape* of the results (who wins, by roughly what factor)
//! is preserved at both scales; see DESIGN.md and EXPERIMENTS.md.

#![forbid(unsafe_code)]

use ascs_core::{
    AscsConfig, CovarianceEstimator, EstimandKind, Sample, SketchBackend, SketchGeometry,
    UpdateMode,
};
use ascs_datasets::{SurrogateDataset, SurrogateSpec};
use ascs_eval::{ExactMatrix, ExperimentTable};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensionality / replication; finishes in minutes.
    Smoke,
    /// Paper-scale parameters where single-machine feasible.
    Paper,
}

impl Scale {
    /// Parses `--scale smoke|paper` from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for window in args.windows(2) {
            if window[0] == "--scale" && window[1].eq_ignore_ascii_case("paper") {
                return Self::Paper;
            }
        }
        if args.iter().any(|a| a == "--paper") {
            return Self::Paper;
        }
        Self::Smoke
    }

    /// Picks between a smoke-scale and a paper-scale value.
    pub fn pick<T>(self, smoke: T, paper: T) -> T {
        match self {
            Self::Smoke => smoke,
            Self::Paper => paper,
        }
    }
}

/// The five Table 3 surrogate datasets, scaled for the chosen experiment
/// size. Smoke scale: 300 features and capped sample counts; paper scale:
/// 1000 features, full sample counts.
pub fn paper_surrogates(scale: Scale) -> Vec<SurrogateDataset> {
    SurrogateSpec::all_paper_datasets()
        .into_iter()
        .map(|spec| {
            let dim = scale.pick(300, 1000);
            let samples = match scale {
                Scale::Smoke => spec.samples.min(2000),
                Scale::Paper => spec.samples,
            };
            SurrogateDataset::new(spec.scaled(dim, samples))
        })
        .collect()
}

/// Builds the standard run configuration of Section 8.3: `K = 5`,
/// `R = 20,000` at paper scale (memory ≈ 20 % of the number of unique
/// pairs), correlation estimand, product updates.
pub fn section83_config(dataset: &SurrogateDataset, scale: Scale, seed: u64) -> AscsConfig {
    let dim = dataset.spec().dim;
    let pairs = dim * (dim - 1) / 2;
    let range = scale.pick(((pairs as f64 * 0.2) / 5.0).round() as usize, 20_000);
    AscsConfig {
        dim,
        total_samples: dataset.len(),
        geometry: SketchGeometry::new(5, range.max(16)),
        alpha: dataset.spec().alpha,
        signal_strength: 0.3,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Correlation,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 2000,
    }
}

/// Runs a backend over a sample stream and returns the estimator.
pub fn run_backend(
    config: AscsConfig,
    backend: SketchBackend,
    samples: &[Sample],
) -> CovarianceEstimator {
    let (mut estimator, _) = CovarianceEstimator::new_or_fallback(config, backend);
    for s in samples {
        estimator.process_sample(s);
    }
    estimator
}

/// Ranked pair keys (best first) reported by an estimator.
pub fn ranked_keys(estimator: &CovarianceEstimator, k: usize) -> Vec<u64> {
    estimator.top_pairs(k).into_iter().map(|p| p.key).collect()
}

/// Ranking over *all* pairs by |estimate| — the evaluation the paper uses
/// when the exact matrix fits in memory (Section 8.3). Only valid for
/// moderate dimensionality.
pub fn full_ranking(estimator: &CovarianceEstimator) -> Vec<u64> {
    let estimates = estimator.all_estimates();
    let mut keys: Vec<u64> = (0..estimates.len() as u64).collect();
    keys.sort_unstable_by(|&x, &y| {
        estimates[y as usize]
            .abs()
            .total_cmp(&estimates[x as usize].abs())
            .then(x.cmp(&y))
    });
    keys
}

/// Exact correlation matrix of a surrogate's full stream.
pub fn exact_correlations(samples: &[Sample]) -> ExactMatrix {
    ExactMatrix::from_samples(samples, EstimandKind::Correlation)
}

/// Prints a table as markdown and appends it to `target/ascs-experiments/
/// <slug>.json` for later comparison.
pub fn emit_table(table: &ExperimentTable, slug: &str) {
    println!("{}", table.to_markdown());
    let dir = std::path::Path::new("target/ascs-experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{slug}.json"));
        if let Err(e) = std::fs::write(&path, table.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(wrote {})", path.display());
        }
    }
}

/// Mean of the exact |correlation| of the first `k` ranked keys.
pub fn mean_exact_correlation(ranked: &[u64], exact: &ExactMatrix, k: usize) -> f64 {
    ascs_eval::mean_true_value_of_top(ranked, |key| exact.value_by_key(key).abs(), k).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Smoke.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn surrogates_cover_the_five_datasets() {
        let all = paper_surrogates(Scale::Smoke);
        assert_eq!(all.len(), 5);
        for ds in &all {
            assert_eq!(ds.spec().dim, 300);
            assert!(ds.len() <= 2000);
        }
    }

    #[test]
    fn section83_config_is_valid_for_every_surrogate() {
        for ds in paper_surrogates(Scale::Smoke) {
            let cfg = section83_config(&ds, Scale::Smoke, 1);
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn full_ranking_orders_by_estimate_magnitude() {
        let ds = &paper_surrogates(Scale::Smoke)[0];
        let samples = ds.samples(200);
        let mut cfg = section83_config(ds, Scale::Smoke, 2);
        cfg.total_samples = samples.len() as u64;
        let est = run_backend(cfg, SketchBackend::VanillaCs, &samples);
        let ranking = full_ranking(&est);
        assert_eq!(ranking.len() as u64, est.indexer().num_pairs());
        let estimates = est.all_estimates();
        for w in ranking.windows(2).take(200) {
            assert!(estimates[w[0] as usize].abs() >= estimates[w[1] as usize].abs() - 1e-12);
        }
    }
}
