//! Adversarial collision generator: searches the **committed** hash seeds
//! for pair keys that collide with a chosen victim pair, then drives a
//! stream that concentrates signed mass on exactly those keys.
//!
//! A count sketch's guarantees are probabilistic over the hash draw; once
//! the seed is committed (as every reproducible run here commits it), an
//! adversary can invert the family: enumerate the pair universe, find keys
//! sharing a bucket with the victim in some row, and choose update signs so
//! every collision pushes the victim's row estimate the same way. The
//! median estimator tolerates corruption of a strict *minority* of rows, so
//! the scenario calibrates its attack to cover at most `cover_rows < ⌈K/2⌉`
//! rows: the bound must still hold, and the conformance gate must pass —
//! while the unit tests demonstrate that the same search pushed to a
//! majority of rows really does corrupt the estimate (that is, the gate is
//! protected by the median and the `δ` quantile allowance, not by the
//! attack being fake).

use crate::scenario::{mix_seed, Scenario, ScenarioProfile, ScenarioStream};
use ascs_core::{num_pairs, PairIndexer, Sample};
use ascs_sketch_hash::HashFamily;

/// One attacker key of a realised attack plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerPlan {
    /// The colliding pair key.
    pub key: u64,
    /// Decoded features (`a < b`) of the key.
    pub a: u64,
    /// Second feature of the pair.
    pub b: u64,
    /// The single row in which this key shares the victim's bucket.
    pub row: usize,
    /// Update-value sign chosen so the collision inflates the victim's row
    /// estimate: `sign = s_row(victim) · s_row(attacker)`.
    pub sign: f64,
}

/// Enumerates the pair-key universe `0..universe` and returns, per row of
/// `family`, the keys that share the victim's bucket in **exactly** that
/// one row (multi-row colliders are excluded so each attacker corrupts one
/// row, making coverage precisely controllable). Keys sharing a feature
/// with the victim pair are skipped — attacker samples must never co-fire
/// with the victim's features.
pub fn find_row_colliders(
    family: &HashFamily,
    indexer: &PairIndexer,
    victim: u64,
    universe: u64,
) -> Vec<Vec<u64>> {
    let rows = family.rows();
    let victim_locs = family.locate_all(victim);
    let (va, vb) = indexer.pair(victim);
    let mut per_row: Vec<Vec<u64>> = vec![Vec::new(); rows];
    for key in 0..universe {
        if key == victim {
            continue;
        }
        let (a, b) = indexer.pair(key);
        if a == va || a == vb || b == va || b == vb {
            continue;
        }
        let locs = family.locate_all(key);
        let mut matched_row = None;
        let mut matches = 0usize;
        for row in 0..rows {
            if locs.bucket(row) == victim_locs.bucket(row) {
                matches += 1;
                matched_row = Some(row);
            }
        }
        if matches == 1 {
            per_row[matched_row.expect("matches == 1")].push(key);
        }
    }
    per_row
}

/// A realised adversarial trial: the attack plan against one committed
/// sketch seed, plus the deterministic interleaved stream.
struct AdversarialStream {
    dim: u64,
    victim_a: u64,
    victim_b: u64,
    victim_value: f64,
    beta_sqrt: f64,
    attackers: Vec<AttackerPlan>,
}

impl ScenarioStream for AdversarialStream {
    /// Even indices fire the victim pair with alternating feature signs
    /// (constant product `victim_value²`, zero feature means); odd indices
    /// rotate through the attackers, each firing its pair with the
    /// adversarially chosen product sign (again sign-alternated per firing
    /// so feature means stay at zero).
    fn sample_at(&self, index: u64) -> Sample {
        if index.is_multiple_of(2) || self.attackers.is_empty() {
            let s = if (index / 2).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            return Sample::sparse(
                self.dim,
                vec![
                    (self.victim_a as u32, s * self.victim_value),
                    (self.victim_b as u32, s * self.victim_value),
                ],
            );
        }
        let q = index / 2;
        let m = self.attackers.len() as u64;
        let attacker = &self.attackers[(q % m) as usize];
        let s = if (q / m).is_multiple_of(2) { 1.0 } else { -1.0 };
        Sample::sparse(
            self.dim,
            vec![
                (attacker.a as u32, s * self.beta_sqrt * attacker.sign),
                (attacker.b as u32, s * self.beta_sqrt),
            ],
        )
    }
}

/// The adversarial-collision conformance scenario.
#[derive(Debug, Clone)]
pub struct AdversarialCollisionScenario {
    profile: ScenarioProfile,
    /// Per-firing attacker product magnitude `β`.
    beta: f64,
    /// Attackers taken per covered row.
    attackers_per_row: usize,
    /// Victim rows the attack covers — kept below `⌈K/2⌉` so the median
    /// survives and the Theorem budget must still hold.
    cover_rows: usize,
    /// Per-firing victim feature magnitude (product `= value²`).
    victim_value: f64,
}

impl AdversarialCollisionScenario {
    fn build(dim: u64, total: u64, range: usize) -> Self {
        let mut profile = ScenarioProfile::base("adversarial_collisions", dim, total, range);
        profile.alpha = 1.0 / num_pairs(dim) as f64;
        // The victim fires every other sample with product 0.81.
        profile.nominal_u = 0.81 / 2.0;
        profile.sigma_hint = 0.05;
        Self {
            profile,
            beta: 0.8,
            attackers_per_row: 3,
            cover_rows: 2,
            victim_value: 0.9,
        }
    }

    /// The quick-profile instance (`d = 32`, `T = 512`, `K×R = 5×128` — a
    /// deliberately small bucket range so the seed search finds colliders).
    pub fn quick() -> Self {
        Self::build(32, 512, 128)
    }

    /// The deep-profile instance.
    pub fn deep() -> Self {
        Self::build(48, 2048, 256)
    }

    /// The victim pair key under this scenario's dimensionality.
    pub fn victim_key(&self) -> u64 {
        PairIndexer::new(self.profile.dim).index(0, 1)
    }

    /// Builds the attack plan against one committed hash family: up to
    /// `attackers_per_row` single-row colliders on each of the
    /// `cover_rows` best-covered victim rows, signs aligned to inflate.
    pub fn plan_attack(&self, family: &HashFamily) -> Vec<AttackerPlan> {
        let indexer = PairIndexer::new(self.profile.dim);
        let victim = self.victim_key();
        let per_row = find_row_colliders(family, &indexer, victim, indexer.num_pairs());
        let mut rows: Vec<usize> = (0..family.rows()).collect();
        rows.sort_by_key(|&r| std::cmp::Reverse(per_row[r].len()));
        let mut plan = Vec::new();
        for &row in rows.iter().take(self.cover_rows) {
            for &key in per_row[row].iter().take(self.attackers_per_row) {
                let (a, b) = indexer.pair(key);
                let sign = f64::from(family.sign(row, victim)) * f64::from(family.sign(row, key));
                plan.push(AttackerPlan {
                    key,
                    a,
                    b,
                    row,
                    sign,
                });
            }
        }
        plan
    }
}

impl Scenario for AdversarialCollisionScenario {
    fn profile(&self) -> &ScenarioProfile {
        &self.profile
    }

    fn stream(&self, trial: u64) -> Box<dyn ScenarioStream> {
        // The adversary re-runs its seed search against each trial's
        // committed sketch seed — the same seed the harness hands every
        // backend of that trial.
        let sketch_seed = mix_seed(self.profile.sketch_seed, trial);
        let family = HashFamily::new(
            self.profile.geometry.rows,
            self.profile.geometry.range,
            sketch_seed,
        );
        let attackers = self.plan_attack(&family);
        // A trial without attackers would silently degenerate into a
        // victim-only stream and "pass" while applying zero adversarial
        // pressure — fail loudly instead (committed profiles always find
        // colliders; this guards future constant changes).
        assert!(
            !attackers.is_empty(),
            "adversarial seed search found no colliders for trial {trial} \
             (seed {sketch_seed:#x}) — the scenario would test nothing"
        );
        let indexer = PairIndexer::new(self.profile.dim);
        let (victim_a, victim_b) = indexer.pair(self.victim_key());
        Box::new(AdversarialStream {
            dim: self.profile.dim,
            victim_a,
            victim_b,
            victim_value: self.victim_value,
            beta_sqrt: self.beta.sqrt(),
            attackers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_count_sketch::CountSketch;

    #[test]
    fn search_finds_genuine_single_row_colliders() {
        let indexer = PairIndexer::new(64);
        let family = HashFamily::new(5, 64, 0xBEEF);
        let victim = indexer.index(0, 1);
        let per_row = find_row_colliders(&family, &indexer, victim, indexer.num_pairs());
        assert_eq!(per_row.len(), 5);
        let total: usize = per_row.iter().map(Vec::len).sum();
        assert!(total > 10, "only {total} colliders in a 2016-key universe");
        let victim_locs = family.locate_all(victim);
        for (row, keys) in per_row.iter().enumerate() {
            for &key in keys {
                let locs = family.locate_all(key);
                assert_eq!(locs.bucket(row), victim_locs.bucket(row));
                let shared = (0..5)
                    .filter(|&r| locs.bucket(r) == victim_locs.bucket(r))
                    .count();
                assert_eq!(shared, 1, "key {key} is not a single-row collider");
                let (a, b) = indexer.pair(key);
                assert!(a > 1 && b > 1, "attacker shares a victim feature");
            }
        }
    }

    /// The attack is real: pushed to a **majority** of rows, the aligned
    /// collisions corrupt the median and the victim's point estimate blows
    /// past its true mass. The conformance scenario stays at a minority of
    /// rows precisely because this is what would happen otherwise.
    #[test]
    fn majority_row_coverage_corrupts_the_median() {
        let indexer = PairIndexer::new(64);
        let family = HashFamily::new(5, 64, 0xBEEF);
        let victim = indexer.index(0, 1);
        let per_row = find_row_colliders(&family, &indexer, victim, indexer.num_pairs());
        let covered: Vec<usize> = (0..5).filter(|&r| !per_row[r].is_empty()).collect();
        assert!(covered.len() >= 3, "seed 0xBEEF covers only {covered:?}");

        let mut sketch = CountSketch::new(5, 64, 0xBEEF);
        sketch.update(victim, 0.4);
        // One aligned attacker per covered row, mass 1.0 each.
        for &row in covered.iter().take(3) {
            let key = per_row[row][0];
            let sign = f64::from(family.sign(row, victim)) * f64::from(family.sign(row, key));
            sketch.update(key, sign * 1.0);
        }
        let est = sketch.estimate(victim);
        assert!(
            est > 1.0,
            "3-row aligned attack failed to move the median: {est}"
        );

        // The same mass on a minority of rows leaves the median intact.
        let mut sketch = CountSketch::new(5, 64, 0xBEEF);
        sketch.update(victim, 0.4);
        for &row in covered.iter().take(2) {
            let key = per_row[row][0];
            let sign = f64::from(family.sign(row, victim)) * f64::from(family.sign(row, key));
            sketch.update(key, sign * 1.0);
        }
        let est = sketch.estimate(victim);
        assert!(
            (est - 0.4).abs() < 1e-12,
            "minority coverage should not move the median: {est}"
        );
    }

    #[test]
    fn quick_scenario_plans_a_minority_attack_per_trial() {
        let scenario = AdversarialCollisionScenario::quick();
        for trial in 0..3u64 {
            let sketch_seed = mix_seed(scenario.profile().sketch_seed, trial);
            let family = HashFamily::new(5, 128, sketch_seed);
            let plan = scenario.plan_attack(&family);
            assert!(!plan.is_empty(), "trial {trial}: no attackers found");
            let mut rows: Vec<usize> = plan.iter().map(|a| a.row).collect();
            rows.sort_unstable();
            rows.dedup();
            assert!(rows.len() <= 2, "trial {trial}: attack covers {rows:?}");
            for a in &plan {
                assert!(a.sign == 1.0 || a.sign == -1.0);
                assert!(a.a > 1 && a.b > 1);
            }
        }
    }

    #[test]
    fn stream_interleaves_victim_and_attackers_with_zero_mean_features() {
        let scenario = AdversarialCollisionScenario::quick();
        let stream = scenario.stream(0);
        let total = scenario.profile().total_samples;
        let mut victim_product_sum = 0.0;
        let mut mean_a = 0.0;
        for i in 0..total {
            let s = stream.sample_at(i);
            assert_eq!(s.nonzero_count(), 2, "samples must stay 2-sparse");
            victim_product_sum += s.value(0) * s.value(1);
            mean_a += s.value(0);
        }
        // Victim fires every other sample with constant product 0.81.
        let expect = 0.81 * (total / 2) as f64;
        assert!(
            (victim_product_sum - expect).abs() < 1e-9,
            "victim mass {victim_product_sum} vs {expect}"
        );
        assert!(
            (mean_a / total as f64).abs() < 1e-12,
            "victim feature mean must vanish"
        );
    }
}
