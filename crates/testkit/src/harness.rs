//! The conformance harness: seeded trials × backends × checkpoints →
//! statistical acceptance gates → serialisable reports.
//!
//! For each trial the harness materialises the scenario's stream once,
//! drives the streaming exact oracle (snapshotting at the scenario's
//! checkpoints) and measures the empirical update noise scale `σ̂` exactly
//! the way the solver's relaxation defines it (mean square of all pair
//! updates, implicit zeros included). Every backend of the trial then
//! ingests the *same* samples through a [`CovarianceEstimator`]; at each
//! checkpoint `t` the whole-universe estimate vector is read, rescaled by
//! `T/t` (the sketch scales updates by `1/T`, so mid-stream it holds
//! `t/T · μ̂_cum`), and scored against the oracle snapshot.
//!
//! Error pools are aggregated **across trials** per (backend, checkpoint)
//! and fed to the gates of [`ascs_eval::gates`]:
//!
//! * `all_pairs` — the `(1 − δ)` quantile over every pair must clear the
//!   ε budget (the Theorem 1 error model with the measured `σ̂`);
//! * `signal_pairs` — the `(1 − δ*)` quantile over the signal set (pairs
//!   whose exact value at the reference checkpoint clears `u/2`) must
//!   clear the same budget: Theorems 1/2 allow at most a `δ*` fraction of
//!   signals to be missed, and every retained signal obeys the CS error
//!   model;
//! * `emergent_signal_pairs` — signals outside the reference set (e.g.
//!   pairs that become correlated only after a drift flip). For the
//!   cumulative backends this stays an *unenforced* diagnostic — the
//!   stationary-mean theorems do not cover them — but for the windowed
//!   backend it is **enforced**: once the window has slid past the flip,
//!   drift-emergent pairs are in-model signals and must clear the budget.
//!
//! Time-aware backends ([`BackendVariant::Windowed`] /
//! [`BackendVariant::Decayed`]) are scored against their own exact
//! reference — the windowed or exponentially decayed mean of the same
//! pair updates, rebuilt per checkpoint by replaying the sample prefix —
//! and their collision budgets are taken at the backend's *effective*
//! sample count (in-window samples, or the decay weights' effective
//! sample size) instead of the cumulative `t`.

use crate::scenario::{mix_seed, Scenario, ScenarioProfile};
use ascs_core::{
    effective_sample_size, num_pairs, window_span, AscsConfig, CovarianceEstimator, Sample,
    SigmaEstimator, SketchBackend, StreamContext, TheoryBounds,
};
use ascs_eval::{gates, GateOutcome, StreamingExact};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One count-sketch-family backend configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendVariant {
    /// Vanilla count sketch (Algorithm 1).
    VanillaCs,
    /// Gated ASCS (Algorithm 2), hashed ingestion.
    Ascs,
    /// Gated ASCS driven through a precomputed ingestion plan.
    AscsPlanned,
    /// Key-partitioned sharded ASCS.
    ShardedAscs {
        /// Worker shard count.
        shards: usize,
    },
    /// Sharded ASCS with plan-driven batches and slot routing.
    ShardedAscsPlanned {
        /// Worker shard count.
        shards: usize,
    },
    /// Sliding-window count sketch (ring of segments, merged by
    /// linearity). Scored against the *windowed* exact matrix, with the
    /// collision budget taken at the in-window sample count — and with the
    /// `emergent_signal_pairs` gate **enforced**: tracking drift-emergent
    /// signals is this backend's contract.
    Windowed {
        /// Samples per ring segment.
        segment_len: u64,
        /// Segments in the ring.
        segments: usize,
    },
    /// Exponentially decayed count sketch (scale-on-read). Scored against
    /// the decayed exact matrix, with the budget taken at the effective
    /// sample size of the decay weights; the emergent gate stays
    /// diagnostic (block-granular decay semantics are looser than a hard
    /// window).
    Decayed {
        /// Per-sample decay factor in `(0, 1)`.
        gamma: f64,
    },
}

impl BackendVariant {
    /// Stable label used in reports and CI guards.
    pub fn label(&self) -> String {
        match self {
            Self::VanillaCs => "vanilla_cs".into(),
            Self::Ascs => "ascs".into(),
            Self::AscsPlanned => "ascs_planned".into(),
            Self::ShardedAscs { shards } => format!("sharded_ascs_{shards}"),
            Self::ShardedAscsPlanned { shards } => format!("sharded_ascs_planned_{shards}"),
            Self::Windowed { .. } => "windowed_cs".into(),
            Self::Decayed { .. } => "decayed_cs".into(),
        }
    }

    fn backend(&self) -> SketchBackend {
        match *self {
            Self::VanillaCs => SketchBackend::VanillaCs,
            Self::Ascs | Self::AscsPlanned => SketchBackend::Ascs,
            Self::ShardedAscs { shards } | Self::ShardedAscsPlanned { shards } => {
                SketchBackend::ShardedAscs { shards }
            }
            Self::Windowed {
                segment_len,
                segments,
            } => SketchBackend::Windowed {
                segment_len,
                segments,
            },
            Self::Decayed { gamma } => SketchBackend::Decayed { gamma },
        }
    }

    fn planned(&self) -> bool {
        matches!(self, Self::AscsPlanned | Self::ShardedAscsPlanned { .. })
    }

    /// Scored against a time-aware exact matrix rather than the
    /// cumulative one.
    fn time_aware(&self) -> bool {
        matches!(self, Self::Windowed { .. } | Self::Decayed { .. })
    }

    /// The effective sample count the collision-noise budget should use at
    /// stream time `t`: in-window samples for the window, the effective
    /// sample size of the decay weights for the decayed variant, `t`
    /// otherwise.
    fn effective_t(&self, t: u64) -> u64 {
        match *self {
            Self::Windowed {
                segment_len,
                segments,
            } => window_span(t, segment_len, segments).1.max(1),
            Self::Decayed { gamma } => (effective_sample_size(gamma, t).floor() as u64).max(1),
            _ => t,
        }
    }
}

/// How many trials to run and which backends to score.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Seeded trials per scenario (pooled before gating).
    pub trials: u64,
    /// Backends under test.
    pub backends: Vec<BackendVariant>,
}

impl ConformanceConfig {
    /// The tier-1 quick profile: 2 trials over the four cumulative
    /// CS-family paths (vanilla, gated, planned, sharded) plus the two
    /// time-aware ones (windowed, decayed). The window geometry 4 × 64
    /// makes the final `covariance_flip` window cover exactly phase B.
    pub fn quick() -> Self {
        Self {
            trials: 2,
            backends: vec![
                BackendVariant::VanillaCs,
                BackendVariant::Ascs,
                BackendVariant::AscsPlanned,
                BackendVariant::ShardedAscs { shards: 2 },
                BackendVariant::Windowed {
                    segment_len: 64,
                    segments: 4,
                },
                BackendVariant::Decayed { gamma: 0.99 },
            ],
        }
    }

    /// The deep profile: more trials, plus the planned sharded path.
    pub fn deep() -> Self {
        Self {
            trials: 4,
            backends: vec![
                BackendVariant::VanillaCs,
                BackendVariant::Ascs,
                BackendVariant::AscsPlanned,
                BackendVariant::ShardedAscs { shards: 2 },
                BackendVariant::ShardedAscsPlanned { shards: 3 },
                BackendVariant::Windowed {
                    segment_len: 256,
                    segments: 4,
                },
                BackendVariant::Decayed { gamma: 0.995 },
            ],
        }
    }
}

/// Gate results of one (backend, checkpoint) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Stream time of the checkpoint.
    pub t: u64,
    /// Measured update noise scale `σ̂` at this checkpoint (averaged over
    /// trials).
    pub sigma: f64,
    /// Collision inflation factor `κ` of the run's [`TheoryBounds`].
    pub kappa: f64,
    /// Size of the reference signal set, minimum across trials — so a
    /// single trial whose realised stream yields no signals is visible.
    pub signal_pair_count: usize,
    /// The gates scored on the pooled errors.
    pub gates: Vec<GateOutcome>,
    /// All *enforced* gates passed.
    pub passed: bool,
}

/// Gate results of one backend across every checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendReport {
    /// Backend label (see [`BackendVariant::label`]).
    pub backend: String,
    /// Whether Algorithm 3 fell back for any trial (best-effort
    /// hyperparameters; the gates still apply).
    pub fell_back: bool,
    /// Per-checkpoint gate results.
    pub checkpoints: Vec<CheckpointReport>,
    /// Every checkpoint passed.
    pub passed: bool,
}

/// The full conformance report of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Dimensionality `d`.
    pub dim: u64,
    /// Stream length `T`.
    pub total_samples: u64,
    /// Trials pooled into the gates.
    pub trials: u64,
    /// Per-backend results.
    pub backends: Vec<BackendReport>,
    /// Every backend passed.
    pub passed: bool,
}

/// A suite of scenario reports plus the aggregate verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Which profile produced the suite (`quick` / `deep`).
    pub profile: String,
    /// One report per scenario.
    pub scenarios: Vec<ScenarioReport>,
    /// Every scenario passed.
    pub all_passed: bool,
}

/// Error pools of one (backend, checkpoint) cell, across trials.
#[derive(Default, Clone)]
struct ErrorPool {
    all: Vec<f64>,
    signal: Vec<f64>,
    emergent: Vec<f64>,
}

/// Exact time-aware reference vectors, one per checkpoint: the windowed
/// or exponentially decayed mean of the pair updates. Each checkpoint
/// replays the *full* sample prefix through a fresh [`StreamContext`] —
/// so centred-mode running means match the streaming path exactly — and
/// re-weights every emitted update by its window/decay weight.
fn time_aware_exact(
    samples: &[Sample],
    profile: &ScenarioProfile,
    p: u64,
    variant: &BackendVariant,
) -> Vec<Vec<f64>> {
    profile
        .checkpoints
        .iter()
        .map(|&t| {
            let mut ctx = StreamContext::new(profile.dim, profile.update_mode, profile.estimand);
            let mut sums = vec![0.0f64; p as usize];
            let (start, norm) = match *variant {
                BackendVariant::Windowed {
                    segment_len,
                    segments,
                } => {
                    let (start, n) = window_span(t, segment_len, segments);
                    (start, n as f64)
                }
                BackendVariant::Decayed { gamma } => {
                    (1, (1.0 - gamma.powi(t as i32)) / (1.0 - gamma))
                }
                _ => unreachable!("cumulative variants are scored against the streaming oracle"),
            };
            for (i, s) in samples[..t as usize].iter().enumerate() {
                let st = i as u64 + 1;
                let w = match *variant {
                    BackendVariant::Windowed { .. } => {
                        if st >= start {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    BackendVariant::Decayed { gamma } => gamma.powi((t - st) as i32),
                    _ => unreachable!(),
                };
                ctx.ingest(s, |u| {
                    if w != 0.0 {
                        sums[u.key as usize] += w * u.value;
                    }
                });
            }
            for v in &mut sums {
                *v /= norm;
            }
            sums
        })
        .collect()
}

/// Runs every trial of `scenario` over every backend of `cfg` and scores
/// the pooled errors against the acceptance gates.
pub fn run_scenario(scenario: &dyn Scenario, cfg: &ConformanceConfig) -> ScenarioReport {
    let profile = scenario.profile();
    let p = num_pairs(profile.dim);
    let n_ck = profile.checkpoints.len();
    assert!(n_ck > 0, "{}: no checkpoints", profile.name);
    assert!(!cfg.backends.is_empty() && cfg.trials > 0);

    let mut pools: Vec<Vec<ErrorPool>> = vec![vec![ErrorPool::default(); n_ck]; cfg.backends.len()];
    let mut sigma_sum = vec![0.0f64; n_ck];
    let mut fell_back = vec![false; cfg.backends.len()];
    let mut min_signal_count = usize::MAX;

    for trial in 0..cfg.trials {
        let stream = scenario.stream(trial);
        let samples: Vec<ascs_core::Sample> = (0..profile.total_samples)
            .map(|i| stream.sample_at(i))
            .collect();

        // Oracle pass: exact snapshots plus the measured noise scale, via
        // the same sample → pair-update expansion the estimators see.
        let mut oracle =
            StreamingExact::new(profile.dim, profile.estimand, profile.checkpoints.clone());
        let mut sigma_ctx = StreamContext::new(profile.dim, profile.update_mode, profile.estimand);
        let mut sigma_est = SigmaEstimator::new();
        let mut sigma_at = vec![profile.sigma_hint; n_ck];
        let mut ck = 0usize;
        for (i, s) in samples.iter().enumerate() {
            oracle.push(s);
            let emitted = sigma_ctx.ingest(s, |u| sigma_est.push(u.value));
            sigma_est.push_zeros(p - emitted);
            if ck < n_ck && i as u64 + 1 == profile.checkpoints[ck] {
                sigma_at[ck] = sigma_est.sigma().unwrap_or(profile.sigma_hint);
                ck += 1;
            }
        }
        assert_eq!(
            oracle.snapshots().len(),
            n_ck,
            "{}: a checkpoint beyond the stream length",
            profile.name
        );
        for (s, &v) in sigma_sum.iter_mut().zip(&sigma_at) {
            *s += v;
        }

        // The signal set: pairs whose exact value clears u/2 at the
        // reference checkpoint (stationary signals the theorems cover).
        let cut = profile.nominal_u * 0.5;
        let reference = &oracle.snapshots()[profile.signal_reference_checkpoint].matrix;
        let ref_signals: HashSet<u64> = reference.signal_keys_above(cut).into_iter().collect();
        min_signal_count = min_signal_count.min(ref_signals.len());

        for (bi, variant) in cfg.backends.iter().enumerate() {
            let config = AscsConfig {
                dim: profile.dim,
                total_samples: profile.total_samples,
                geometry: profile.geometry,
                alpha: profile.alpha,
                signal_strength: profile.nominal_u,
                sigma: profile.sigma_hint,
                delta: profile.delta,
                delta_star: profile.delta_star,
                tau0: profile.tau0,
                estimand: profile.estimand,
                update_mode: profile.update_mode,
                seed: mix_seed(profile.sketch_seed, trial),
                top_k_capacity: (p as usize).min(1024),
            };
            let (mut estimator, fb) =
                CovarianceEstimator::new_or_fallback(config, variant.backend());
            if variant.planned() {
                estimator
                    .attach_ingestion_plan()
                    .expect("planned harness variants require a plan-capable backend");
            }
            fell_back[bi] |= fb;

            // Time-aware variants get their own exact reference (and a
            // reference signal set drawn from it): the windowed/decayed
            // estimate is already normalised, so it is compared at scale
            // 1 — no `T/t` rescale.
            let ta_exact = variant
                .time_aware()
                .then(|| time_aware_exact(&samples, profile, p, variant));
            let ta_signals: Option<HashSet<u64>> = ta_exact.as_ref().map(|ex| {
                ex[profile.signal_reference_checkpoint]
                    .iter()
                    .enumerate()
                    .filter(|&(_, v)| v.abs() >= cut)
                    .map(|(k, _)| k as u64)
                    .collect()
            });

            let mut ck = 0usize;
            for (i, s) in samples.iter().enumerate() {
                estimator.process_sample(s);
                let t = i as u64 + 1;
                if ck < n_ck && t == profile.checkpoints[ck] {
                    let estimates = estimator.all_estimates();
                    let pool = &mut pools[bi][ck];
                    if let (Some(ex), Some(signals)) = (&ta_exact, &ta_signals) {
                        let exact = &ex[ck];
                        for key in 0..p as usize {
                            let err = (estimates[key] - exact[key]).abs();
                            pool.all.push(err);
                            if signals.contains(&(key as u64)) {
                                pool.signal.push(err);
                            } else if exact[key].abs() >= cut {
                                pool.emergent.push(err);
                            }
                        }
                    } else {
                        let exact = &oracle.snapshots()[ck].matrix;
                        let scale = profile.total_samples as f64 / t as f64;
                        for key in 0..p {
                            let err =
                                (estimates[key as usize] * scale - exact.value_by_key(key)).abs();
                            pool.all.push(err);
                            if ref_signals.contains(&key) {
                                pool.signal.push(err);
                            } else if exact.value_by_key(key).abs() >= cut {
                                pool.emergent.push(err);
                            }
                        }
                    }
                    ck += 1;
                }
            }
        }
    }

    // Score the pooled errors.
    let backends: Vec<BackendReport> = cfg
        .backends
        .iter()
        .enumerate()
        .map(|(bi, variant)| {
            let checkpoints: Vec<CheckpointReport> = (0..n_ck)
                .map(|ck| {
                    let t = profile.checkpoints[ck];
                    // Collision budgets are taken at the backend's
                    // effective sample count: in-window samples or the
                    // decay weights' effective sample size.
                    let t_eff = variant.effective_t(t);
                    let sigma = sigma_sum[ck] / cfg.trials as f64;
                    let bounds = TheoryBounds::new(
                        p,
                        profile.geometry.range,
                        profile.geometry.rows,
                        profile.alpha,
                        sigma,
                        profile.nominal_u,
                        t_eff,
                    );
                    let kappa = bounds.kappa();
                    let budget = gates::epsilon_budget(
                        kappa,
                        sigma,
                        t_eff,
                        profile.delta,
                        profile.dependence_factor,
                        profile.slack,
                    );
                    let pool = &pools[bi][ck];
                    let mut outcomes = vec![
                        gates::quantile_gate("all_pairs", &pool.all, profile.delta, budget, true),
                        gates::quantile_gate(
                            "signal_pairs",
                            &pool.signal,
                            profile.delta_star,
                            budget,
                            true,
                        ),
                    ];
                    if !pool.emergent.is_empty() {
                        // Drift-emergent signals are the windowed
                        // backend's contract — its gate is enforced.
                        outcomes.push(gates::quantile_gate(
                            "emergent_signal_pairs",
                            &pool.emergent,
                            profile.delta_star,
                            budget,
                            matches!(variant, BackendVariant::Windowed { .. }),
                        ));
                    }
                    let passed = outcomes.iter().all(|g| !g.enforced || g.passed);
                    CheckpointReport {
                        t,
                        sigma,
                        kappa,
                        signal_pair_count: min_signal_count,
                        gates: outcomes,
                        passed,
                    }
                })
                .collect();
            let passed = checkpoints.iter().all(|c| c.passed);
            BackendReport {
                backend: variant.label(),
                fell_back: fell_back[bi],
                checkpoints,
                passed,
            }
        })
        .collect();

    let passed = backends.iter().all(|b| b.passed);
    ScenarioReport {
        scenario: profile.name.to_owned(),
        dim: profile.dim,
        total_samples: profile.total_samples,
        trials: cfg.trials,
        backends,
        passed,
    }
}

/// Runs a whole scenario suite and aggregates the verdict.
pub fn run_suite(
    scenarios: &[Box<dyn Scenario>],
    cfg: &ConformanceConfig,
    profile_name: &str,
) -> SuiteReport {
    let reports: Vec<ScenarioReport> = scenarios
        .iter()
        .map(|s| run_scenario(s.as_ref(), cfg))
        .collect();
    let all_passed = reports.iter().all(|r| r.passed);
    SuiteReport {
        profile: profile_name.to_owned(),
        scenarios: reports,
        all_passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::quick_suite;

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(BackendVariant::VanillaCs.label(), "vanilla_cs");
        assert_eq!(BackendVariant::AscsPlanned.label(), "ascs_planned");
        assert_eq!(
            BackendVariant::ShardedAscs { shards: 2 }.label(),
            "sharded_ascs_2"
        );
        assert_eq!(
            BackendVariant::ShardedAscsPlanned { shards: 3 }.label(),
            "sharded_ascs_planned_3"
        );
        assert_eq!(
            BackendVariant::Windowed {
                segment_len: 64,
                segments: 4
            }
            .label(),
            "windowed_cs"
        );
        assert_eq!(
            BackendVariant::Decayed { gamma: 0.99 }.label(),
            "decayed_cs"
        );
    }

    #[test]
    fn quick_config_covers_the_cs_family_and_time_aware_paths() {
        let cfg = ConformanceConfig::quick();
        assert_eq!(cfg.backends.len(), 6);
        assert!(cfg.trials >= 2);
        assert!(cfg
            .backends
            .iter()
            .any(|b| matches!(b, BackendVariant::Windowed { .. })));
        assert!(cfg
            .backends
            .iter()
            .any(|b| matches!(b, BackendVariant::Decayed { .. })));
        let deep = ConformanceConfig::deep();
        assert!(deep.trials > cfg.trials);
        assert!(deep.backends.len() > cfg.backends.len());
    }

    #[test]
    fn effective_t_shrinks_only_for_time_aware_variants() {
        assert_eq!(BackendVariant::VanillaCs.effective_t(512), 512);
        let w = BackendVariant::Windowed {
            segment_len: 64,
            segments: 4,
        };
        assert!(w.time_aware());
        assert_eq!(w.effective_t(512), 256); // blocks 5..8 of 64
        let d = BackendVariant::Decayed { gamma: 0.99 };
        assert!(d.time_aware());
        let eff = d.effective_t(100_000);
        assert!(eff > 1 && eff < 300, "gamma=0.99 ESS ≈ 199, got {eff}");
    }

    /// One small scenario end to end on one backend: the report shape is
    /// right and deterministic. (The full quick suite runs as the tier-1
    /// integration test `tests/bound_conformance.rs`.)
    #[test]
    fn single_backend_run_is_deterministic_and_well_formed() {
        let suite = quick_suite();
        let scenario = &suite[1]; // covariance_flip: two checkpoints
        let cfg = ConformanceConfig {
            trials: 1,
            backends: vec![BackendVariant::VanillaCs],
        };
        let a = run_scenario(scenario.as_ref(), &cfg);
        let b = run_scenario(scenario.as_ref(), &cfg);
        assert_eq!(a, b, "conformance run is not deterministic");
        assert_eq!(a.backends.len(), 1);
        assert_eq!(a.backends[0].checkpoints.len(), 2);
        for ck in &a.backends[0].checkpoints {
            assert!(ck.sigma > 0.0);
            assert!(ck.kappa >= 1.0);
            assert!(ck.gates.len() >= 2);
            assert!(ck.signal_pair_count > 0);
        }
        // The drift scenario must record the emergent diagnostic at the
        // post-flip checkpoint.
        let final_ck = &a.backends[0].checkpoints[1];
        assert!(
            final_ck
                .gates
                .iter()
                .any(|g| g.name == "emergent_signal_pairs" && !g.enforced),
            "missing emergent diagnostic: {final_ck:?}"
        );
    }

    /// The tentpole acceptance check at unit scale: on the drift scenario
    /// the windowed backend's post-flip window covers exactly phase B, so
    /// the flipped pairs surface as emergent signals and the (now
    /// enforced) emergent gate must pass against the windowed-exact
    /// reference.
    #[test]
    fn windowed_backend_passes_the_enforced_emergent_gate_on_the_flip() {
        let suite = quick_suite();
        let scenario = &suite[1]; // covariance_flip
        let cfg = ConformanceConfig {
            trials: 1,
            backends: vec![BackendVariant::Windowed {
                segment_len: 64,
                segments: 4,
            }],
        };
        let report = run_scenario(scenario.as_ref(), &cfg);
        assert!(report.passed, "windowed drift run failed: {report:?}");
        let post_flip = &report.backends[0].checkpoints[1];
        let emergent = post_flip
            .gates
            .iter()
            .find(|g| g.name == "emergent_signal_pairs")
            .expect("post-flip window must surface emergent signals");
        assert!(emergent.enforced, "windowed emergent gate must be enforced");
        assert!(
            emergent.passed,
            "enforced emergent gate failed: {emergent:?}"
        );
        // Pre-flip the window still covers phase A only: no emergent pool.
        let pre_flip = &report.backends[0].checkpoints[0];
        assert!(
            !pre_flip
                .gates
                .iter()
                .any(|g| g.name == "emergent_signal_pairs"),
            "phase-A window should have no emergent signals: {pre_flip:?}"
        );
    }

    #[test]
    fn suite_report_serialises() {
        let cfg = ConformanceConfig {
            trials: 1,
            backends: vec![BackendVariant::VanillaCs],
        };
        let suite = quick_suite();
        let report = run_suite(&suite[..1], &cfg, "unit");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"all_passed\""));
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
