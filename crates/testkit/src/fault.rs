//! Deterministic fault injection for the serving core, plus the sequential
//! replay oracle the consistency tests compare snapshots against.
//!
//! [`FaultPlan`] implements [`ascs_core::FaultInjector`] with scripted
//! faults — panic at a specific shard-local update index, truncate a
//! checkpoint at byte `K`, hold worker batches to force queue-full storms,
//! hold recovery to observe degraded mode — all one-shot and in-process,
//! so every failure test is reproducible without real crashes.
//!
//! [`ReplayOracle`] is the ground truth for snapshot consistency: it runs
//! the *same* sample stream through a plain sequential [`ShardedAscs`]
//! (same seed, same shard count, same router), so a serving snapshot at
//! epoch `t` must match the oracle after `t` samples bit for bit.

use ascs_core::config::AscsConfig;
use ascs_core::{FaultInjector, HyperParameters, Sample, ShardUpdate, ShardedAscs, StreamContext};
use ascs_count_sketch::CountSketch;
use std::sync::{Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Default)]
struct Holds {
    batches: bool,
    recovery: bool,
}

/// A scripted, deterministic fault plan. Build it with the `panic_at` /
/// `truncate_checkpoint_at` constructors, share it (`Arc`) with
/// `ServingEstimator::launch_with_faults`, and flip the runtime holds from
/// the test thread. Scripted faults are **one-shot**: each fires on its
/// first match and never again, so a restarted worker replays cleanly.
#[derive(Default)]
pub struct FaultPlan {
    /// Pending `(shard, shard-local update index)` panics.
    panics: Mutex<Vec<(usize, u64)>>,
    /// Pending `(shard, truncate-at-byte)` checkpoint corruptions.
    truncations: Mutex<Vec<(usize, usize)>>,
    holds: Mutex<Holds>,
    released: Condvar,
    panics_fired: Mutex<u64>,
    truncations_fired: Mutex<u64>,
    recoveries_started: Mutex<u64>,
}

impl FaultPlan {
    /// An empty plan (no scripted faults, no holds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a one-shot panic right before `shard` applies its
    /// `update_index`-th update (0-based, counted across all first-delivery
    /// batches of that shard).
    #[must_use]
    pub fn panic_at(self, shard: usize, update_index: u64) -> Self {
        lock(&self.panics).push((shard, update_index));
        self
    }

    /// Schedules a one-shot truncation of `shard`'s next checkpoint to
    /// `at` bytes before validation — the checkpoint must be rejected and
    /// the previous good one kept.
    #[must_use]
    pub fn truncate_checkpoint_at(self, shard: usize, at: usize) -> Self {
        lock(&self.truncations).push((shard, at));
        self
    }

    /// While set, every worker blocks before applying a batch — queues
    /// fill and `try_ingest` must surface `Overloaded`. Release before
    /// dropping the serving instance.
    pub fn set_hold_batches(&self, hold: bool) {
        lock(&self.holds).batches = hold;
        self.released.notify_all();
    }

    /// While set, a recovering worker blocks before its restore + replay —
    /// the window in which readers must see degraded (stale, flagged)
    /// snapshots. Release before dropping the serving instance.
    pub fn set_hold_recovery(&self, hold: bool) {
        lock(&self.holds).recovery = hold;
        self.released.notify_all();
    }

    /// Scripted panics that have fired.
    pub fn panics_fired(&self) -> u64 {
        *lock(&self.panics_fired)
    }

    /// Scripted checkpoint truncations that have fired.
    pub fn truncations_fired(&self) -> u64 {
        *lock(&self.truncations_fired)
    }

    /// Worker recoveries that have started (restore + replay entered).
    pub fn recoveries_started(&self) -> u64 {
        *lock(&self.recoveries_started)
    }

    fn wait_while(&self, which: fn(&Holds) -> bool) {
        let mut holds = lock(&self.holds);
        while which(&holds) {
            holds = self
                .released
                .wait(holds)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl FaultInjector for FaultPlan {
    fn inject_panic(&self, shard: usize, update_index: u64) -> bool {
        let mut pending = lock(&self.panics);
        if let Some(pos) = pending
            .iter()
            .position(|&(s, i)| s == shard && i == update_index)
        {
            pending.remove(pos);
            *lock(&self.panics_fired) += 1;
            return true;
        }
        false
    }

    fn corrupt_checkpoint(&self, shard: usize, bytes: &mut Vec<u8>) {
        let mut pending = lock(&self.truncations);
        if let Some(pos) = pending.iter().position(|&(s, _)| s == shard) {
            let (_, at) = pending.remove(pos);
            bytes.truncate(at.min(bytes.len()));
            *lock(&self.truncations_fired) += 1;
        }
    }

    fn before_recovery(&self, _shard: usize) {
        *lock(&self.recoveries_started) += 1;
        self.wait_while(|h| h.recovery);
    }

    fn before_batch(&self, _shard: usize) {
        self.wait_while(|h| h.batches);
    }
}

/// Sequential ground truth for the serving core: the same stream driven
/// through a plain [`ShardedAscs`] with the same configuration, shard
/// count and seed — no threads, no queues, no recovery. Serving snapshots
/// must match this oracle bit for bit at every epoch, panics and torn
/// checkpoints notwithstanding.
pub struct ReplayOracle {
    ctx: StreamContext,
    sharded: ShardedAscs,
    t: u64,
    pending: Vec<ShardUpdate>,
    emitted: u64,
}

impl ReplayOracle {
    /// Builds the oracle. `hyper` selects gated (`Some`) or vanilla
    /// (`None`) workers, exactly mirroring the serving launch entry points.
    pub fn new(config: &AscsConfig, hyper: Option<&HyperParameters>, shards: usize) -> Self {
        let sharded = match hyper {
            Some(hp) => ShardedAscs::new(
                config.geometry,
                hp,
                config.total_samples,
                config.top_k_capacity,
                config.seed,
                shards,
            ),
            None => ShardedAscs::vanilla(
                config.geometry,
                config.total_samples,
                config.top_k_capacity,
                config.seed,
                shards,
            ),
        };
        Self {
            ctx: StreamContext::new(config.dim, config.update_mode, config.estimand),
            sharded,
            t: 0,
            pending: Vec::new(),
            emitted: 0,
        }
    }

    /// Ingests one sample sequentially; returns the updates emitted.
    pub fn ingest(&mut self, sample: &Sample) -> u64 {
        self.t += 1;
        let t = self.t;
        self.pending.clear();
        let pending = &mut self.pending;
        let emitted = self.ctx.ingest(sample, |u| {
            pending.push(ShardUpdate {
                key: u.key,
                value: u.value,
                t,
            });
        });
        self.sharded.offer_batch(&self.pending);
        self.emitted += emitted;
        emitted
    }

    /// The shard a key routes to — used by tests to compute the shard-local
    /// update index a scripted panic should target.
    pub fn shard_of(&self, key: u64) -> usize {
        self.sharded.shard_of(key)
    }

    /// The merged table after `samples()` sequential samples.
    pub fn merged_sketch(&self) -> CountSketch {
        self.sharded.merged_sketch()
    }

    /// Cross-shard top pairs (same ordering contract as the serving
    /// snapshot's top list).
    pub fn top_pairs(&self) -> Vec<(u64, f64)> {
        self.sharded.top_pairs()
    }

    /// Inserted / skipped update counters summed across shards.
    pub fn update_counts(&self) -> (u64, u64) {
        (
            self.sharded.inserted_updates(),
            self.sharded.skipped_updates(),
        )
    }

    /// Samples ingested so far.
    pub fn samples(&self) -> u64 {
        self.t
    }

    /// Pair updates emitted so far.
    pub fn emitted_updates(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_scripted_faults_are_one_shot() {
        let plan = FaultPlan::new().panic_at(1, 5).truncate_checkpoint_at(0, 3);
        assert!(!plan.inject_panic(0, 5), "wrong shard fired");
        assert!(!plan.inject_panic(1, 4), "wrong index fired");
        assert!(plan.inject_panic(1, 5));
        assert!(!plan.inject_panic(1, 5), "panic fired twice");
        assert_eq!(plan.panics_fired(), 1);

        let mut bytes = vec![0u8; 10];
        plan.corrupt_checkpoint(1, &mut bytes);
        assert_eq!(bytes.len(), 10, "wrong shard truncated");
        plan.corrupt_checkpoint(0, &mut bytes);
        assert_eq!(bytes.len(), 3);
        let mut again = vec![0u8; 10];
        plan.corrupt_checkpoint(0, &mut again);
        assert_eq!(again.len(), 10, "truncation fired twice");
        assert_eq!(plan.truncations_fired(), 1);
    }

    #[test]
    fn holds_block_and_release() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new());
        plan.set_hold_batches(true);
        let worker = {
            let plan = plan.clone();
            std::thread::spawn(move || plan.before_batch(0))
        };
        // The worker cannot finish while the hold is set; give it a moment
        // to park, then release and require completion.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!worker.is_finished(), "hold did not block");
        plan.set_hold_batches(false);
        worker.join().unwrap();
    }
}
