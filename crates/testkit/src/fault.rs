//! Deterministic fault injection for the serving core, plus the sequential
//! replay oracle the consistency tests compare snapshots against.
//!
//! [`FaultPlan`] implements [`ascs_core::FaultInjector`] with scripted
//! faults — panic at a specific shard-local update index, truncate a
//! checkpoint at byte `K`, hold worker batches to force queue-full storms,
//! hold recovery to observe degraded mode — all one-shot and in-process,
//! so every failure test is reproducible without real crashes.
//!
//! [`ReplayOracle`] is the ground truth for snapshot consistency: it runs
//! the *same* sample stream through a plain sequential [`ShardedAscs`]
//! (same seed, same shard count, same router), so a serving snapshot at
//! epoch `t` must match the oracle after `t` samples bit for bit.
//!
//! [`FaultFs`] extends the same scripted-fault idea to the durability
//! layer: a [`DurableFs`](ascs_sketch_hash::codec::DurableFs) over the
//! real filesystem that can tear writes, accept short writes, fail the
//! Nth fsync, run out of space, or die wholesale at the Nth operation —
//! the primitive behind the kill-at-every-crash-point recovery matrix.

use ascs_core::config::AscsConfig;
use ascs_core::{FaultInjector, HyperParameters, Sample, ShardUpdate, ShardedAscs, StreamContext};
use ascs_count_sketch::CountSketch;
use ascs_sketch_hash::codec::{
    FaultSiteRegistry, FS_FAULT_SITES, SITE_FS_CRASH, SITE_FS_ENOSPC, SITE_FS_FAIL_DIR_SYNC,
    SITE_FS_FAIL_SYNC, SITE_FS_SHORT_WRITE, SITE_FS_TORN_WRITE,
};
use ascs_sketch_hash::splitmix64;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Site name recorded when a scripted worker panic fires.
pub const SITE_PLAN_PANIC: &str = "plan.worker_panic";
/// Site name recorded when a scripted checkpoint truncation fires.
pub const SITE_PLAN_TORN_CHECKPOINT: &str = "plan.torn_checkpoint";
/// Every [`FaultPlan`]-level fault site.
pub const PLAN_FAULT_SITES: &[&str] = &[SITE_PLAN_PANIC, SITE_PLAN_TORN_CHECKPOINT];

#[derive(Debug, Clone, Copy)]
enum TriggerKind {
    OneShot,
    EveryN(u64),
    Probability(f64),
}

/// A re-armable firing rule for scripted faults. The classic scripted
/// faults are one-shot — each fires on its first match and never again.
/// A `Trigger` generalises that: [`Trigger::one_shot`] keeps the old
/// behaviour, [`Trigger::every`] re-arms after every `n` matching events,
/// and [`Trigger::probability`] fires each matching event independently
/// with probability `p`, driven by a seeded [`splitmix64`] chain so the
/// firing pattern is a pure function of the seed.
#[derive(Debug, Clone)]
pub struct Trigger {
    kind: TriggerKind,
    matches: u64,
    fired: u64,
    rng: u64,
}

impl Trigger {
    fn with_kind(kind: TriggerKind, rng: u64) -> Self {
        Self {
            kind,
            matches: 0,
            fired: 0,
            rng,
        }
    }

    /// Fires on the first matching event only (the classic behaviour).
    pub fn one_shot() -> Self {
        Self::with_kind(TriggerKind::OneShot, 0)
    }

    /// Fires on every `n`-th matching event (the `n`-th, `2n`-th, …).
    ///
    /// # Panics
    /// If `n` is zero.
    pub fn every(n: u64) -> Self {
        assert!(n >= 1, "Trigger::every needs n >= 1");
        Self::with_kind(TriggerKind::EveryN(n), 0)
    }

    /// Fires each matching event independently with probability `p`,
    /// deterministically derived from `seed`.
    pub fn probability(p: f64, seed: u64) -> Self {
        Self::with_kind(
            TriggerKind::Probability(p.clamp(0.0, 1.0)),
            splitmix64(seed),
        )
    }

    /// Registers one matching event and decides whether the fault fires.
    pub fn offer(&mut self) -> bool {
        self.matches += 1;
        let fire = match self.kind {
            TriggerKind::OneShot => self.fired == 0,
            TriggerKind::EveryN(n) => self.matches.is_multiple_of(n),
            TriggerKind::Probability(p) => {
                self.rng = splitmix64(self.rng);
                ((self.rng >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
        };
        if fire {
            self.fired += 1;
        }
        fire
    }

    /// Times this trigger has fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Matching events offered to this trigger.
    pub fn matches(&self) -> u64 {
        self.matches
    }
}

#[derive(Default)]
struct Holds {
    batches: bool,
    recovery: bool,
    /// Workers currently parked in the batches hold. A worker blocked in
    /// `recv` pops one more batch before it reaches the hold, so a full
    /// queue is only *stably* full once every worker is parked here.
    parked: usize,
}

/// A scripted, deterministic fault plan. Build it with the `panic_at` /
/// `truncate_checkpoint_at` constructors, share it (`Arc`) with
/// `ServingEstimator::launch_with_faults`, and flip the runtime holds from
/// the test thread. Scripted faults are **one-shot**: each fires on its
/// first match and never again, so a restarted worker replays cleanly.
#[derive(Default)]
pub struct FaultPlan {
    /// Pending `(shard, shard-local update index)` panics.
    panics: Mutex<Vec<(usize, u64)>>,
    /// Pending `(shard, truncate-at-byte)` checkpoint corruptions.
    truncations: Mutex<Vec<(usize, usize)>>,
    /// Re-armable panic rules, offered one matching event per delivery of
    /// a shard-local update (after the one-shot script is consulted).
    panic_triggers: Mutex<Vec<(usize, Trigger)>>,
    holds: Mutex<Holds>,
    released: Condvar,
    panics_fired: Mutex<u64>,
    truncations_fired: Mutex<u64>,
    recoveries_started: Mutex<u64>,
    /// When set, injected panics also fire during recovery replay.
    inject_recovery: bool,
    registry: Option<Arc<FaultSiteRegistry>>,
}

impl FaultPlan {
    /// An empty plan (no scripted faults, no holds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a one-shot panic right before `shard` applies its
    /// `update_index`-th update (0-based, counted across all first-delivery
    /// batches of that shard).
    #[must_use]
    pub fn panic_at(self, shard: usize, update_index: u64) -> Self {
        lock(&self.panics).push((shard, update_index));
        self
    }

    /// Schedules a one-shot truncation of `shard`'s next checkpoint to
    /// `at` bytes before validation — the checkpoint must be rejected and
    /// the previous good one kept.
    #[must_use]
    pub fn truncate_checkpoint_at(self, shard: usize, at: usize) -> Self {
        lock(&self.truncations).push((shard, at));
        self
    }

    /// Attaches a re-armable panic rule for `shard`: the trigger is offered
    /// one matching event per shard-local update delivered to that shard
    /// and panics the worker whenever it fires — including repeatedly, so
    /// restart budgets and crash loops can be exercised.
    #[must_use]
    pub fn panic_trigger(self, shard: usize, trigger: Trigger) -> Self {
        lock(&self.panic_triggers).push((shard, trigger));
        self
    }

    /// Opts this plan into fault injection *during recovery replay*: by
    /// default a restarted worker replays without injection so one-shot
    /// panics cannot loop; with this set, panic rules keep firing during
    /// the replay and the supervisor's restart budget bounds the loop.
    #[must_use]
    pub fn with_recovery_injection(mut self) -> Self {
        self.inject_recovery = true;
        self
    }

    /// Attaches a fault-site registry: plan-level sites are registered up
    /// front and recorded each time a scripted fault fires.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<FaultSiteRegistry>) -> Self {
        for site in PLAN_FAULT_SITES {
            registry.register(site);
        }
        self.registry = Some(registry);
        self
    }

    /// Arms one more one-shot panic after construction (`&self`, so a test
    /// can keep scripting faults against a plan already shared with a live
    /// serving instance).
    pub fn arm_panic(&self, shard: usize, update_index: u64) {
        lock(&self.panics).push((shard, update_index));
    }

    /// Arms one more one-shot checkpoint truncation after construction.
    pub fn arm_truncation(&self, shard: usize, at: usize) {
        lock(&self.truncations).push((shard, at));
    }

    fn record(&self, site: &'static str) {
        if let Some(registry) = &self.registry {
            registry.record(site);
        }
    }

    /// While set, every worker blocks before applying a batch — queues
    /// fill and `try_ingest` must surface `Overloaded`. Release before
    /// dropping the serving instance.
    pub fn set_hold_batches(&self, hold: bool) {
        lock(&self.holds).batches = hold;
        self.released.notify_all();
    }

    /// While set, a recovering worker blocks before its restore + replay —
    /// the window in which readers must see degraded (stale, flagged)
    /// snapshots. Release before dropping the serving instance.
    pub fn set_hold_recovery(&self, hold: bool) {
        lock(&self.holds).recovery = hold;
        self.released.notify_all();
    }

    /// Scripted panics that have fired.
    pub fn panics_fired(&self) -> u64 {
        *lock(&self.panics_fired)
    }

    /// Scripted checkpoint truncations that have fired.
    pub fn truncations_fired(&self) -> u64 {
        *lock(&self.truncations_fired)
    }

    /// Worker recoveries that have started (restore + replay entered).
    pub fn recoveries_started(&self) -> u64 {
        *lock(&self.recoveries_started)
    }

    /// Workers currently parked in the batches hold. Overload tests must
    /// wait for this to reach the shard count before treating a full queue
    /// as stable: until then a worker that was blocked in `recv` can still
    /// absorb one batch on its way into the hold, freeing a slot.
    pub fn workers_held(&self) -> usize {
        lock(&self.holds).parked
    }

    fn wait_while(&self, which: fn(&Holds) -> bool) {
        let mut holds = lock(&self.holds);
        while which(&holds) {
            holds = self
                .released
                .wait(holds)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl FaultInjector for FaultPlan {
    fn inject_panic(&self, shard: usize, update_index: u64) -> bool {
        let mut pending = lock(&self.panics);
        if let Some(pos) = pending
            .iter()
            .position(|&(s, i)| s == shard && i == update_index)
        {
            pending.remove(pos);
            *lock(&self.panics_fired) += 1;
            self.record(SITE_PLAN_PANIC);
            return true;
        }
        drop(pending);
        let mut triggers = lock(&self.panic_triggers);
        for (s, trigger) in triggers.iter_mut() {
            if *s == shard && trigger.offer() {
                *lock(&self.panics_fired) += 1;
                self.record(SITE_PLAN_PANIC);
                return true;
            }
        }
        false
    }

    fn inject_during_recovery(&self) -> bool {
        self.inject_recovery
    }

    fn corrupt_checkpoint(&self, shard: usize, bytes: &mut Vec<u8>) {
        let mut pending = lock(&self.truncations);
        if let Some(pos) = pending.iter().position(|&(s, _)| s == shard) {
            let (_, at) = pending.remove(pos);
            bytes.truncate(at.min(bytes.len()));
            *lock(&self.truncations_fired) += 1;
            self.record(SITE_PLAN_TORN_CHECKPOINT);
        }
    }

    fn before_recovery(&self, _shard: usize) {
        *lock(&self.recoveries_started) += 1;
        self.wait_while(|h| h.recovery);
    }

    fn before_batch(&self, _shard: usize) {
        let mut holds = lock(&self.holds);
        if !holds.batches {
            return;
        }
        holds.parked += 1;
        self.released.notify_all();
        while holds.batches {
            holds = self
                .released
                .wait(holds)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        holds.parked -= 1;
    }
}

/// Sequential ground truth for the serving core: the same stream driven
/// through a plain [`ShardedAscs`] with the same configuration, shard
/// count and seed — no threads, no queues, no recovery. Serving snapshots
/// must match this oracle bit for bit at every epoch, panics and torn
/// checkpoints notwithstanding.
pub struct ReplayOracle {
    ctx: StreamContext,
    sharded: ShardedAscs,
    t: u64,
    pending: Vec<ShardUpdate>,
    emitted: u64,
}

impl ReplayOracle {
    /// Builds the oracle. `hyper` selects gated (`Some`) or vanilla
    /// (`None`) workers, exactly mirroring the serving launch entry points.
    pub fn new(config: &AscsConfig, hyper: Option<&HyperParameters>, shards: usize) -> Self {
        let sharded = match hyper {
            Some(hp) => ShardedAscs::new(
                config.geometry,
                hp,
                config.total_samples,
                config.top_k_capacity,
                config.seed,
                shards,
            ),
            None => ShardedAscs::vanilla(
                config.geometry,
                config.total_samples,
                config.top_k_capacity,
                config.seed,
                shards,
            ),
        };
        Self {
            ctx: StreamContext::new(config.dim, config.update_mode, config.estimand),
            sharded,
            t: 0,
            pending: Vec::new(),
            emitted: 0,
        }
    }

    /// Ingests one sample sequentially; returns the updates emitted.
    pub fn ingest(&mut self, sample: &Sample) -> u64 {
        self.t += 1;
        let t = self.t;
        self.pending.clear();
        let pending = &mut self.pending;
        let emitted = self.ctx.ingest(sample, |u| {
            pending.push(ShardUpdate {
                key: u.key,
                value: u.value,
                t,
            });
        });
        self.sharded.offer_batch(&self.pending);
        self.emitted += emitted;
        emitted
    }

    /// The shard a key routes to — used by tests to compute the shard-local
    /// update index a scripted panic should target.
    pub fn shard_of(&self, key: u64) -> usize {
        self.sharded.shard_of(key)
    }

    /// The merged table after `samples()` sequential samples.
    pub fn merged_sketch(&self) -> CountSketch {
        self.sharded.merged_sketch()
    }

    /// Cross-shard top pairs (same ordering contract as the serving
    /// snapshot's top list).
    pub fn top_pairs(&self) -> Vec<(u64, f64)> {
        self.sharded.top_pairs()
    }

    /// Inserted / skipped update counters summed across shards.
    pub fn update_counts(&self) -> (u64, u64) {
        (
            self.sharded.inserted_updates(),
            self.sharded.skipped_updates(),
        )
    }

    /// Samples ingested so far.
    pub fn samples(&self) -> u64 {
        self.t
    }

    /// Pair updates emitted so far.
    pub fn emitted_updates(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_scripted_faults_are_one_shot() {
        let plan = FaultPlan::new().panic_at(1, 5).truncate_checkpoint_at(0, 3);
        assert!(!plan.inject_panic(0, 5), "wrong shard fired");
        assert!(!plan.inject_panic(1, 4), "wrong index fired");
        assert!(plan.inject_panic(1, 5));
        assert!(!plan.inject_panic(1, 5), "panic fired twice");
        assert_eq!(plan.panics_fired(), 1);

        let mut bytes = vec![0u8; 10];
        plan.corrupt_checkpoint(1, &mut bytes);
        assert_eq!(bytes.len(), 10, "wrong shard truncated");
        plan.corrupt_checkpoint(0, &mut bytes);
        assert_eq!(bytes.len(), 3);
        let mut again = vec![0u8; 10];
        plan.corrupt_checkpoint(0, &mut again);
        assert_eq!(again.len(), 10, "truncation fired twice");
        assert_eq!(plan.truncations_fired(), 1);
    }

    #[test]
    fn triggers_fire_per_their_rule_and_deterministically() {
        let mut once = Trigger::one_shot();
        assert!(once.offer());
        assert!(!once.offer());
        assert_eq!((once.fired(), once.matches()), (1, 2));

        let mut third = Trigger::every(3);
        let pattern: Vec<bool> = (0..9).map(|_| third.offer()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(third.fired(), 3);

        let mut a = Trigger::probability(0.5, 42);
        let mut b = Trigger::probability(0.5, 42);
        let pa: Vec<bool> = (0..64).map(|_| a.offer()).collect();
        let pb: Vec<bool> = (0..64).map(|_| b.offer()).collect();
        assert_eq!(pa, pb, "probability trigger not seed-deterministic");
        assert!(a.fired() > 8 && a.fired() < 56, "fired {} of 64", a.fired());
        assert!(!Trigger::probability(0.0, 7).offer());
        assert!(Trigger::probability(1.0, 7).offer());
    }

    #[test]
    fn holds_block_and_release() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new());
        plan.set_hold_batches(true);
        let worker = {
            let plan = plan.clone();
            std::thread::spawn(move || plan.before_batch(0))
        };
        // The worker cannot finish while the hold is set; give it a moment
        // to park, then release and require completion.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!worker.is_finished(), "hold did not block");
        plan.set_hold_batches(false);
        worker.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Filesystem fault injection
// ---------------------------------------------------------------------------

#[derive(Default)]
struct FaultFsState {
    /// Global operation counter (create / write / sync / rename / remove /
    /// sync_dir), the index space of [`FaultFs::crash_at_op`].
    ops: u64,
    writes: u64,
    syncs: u64,
    dir_syncs: u64,
    bytes_written: u64,
    log: Vec<String>,
    crashed: bool,
    crash_at_op: Option<u64>,
    /// `(write index, bytes that reach the file)` — the write *errors*
    /// after a prefix lands, like a real torn write.
    torn_write: Option<(u64, usize)>,
    /// `(write index, bytes accepted)` — the write *succeeds short*,
    /// exercising the caller's partial-write loop.
    short_write: Option<(u64, usize)>,
    /// File-sync indices that fail.
    fail_syncs: Vec<u64>,
    /// Directory-sync indices that fail.
    fail_dir_syncs: Vec<u64>,
    /// Remaining byte budget before every write fails with `StorageFull`.
    enospc_budget: Option<u64>,
    /// Re-armable torn-write rule: `(trigger, bytes that land)`.
    torn_trigger: Option<(Trigger, usize)>,
    /// Re-armable short-write rule: `(trigger, bytes accepted)`.
    short_trigger: Option<(Trigger, usize)>,
    /// Re-armable file-fsync failure rule.
    sync_trigger: Option<Trigger>,
    /// Re-armable directory-fsync failure rule.
    dir_sync_trigger: Option<Trigger>,
    registry: Option<Arc<FaultSiteRegistry>>,
}

impl FaultFsState {
    fn record(&self, site: &'static str) {
        if let Some(registry) = &self.registry {
            registry.record(site);
        }
    }
    /// Counts one operation and applies the crash script: at the crash
    /// point the filesystem "dies" — this operation and every later one
    /// fail. Returns the operation's index.
    fn begin_op(&mut self, what: &str) -> std::io::Result<u64> {
        if self.crashed {
            return Err(std::io::Error::other(format!(
                "simulated crash: {what} after the filesystem died"
            )));
        }
        let op = self.ops;
        self.ops += 1;
        if self.crash_at_op == Some(op) {
            self.crashed = true;
            self.log.push(format!("CRASH at op {op}: {what}"));
            self.record(SITE_FS_CRASH);
            return Err(std::io::Error::other(format!(
                "simulated crash at op {op}: {what}"
            )));
        }
        self.log.push(what.to_string());
        Ok(op)
    }
}

fn short_name(path: &std::path::Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// A [`DurableFs`] wrapper over the real filesystem with scripted fault
/// injection: torn writes (a prefix lands, then an error), short writes
/// (fewer bytes accepted than offered), failing the Nth file or directory
/// fsync, ENOSPC after a byte budget, and a whole-filesystem crash at the
/// Nth operation — the primitive behind the kill-at-every-crash-point
/// recovery matrix. Every operation is appended to an inspectable log so
/// tests can assert protocol ordering (create → write → fsync → rename →
/// directory fsync).
///
/// All faults are scripted up front (builder methods), deterministic, and
/// shared: wrap the finished script in an [`std::sync::Arc`], hand a clone
/// to `ServingEstimator::launch_durable_with_faults` (it coerces to
/// `Arc<dyn DurableFs>`), and keep the other clone to read counters.
///
/// [`DurableFs`]: ascs_sketch_hash::codec::DurableFs
#[derive(Default)]
pub struct FaultFs {
    state: std::sync::Arc<Mutex<FaultFsState>>,
}

impl FaultFs {
    /// A transparent wrapper: no faults, but full counting and logging.
    pub fn new() -> Self {
        Self::default()
    }

    /// The write with this index (0-based, counted across all files)
    /// writes only its first `keep` bytes, then errors.
    #[must_use]
    pub fn torn_write_at(self, write_index: u64, keep: usize) -> Self {
        lock(&self.state).torn_write = Some((write_index, keep));
        self
    }

    /// The write with this index accepts only `keep` bytes and returns
    /// `Ok(keep)` — a well-behaved caller must loop.
    #[must_use]
    pub fn short_write_at(self, write_index: u64, keep: usize) -> Self {
        lock(&self.state).short_write = Some((write_index, keep));
        self
    }

    /// The file fsync with this index (0-based) fails.
    #[must_use]
    pub fn fail_sync(self, sync_index: u64) -> Self {
        lock(&self.state).fail_syncs.push(sync_index);
        self
    }

    /// The directory fsync with this index (0-based) fails.
    #[must_use]
    pub fn fail_dir_sync(self, sync_index: u64) -> Self {
        lock(&self.state).fail_dir_syncs.push(sync_index);
        self
    }

    /// Every write past this cumulative byte budget fails with
    /// [`std::io::ErrorKind::StorageFull`] (nothing further lands).
    #[must_use]
    pub fn enospc_after(self, bytes: u64) -> Self {
        lock(&self.state).enospc_budget = Some(bytes);
        self
    }

    /// The filesystem dies at the operation with this index (0-based over
    /// every create/write/sync/rename/remove/dir-sync): that operation
    /// and all later ones fail. Run once unscripted and read
    /// [`FaultFs::op_count`] to learn the index space.
    #[must_use]
    pub fn crash_at_op(self, op_index: u64) -> Self {
        lock(&self.state).crash_at_op = Some(op_index);
        self
    }

    /// Re-armable torn writes: each time `trigger` fires, the write lands
    /// only its first `keep` bytes and then errors. The one-shot
    /// [`FaultFs::torn_write_at`] script, if also set, is consulted first.
    #[must_use]
    pub fn torn_write_trigger(self, trigger: Trigger, keep: usize) -> Self {
        lock(&self.state).torn_trigger = Some((trigger, keep));
        self
    }

    /// Re-armable short writes: each time `trigger` fires, the write
    /// accepts only `keep` bytes and returns `Ok(keep)`.
    #[must_use]
    pub fn short_write_trigger(self, trigger: Trigger, keep: usize) -> Self {
        lock(&self.state).short_trigger = Some((trigger, keep));
        self
    }

    /// Re-armable file-fsync failures: each time `trigger` fires, the
    /// fsync errors.
    #[must_use]
    pub fn fail_sync_trigger(self, trigger: Trigger) -> Self {
        lock(&self.state).sync_trigger = Some(trigger);
        self
    }

    /// Re-armable directory-fsync failures.
    #[must_use]
    pub fn fail_dir_sync_trigger(self, trigger: Trigger) -> Self {
        lock(&self.state).dir_sync_trigger = Some(trigger);
        self
    }

    /// Attaches a fault-site registry: every filesystem fault site is
    /// registered up front and recorded each time its fault fires.
    #[must_use]
    pub fn with_registry(self, registry: Arc<FaultSiteRegistry>) -> Self {
        for site in FS_FAULT_SITES {
            registry.register(site);
        }
        lock(&self.state).registry = Some(registry);
        self
    }

    /// Arms a one-shot torn write after construction (`&self`, so the
    /// chaos runner can script faults against a live filesystem relative
    /// to its current [`FaultFs::write_count`]).
    pub fn arm_torn_write(&self, write_index: u64, keep: usize) {
        lock(&self.state).torn_write = Some((write_index, keep));
    }

    /// Arms a one-shot short write after construction.
    pub fn arm_short_write(&self, write_index: u64, keep: usize) {
        lock(&self.state).short_write = Some((write_index, keep));
    }

    /// Arms one more failing file fsync after construction.
    pub fn arm_fail_sync(&self, sync_index: u64) {
        lock(&self.state).fail_syncs.push(sync_index);
    }

    /// Arms one more failing directory fsync after construction.
    pub fn arm_fail_dir_sync(&self, index: u64) {
        lock(&self.state).fail_dir_syncs.push(index);
    }

    /// (Re)sets the remaining ENOSPC byte budget after construction.
    pub fn arm_enospc(&self, bytes: u64) {
        lock(&self.state).enospc_budget = Some(bytes);
    }

    /// Operations performed so far.
    pub fn op_count(&self) -> u64 {
        lock(&self.state).ops
    }

    /// Write operations performed so far.
    pub fn write_count(&self) -> u64 {
        lock(&self.state).writes
    }

    /// File fsyncs performed so far.
    pub fn sync_count(&self) -> u64 {
        lock(&self.state).syncs
    }

    /// Directory fsyncs performed so far.
    pub fn dir_sync_count(&self) -> u64 {
        lock(&self.state).dir_syncs
    }

    /// Bytes accepted by writes so far (short writes count what landed).
    pub fn bytes_written(&self) -> u64 {
        lock(&self.state).bytes_written
    }

    /// Whether the scripted crash point has fired.
    pub fn crashed(&self) -> bool {
        lock(&self.state).crashed
    }

    /// A copy of the operation log, in order.
    pub fn log(&self) -> Vec<String> {
        lock(&self.state).log.clone()
    }
}

/// One file opened through [`FaultFs`]; every write and sync goes through
/// the shared fault script.
struct FaultFile {
    inner: std::fs::File,
    name: String,
    state: std::sync::Arc<Mutex<FaultFsState>>,
}

impl std::io::Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut s = lock(&self.state);
        s.begin_op(&format!("write {} bytes -> {}", buf.len(), self.name))?;
        let write_index = s.writes;
        s.writes += 1;
        let torn = match s.torn_write {
            Some((index, keep)) if index == write_index => {
                s.torn_write = None;
                Some(keep)
            }
            _ => match &mut s.torn_trigger {
                Some((trigger, keep)) => trigger.offer().then_some(*keep),
                None => None,
            },
        };
        if let Some(keep) = torn {
            s.record(SITE_FS_TORN_WRITE);
            s.log
                .push(format!("TORN write -> {} after {keep} bytes", self.name));
            drop(s);
            let keep = keep.min(buf.len());
            self.inner.write_all(&buf[..keep])?;
            return Err(std::io::Error::other("injected torn write"));
        }
        let short = match s.short_write {
            Some((index, keep)) if index == write_index => {
                s.short_write = None;
                Some(keep)
            }
            _ => match &mut s.short_trigger {
                Some((trigger, keep)) => trigger.offer().then_some(*keep),
                None => None,
            },
        };
        if let Some(keep) = short {
            let keep = keep.min(buf.len());
            s.record(SITE_FS_SHORT_WRITE);
            s.log.push(format!(
                "SHORT write -> {} accepted {keep} bytes",
                self.name
            ));
            s.bytes_written += keep as u64;
            drop(s);
            self.inner.write_all(&buf[..keep])?;
            return Ok(keep);
        }
        if let Some(budget) = s.enospc_budget {
            if buf.len() as u64 > budget {
                s.record(SITE_FS_ENOSPC);
                s.log.push(format!("ENOSPC write -> {}", self.name));
                return Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                ));
            }
            s.enospc_budget = Some(budget - buf.len() as u64);
        }
        s.bytes_written += buf.len() as u64;
        drop(s);
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl ascs_sketch_hash::codec::DurableFile for FaultFile {
    fn sync(&mut self) -> std::io::Result<()> {
        let mut s = lock(&self.state);
        s.begin_op(&format!("sync {}", self.name))?;
        let sync_index = s.syncs;
        s.syncs += 1;
        let scripted = if let Some(pos) = s.fail_syncs.iter().position(|&i| i == sync_index) {
            s.fail_syncs.swap_remove(pos);
            true
        } else {
            match &mut s.sync_trigger {
                Some(trigger) => trigger.offer(),
                None => false,
            }
        };
        if scripted {
            s.record(SITE_FS_FAIL_SYNC);
            s.log
                .push(format!("FAILED sync {} (index {sync_index})", self.name));
            return Err(std::io::Error::other("injected fsync failure"));
        }
        drop(s);
        self.inner.sync_all()
    }
}

impl ascs_sketch_hash::codec::DurableFs for FaultFs {
    fn create(
        &self,
        path: &std::path::Path,
    ) -> std::io::Result<Box<dyn ascs_sketch_hash::codec::DurableFile>> {
        let name = short_name(path);
        lock(&self.state).begin_op(&format!("create {name}"))?;
        let inner = std::fs::File::create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            name,
            state: self.state.clone(),
        }))
    }

    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
        lock(&self.state).begin_op(&format!(
            "rename {} -> {}",
            short_name(from),
            short_name(to)
        ))?;
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        lock(&self.state).begin_op(&format!("remove {}", short_name(path)))?;
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        let mut s = lock(&self.state);
        s.begin_op(&format!("sync_dir {}", short_name(dir)))?;
        let dir_sync_index = s.dir_syncs;
        s.dir_syncs += 1;
        let scripted = if let Some(pos) = s.fail_dir_syncs.iter().position(|&i| i == dir_sync_index)
        {
            s.fail_dir_syncs.swap_remove(pos);
            true
        } else {
            match &mut s.dir_sync_trigger {
                Some(trigger) => trigger.offer(),
                None => false,
            }
        };
        if scripted {
            s.record(SITE_FS_FAIL_DIR_SYNC);
            s.log
                .push(format!("FAILED sync_dir (index {dir_sync_index})"));
            return Err(std::io::Error::other("injected directory fsync failure"));
        }
        drop(s);
        std::fs::File::open(dir)?.sync_all()
    }

    fn open_read(&self, path: &std::path::Path) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        let name = short_name(path);
        lock(&self.state).begin_op(&format!("open_read {name}"))?;
        let inner = std::fs::File::open(path)?;
        Ok(Box::new(FaultReadFile {
            inner,
            name,
            state: self.state.clone(),
        }))
    }
}

/// One file opened for reading through [`FaultFs`]: every `read` call
/// counts as an operation against the same crash script as writes, so
/// [`FaultFs::crash_at_op`] can land *mid-recovery*, while the WAL or a
/// checkpoint is being replayed.
struct FaultReadFile {
    inner: std::fs::File,
    name: String,
    state: std::sync::Arc<Mutex<FaultFsState>>,
}

impl std::io::Read for FaultReadFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        lock(&self.state).begin_op(&format!("read {}", self.name))?;
        std::io::Read::read(&mut self.inner, buf)
    }
}

#[cfg(test)]
mod fs_tests {
    use super::*;
    use ascs_sketch_hash::codec::DurableFs as _;
    use std::io::Write as _;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ascs-faultfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn transparent_fs_counts_and_logs_everything() {
        let dir = temp_dir("clean");
        let fs = FaultFs::new();
        let mut f = fs.create(&dir.join("a.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        fs.rename(&dir.join("a.tmp"), &dir.join("a")).unwrap();
        fs.sync_dir(&dir).unwrap();
        fs.remove_file(&dir.join("a")).unwrap();

        assert_eq!(fs.op_count(), 6);
        assert_eq!(fs.write_count(), 1);
        assert_eq!(fs.sync_count(), 1);
        assert_eq!(fs.dir_sync_count(), 1);
        assert_eq!(fs.bytes_written(), 5);
        assert!(!fs.crashed());
        let log = fs.log();
        assert!(log[0].starts_with("create"), "{log:?}");
        assert!(log[1].starts_with("write"), "{log:?}");
        assert!(log[2].starts_with("sync a.tmp"), "{log:?}");
        assert!(log[3].starts_with("rename"), "{log:?}");
        assert!(log[4].starts_with("sync_dir"), "{log:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_lands_prefix_then_errors() {
        let dir = temp_dir("torn");
        let fs = FaultFs::new().torn_write_at(0, 3);
        let mut f = fs.create(&dir.join("t")).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        drop(f);
        assert_eq!(std::fs::read(dir.join("t")).unwrap(), b"abc");
        // The fault is one-shot: a retry through a fresh file succeeds.
        let mut f = fs.create(&dir.join("t2")).unwrap();
        f.write_all(b"abcdef").unwrap();
        drop(f);
        assert_eq!(std::fs::read(dir.join("t2")).unwrap(), b"abcdef");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_forces_the_caller_to_loop() {
        let dir = temp_dir("short");
        let fs = FaultFs::new().short_write_at(0, 2);
        let mut f = fs.create(&dir.join("s")).unwrap();
        // write_all loops over the short acceptance, so the full payload
        // still lands — in two write ops.
        f.write_all(b"abcdef").unwrap();
        drop(f);
        assert_eq!(std::fs::read(dir.join("s")).unwrap(), b"abcdef");
        assert_eq!(fs.write_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_nth_sync_and_enospc_fire_once_each() {
        let dir = temp_dir("syncfull");
        let fs = FaultFs::new().fail_sync(1).enospc_after(4);
        let mut f = fs.create(&dir.join("f")).unwrap();
        f.write_all(b"abcd").unwrap();
        f.sync().unwrap();
        let err = f.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        let err = f.sync().unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        f.sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_op_kills_the_filesystem_permanently() {
        let dir = temp_dir("crash");
        let fs = FaultFs::new().crash_at_op(2);
        let mut f = fs.create(&dir.join("c")).unwrap(); // op 0
        f.write_all(b"ab").unwrap(); // op 1
        let err = f.write_all(b"cd").unwrap_err(); // op 2: crash
        assert!(err.to_string().contains("crash"), "{err}");
        assert!(fs.crashed());
        // Everything after the crash point fails too.
        assert!(f.sync().is_err());
        assert!(fs.create(&dir.join("c2")).is_err());
        assert!(fs.rename(&dir.join("c"), &dir.join("c3")).is_err());
        assert!(fs.sync_dir(&dir).is_err());
        assert_eq!(std::fs::read(dir.join("c")).unwrap(), b"ab");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
