//! Greedy minimisation of a violating [`ChaosSchedule`].
//!
//! When a chaos run trips the invariant oracle, the raw schedule usually
//! carries a dozen faults that have nothing to do with the failure. The
//! shrinker re-runs the schedule with fault components removed one at a
//! time — each scripted fault, each kill's byte corruption, each kill's
//! crash-during-recovery op, each whole kill cycle — and keeps any removal
//! that still reproduces the violation, restarting the scan after every
//! success until a fixpoint: a schedule where removing *any* single
//! component makes the failure disappear.
//!
//! The reproduction predicate is caller-supplied, so tests can shrink
//! against the real [`crate::chaos::run_schedule`] runner (fresh directory
//! per attempt) or against a cheap structural stand-in.

use crate::chaos::ChaosSchedule;

/// One removable component of a schedule, addressed structurally so
/// candidates stay valid as the schedule shrinks.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    /// Remove `faults[fault]` of `lives[life]`.
    Fault { life: usize, fault: usize },
    /// Drop the byte corruption from `lives[life]`'s kill.
    Corrupt { life: usize },
    /// Drop the crash-during-recovery op from `lives[life]`'s kill.
    CrashRecovery { life: usize },
    /// Drop `lives[life]`'s kill entirely (the instance then survives
    /// into the next life).
    Kill { life: usize },
}

fn candidates(schedule: &ChaosSchedule) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (life, plan) in schedule.lives.iter().enumerate() {
        for fault in 0..plan.faults.len() {
            out.push(Candidate::Fault { life, fault });
        }
        if let Some(kill) = plan.kill {
            if kill.corrupt.is_some() {
                out.push(Candidate::Corrupt { life });
            }
            if kill.crash_recovery_at_op.is_some() {
                out.push(Candidate::CrashRecovery { life });
            }
            out.push(Candidate::Kill { life });
        }
    }
    out
}

fn without(schedule: &ChaosSchedule, candidate: Candidate) -> ChaosSchedule {
    let mut next = schedule.clone();
    match candidate {
        Candidate::Fault { life, fault } => {
            next.lives[life].faults.remove(fault);
        }
        Candidate::Corrupt { life } => {
            if let Some(kill) = next.lives[life].kill.as_mut() {
                kill.corrupt = None;
            }
        }
        Candidate::CrashRecovery { life } => {
            if let Some(kill) = next.lives[life].kill.as_mut() {
                kill.crash_recovery_at_op = None;
            }
        }
        Candidate::Kill { life } => {
            next.lives[life].kill = None;
        }
    }
    next
}

/// Greedily minimises `schedule` under `reproduces`: returns a schedule
/// that still satisfies the predicate but from which no single fault
/// component can be removed without losing the reproduction.
///
/// `reproduces` must return `true` for the input schedule itself (the
/// caller has already observed the violation); if it does not, the input
/// is returned unchanged. Each candidate removal calls the predicate once,
/// so the cost is `O(components²)` runs in the worst case — small, since
/// generated schedules carry at most a few dozen components.
pub fn shrink(
    schedule: &ChaosSchedule,
    mut reproduces: impl FnMut(&ChaosSchedule) -> bool,
) -> ChaosSchedule {
    let mut current = schedule.clone();
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            let attempt = without(&current, candidate);
            if reproduces(&attempt) {
                current = attempt;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosFault, ChaosOptions, CorruptByte, KillPlan, LifePlan};

    /// A structural predicate: "fails" iff a PoisonSample at sample 5
    /// survives anywhere in the schedule. The shrinker must strip every
    /// other component.
    #[test]
    fn shrinks_to_the_single_guilty_fault() {
        let schedule = ChaosSchedule {
            seed: 99,
            lives: vec![
                LifePlan {
                    end_sample: 48,
                    faults: vec![
                        ChaosFault::WorkerPanic {
                            shard: 0,
                            at_sample: 3,
                            offset: 7,
                        },
                        ChaosFault::PoisonSample { at_sample: 5 },
                        ChaosFault::Enospc { budget: 512 },
                    ],
                    kill: Some(KillPlan {
                        corrupt: Some(CorruptByte {
                            file_salt: 1,
                            offset_salt: 2,
                            xor: 3,
                        }),
                        crash_recovery_at_op: Some(1),
                    }),
                },
                LifePlan {
                    end_sample: 96,
                    faults: vec![ChaosFault::FailWalSync { sync: 0 }],
                    kill: None,
                },
            ],
        };
        let guilty = |s: &ChaosSchedule| {
            s.lives
                .iter()
                .flat_map(|l| &l.faults)
                .any(|f| matches!(f, ChaosFault::PoisonSample { at_sample: 5 }))
        };
        let minimal = shrink(&schedule, guilty);
        assert_eq!(minimal.fault_count(), 1);
        assert_eq!(
            minimal
                .lives
                .iter()
                .flat_map(|l| &l.faults)
                .collect::<Vec<_>>(),
            vec![&ChaosFault::PoisonSample { at_sample: 5 }]
        );
        assert!(minimal.lives.iter().all(|l| l.kill.is_none()));
        assert_eq!(minimal.seed, 99, "seed preserved for reproduction");
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let opts = ChaosOptions::default();
        let schedule = ChaosSchedule::generate(5, &opts);
        let shrunk = shrink(&schedule, |_| false);
        assert_eq!(shrunk, schedule);
    }
}
