//! The deterministic chaos harness: seeded randomized fault schedules
//! composed across *every* fault dimension the repo knows, interleaved
//! against live serving traffic, with a standing invariant oracle.
//!
//! A [`ChaosSchedule`] is a pure function of its seed: a sequence of
//! process *lives*, each carrying scripted faults (worker panics, torn
//! checkpoints, overload windows, torn/short WAL writes, failed file and
//! directory fsyncs, ENOSPC, poisoned samples) and optionally ending in a
//! kill — a [`ServingEstimator::simulate_crash`] teardown, optionally
//! followed by on-disk byte corruption and/or a scripted filesystem crash
//! *during* the next life's recovery (exercising the bounded re-entry
//! budget of [`recover_with_reentry`]).
//!
//! [`run_schedule`] executes a schedule against a real durable serving
//! instance with concurrent [`SnapshotReader`] threads and checks the
//! standing invariants after every chaos event and at teardown:
//!
//! * snapshot epochs are monotone and never torn (reader-side);
//! * served estimates are bit-identical to the sequential [`ReplayOracle`]
//!   at their epoch — tables, gate counters and top lists;
//! * recovered state reaches at least the last durably-acknowledged epoch
//!   (unless that cycle corrupted disk bytes on purpose) and is
//!   bit-identical to the per-epoch truth;
//! * health counters are mutually coherent
//!   ([`ServingHealth::coherence_violations`]) and every harness-visible
//!   counter (panics fired, torn checkpoints, timeouts, quarantines,
//!   ingested samples, emitted updates) matches its script-side
//!   expectation exactly at every snapshot barrier;
//! * no ingest is silently dropped.
//!
//! Violations surface as a typed [`Violation`] carrying the chaos seed,
//! so every failure message names the seed that reproduces it. The
//! [`crate::shrink`] module minimises a violating schedule greedily.
//!
//! [`ServingEstimator::simulate_crash`]: ascs_core::serve::ServingEstimator::simulate_crash
//! [`recover_with_reentry`]: ascs_core::recover_with_reentry
//! [`SnapshotReader`]: ascs_core::serve::SnapshotReader
//! [`ServingHealth::coherence_violations`]: ascs_core::serve::ServingHealth::coherence_violations
//! [`ReplayOracle`]: crate::ReplayOracle

use crate::fault::{FaultFs, FaultPlan, PLAN_FAULT_SITES};
use crate::ReplayOracle;
use ascs_core::config::{AscsConfig, EstimandKind, SketchGeometry, UpdateMode};
use ascs_core::serve::{IngestError, ServeOptions, ServingEstimator, SnapshotReader};
use ascs_core::{
    recover_with_reentry, DurabilityOptions, HyperParameters, RecoveredState, RecoveryManager,
    Sample, StreamContext,
};
use ascs_sketch_hash::codec::{DurableFs, FaultSiteRegistry, FS_FAULT_SITES};
use ascs_sketch_hash::splitmix64;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Site recorded each time an overload window saturates the queues.
pub const SITE_CHAOS_OVERLOAD: &str = "chaos.overload_window";
/// Site recorded each time a poisoned (non-finite) sample is offered.
pub const SITE_CHAOS_POISON: &str = "chaos.poison_sample";
/// Site recorded each time a kill/cold-restart cycle runs.
pub const SITE_CHAOS_KILL: &str = "chaos.kill_cycle";
/// Site recorded each time an on-disk byte is corrupted between lives.
pub const SITE_CHAOS_CORRUPT: &str = "chaos.corrupt_byte";

/// Runner-level chaos sites (the filesystem and plan sites live next to
/// their injectors: [`FS_FAULT_SITES`], [`PLAN_FAULT_SITES`]).
const RUNNER_SITES: &[&str] = &[
    SITE_CHAOS_OVERLOAD,
    SITE_CHAOS_POISON,
    SITE_CHAOS_KILL,
    SITE_CHAOS_CORRUPT,
];

/// Every fault site a chaos run can fire, across all three layers. The
/// bench's coverage gate requires each of these to have fired at least
/// once over a smoke/soak sweep.
pub const CHAOS_SITES: &[&str] = &[
    "fs.torn_write",
    "fs.short_write",
    "fs.fail_sync",
    "fs.fail_dir_sync",
    "fs.enospc",
    "fs.crash_at_op",
    "plan.worker_panic",
    "plan.torn_checkpoint",
    SITE_CHAOS_OVERLOAD,
    SITE_CHAOS_POISON,
    SITE_CHAOS_KILL,
    SITE_CHAOS_CORRUPT,
];

/// Tunables of a chaos run. The defaults keep one schedule in the tens of
/// milliseconds so a 64-seed smoke sweep fits in CI.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Feature dimensionality of the stream.
    pub dim: u64,
    /// Samples in the full stream (the final life ends here).
    pub total_samples: u64,
    /// Shard workers per serving instance.
    pub shards: usize,
    /// Batches per shard queue — small, so overload windows saturate fast.
    pub queue_capacity: usize,
    /// Batches between in-memory worker checkpoints.
    pub checkpoint_interval: usize,
    /// Samples between durable checkpoint generations.
    pub checkpoint_every: u64,
    /// Ceiling on scripted faults per life.
    pub max_faults_per_life: usize,
    /// Ceiling on process lives per schedule.
    pub max_lives: usize,
    /// Concurrent snapshot-reader threads per life.
    pub reader_threads: usize,
    /// Re-entry budget for crash-during-recovery cycles.
    pub recovery_budget: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            dim: 10,
            total_samples: 96,
            shards: 2,
            queue_capacity: 4,
            checkpoint_interval: 8,
            checkpoint_every: 16,
            max_faults_per_life: 4,
            max_lives: 3,
            reader_threads: 2,
            recovery_budget: 3,
        }
    }
}

impl ChaosOptions {
    /// The ASCS configuration every chaos instance (and its oracle) uses.
    pub fn config(&self, seed: u64) -> AscsConfig {
        AscsConfig {
            dim: self.dim,
            total_samples: self.total_samples,
            geometry: SketchGeometry::new(5, 512),
            alpha: 0.05,
            signal_strength: 0.5,
            sigma: 1.0,
            delta: 0.05,
            delta_star: 0.20,
            tau0: 1e-4,
            estimand: EstimandKind::Covariance,
            update_mode: UpdateMode::Product,
            seed,
            top_k_capacity: 16,
        }
    }

    /// Gated hyperparameters matching [`ChaosOptions::config`].
    pub fn hyper(&self) -> HyperParameters {
        HyperParameters {
            t0: (self.total_samples / 4).max(1),
            theta: 0.2,
            tau0: 1e-4,
            delta: 0.05,
            delta_star: 0.20,
        }
    }

    fn serve_options(&self) -> ServeOptions {
        ServeOptions {
            shards: self.shards,
            queue_capacity: self.queue_capacity,
            checkpoint_interval: self.checkpoint_interval,
            max_restarts: 8,
            ingest_timeout: Duration::from_secs(30),
        }
    }

    fn durability(&self, dir: &Path) -> DurabilityOptions {
        DurabilityOptions {
            checkpoint_every: self.checkpoint_every,
            wal_segment_records: 16,
            ..DurabilityOptions::new(dir)
        }
    }
}

/// One scripted fault inside a life. Sample-indexed faults fire when the
/// driver reaches that stream time; index-based filesystem faults are
/// armed relative to the live filesystem counters at the start of the
/// life, so they stay meaningful after shrinking removes earlier faults.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosFault {
    /// Panic `shard`'s worker while it applies sample `at_sample`
    /// (`offset` selects the update within the sample).
    WorkerPanic {
        /// Target shard.
        shard: usize,
        /// Stream time whose batch hosts the panic.
        at_sample: u64,
        /// Raw offset; reduced modulo the shard's per-sample update count.
        offset: u64,
    },
    /// Truncate `shard`'s next in-memory checkpoint to `keep` bytes
    /// (validation must reject it and keep the previous good one).
    TornCheckpoint {
        /// Target shard.
        shard: usize,
        /// Bytes kept — far below any valid checkpoint.
        keep: usize,
    },
    /// Hold the workers at stream time `at_sample` until the queues
    /// saturate, demand `timeouts` deadline-bounded ingests all time out,
    /// then release and drain.
    OverloadWindow {
        /// Stream time to open the window at.
        at_sample: u64,
        /// `ingest_with_deadline` calls that must observe `Timeout`.
        timeouts: u32,
    },
    /// Tear the `write`-th write from now (a prefix lands, then an error).
    TornWalWrite {
        /// Write index relative to the life's start.
        write: u64,
        /// Bytes that land before the error.
        keep: usize,
    },
    /// Short-accept the `write`-th write from now (caller must loop).
    ShortWalWrite {
        /// Write index relative to the life's start.
        write: u64,
        /// Bytes accepted (at least 1).
        keep: usize,
    },
    /// Fail the `sync`-th file fsync from now.
    FailWalSync {
        /// File-fsync index relative to the life's start.
        sync: u64,
    },
    /// Fail the `index`-th directory fsync from now.
    FailDirSync {
        /// Directory-fsync index relative to the life's start.
        index: u64,
    },
    /// Exhaust the write budget: every write past `budget` further bytes
    /// fails with `StorageFull`, durably degrading the store.
    Enospc {
        /// Remaining byte budget.
        budget: u64,
    },
    /// Offer a NaN-poisoned sample at stream time `at_sample`; it must be
    /// quarantined without advancing the stream.
    PoisonSample {
        /// Stream time of the poisoned offer.
        at_sample: u64,
    },
    /// Sabotage (never generated): silently skip serving ingestion of
    /// sample `at_sample` while the oracle still counts it. The invariant
    /// oracle must catch the divergence — the shrinker test plants this.
    SilentDrop {
        /// Stream time of the dropped sample.
        at_sample: u64,
    },
}

/// A byte flip applied to one on-disk file between lives. File and offset
/// are picked by reducing the salts against the directory listing, so the
/// corruption stays valid after shrinking changes what is on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptByte {
    /// Selects the file (modulo the sorted directory listing).
    pub file_salt: u64,
    /// Selects the byte offset (modulo the file length).
    pub offset_salt: u64,
    /// XOR mask; forced odd so the byte always changes.
    pub xor: u8,
}

/// How a life ends when it does not run to the schedule's final sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Corrupt one durable byte after the kill, before the next recovery.
    pub corrupt: Option<CorruptByte>,
    /// Crash the filesystem at this operation index *during* the next
    /// life's recovery; the re-entry budget must absorb it.
    pub crash_recovery_at_op: Option<u64>,
}

/// One process life: ingest up to `end_sample` with `faults` armed, then
/// either die (`kill`) or carry the instance into the next life.
#[derive(Debug, Clone, PartialEq)]
pub struct LifePlan {
    /// Stream time this life runs to.
    pub end_sample: u64,
    /// Faults armed for this life.
    pub faults: Vec<ChaosFault>,
    /// `Some` → kill/cold-restart cycle after `end_sample`; `None` → the
    /// instance survives into the next life (or shuts down cleanly if
    /// this is the last).
    pub kill: Option<KillPlan>,
}

/// A full chaos schedule: a seed plus the per-life fault script derived
/// from it. [`ChaosSchedule::generate`] is a pure function of
/// `(seed, options)`, so a seed alone reproduces a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The generating seed (kept through shrinking for reproduction).
    pub seed: u64,
    /// The lives, in order; the last one ends at the stream total.
    pub lives: Vec<LifePlan>,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Non-sabotage fault kinds the generator draws from.
const FAULT_KINDS: u64 = 9;

impl ChaosSchedule {
    /// Generates the schedule for `seed`. Low seed residues force
    /// coverage: `seed % 9` picks the first fault kind of life 0, odd
    /// seeds (and every `seed % 4 != 0`) get at least one kill cycle, and
    /// `seed % 4` residues 1/2/3 add byte corruption, crash-during-
    /// recovery, or both to the first kill — so any 64 consecutive seeds
    /// exercise every fault site.
    pub fn generate(seed: u64, opts: &ChaosOptions) -> Self {
        let mut rng = Rng(splitmix64(seed ^ 0xC3A0_5C3A_05C3_A05C));
        let max_lives = opts.max_lives.max(1) as u64;
        let lives_n = if seed.is_multiple_of(4) || max_lives == 1 {
            1 + rng.below(max_lives)
        } else {
            2 + rng.below(max_lives - 1)
        } as usize;
        let total = opts.total_samples;
        let mut lives = Vec::with_capacity(lives_n);
        let mut start = 0u64;
        for life in 0..lives_n {
            let end = if life + 1 == lives_n {
                total
            } else {
                (total * (life as u64 + 1) / lives_n as u64).clamp(start + 1, total)
            };
            let span = end - start;
            let mut faults = Vec::new();
            let n_faults = 1 + rng.below(opts.max_faults_per_life.max(1) as u64) as usize;
            let mut panics_in_life = 0usize;
            for f in 0..n_faults {
                let mut kind = if life == 0 && f == 0 {
                    seed % FAULT_KINDS
                } else {
                    rng.below(FAULT_KINDS)
                };
                if kind == 0 && panics_in_life >= 2 {
                    // Keep panic counts far below the restart budget.
                    kind = 8;
                }
                let fault = match kind {
                    0 => {
                        panics_in_life += 1;
                        ChaosFault::WorkerPanic {
                            shard: rng.below(opts.shards as u64) as usize,
                            at_sample: start + 1 + rng.below(span),
                            offset: rng.next(),
                        }
                    }
                    1 => ChaosFault::TornCheckpoint {
                        shard: rng.below(opts.shards as u64) as usize,
                        keep: rng.below(12) as usize,
                    },
                    2 => {
                        let margin = opts.queue_capacity as u64 + 4;
                        let at_sample = if span > margin + 1 {
                            start + 1 + rng.below(span - margin)
                        } else {
                            start + 1
                        };
                        ChaosFault::OverloadWindow {
                            at_sample,
                            timeouts: 1 + rng.below(2) as u32,
                        }
                    }
                    3 => ChaosFault::TornWalWrite {
                        write: rng.below(8),
                        keep: rng.below(6) as usize,
                    },
                    4 => ChaosFault::ShortWalWrite {
                        write: rng.below(8),
                        keep: 1 + rng.below(3) as usize,
                    },
                    5 => ChaosFault::FailWalSync { sync: rng.below(8) },
                    6 => ChaosFault::FailDirSync {
                        index: rng.below(2),
                    },
                    7 => ChaosFault::Enospc {
                        budget: 256 + rng.below(2048),
                    },
                    _ => ChaosFault::PoisonSample {
                        at_sample: start + 1 + rng.below(span),
                    },
                };
                faults.push(fault);
            }
            let kill = if life + 1 == lives_n {
                None
            } else {
                let (corrupt, crash) = if life == 0 {
                    (seed % 4 == 1 || seed % 4 == 3, seed % 4 >= 2)
                } else {
                    (rng.below(4) == 0, rng.below(4) == 0)
                };
                Some(KillPlan {
                    corrupt: corrupt.then(|| CorruptByte {
                        file_salt: rng.next(),
                        offset_salt: rng.next(),
                        xor: (rng.next() & 0xFF) as u8,
                    }),
                    crash_recovery_at_op: crash.then(|| rng.below(3)),
                })
            };
            lives.push(LifePlan {
                end_sample: end,
                faults,
                kill,
            });
            start = end;
        }
        Self { seed, lives }
    }

    /// Scripted faults plus kill components — what the shrinker counts.
    pub fn fault_count(&self) -> usize {
        self.lives
            .iter()
            .map(|l| {
                l.faults.len()
                    + l.kill.map_or(0, |k| {
                        1 + usize::from(k.corrupt.is_some())
                            + usize::from(k.crash_recovery_at_op.is_some())
                    })
            })
            .sum()
    }

    /// A human-readable rendering — printed for minimal schedules.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("chaos schedule (seed {}):\n", self.seed);
        for (i, life) in self.lives.iter().enumerate() {
            let _ = writeln!(out, "  life {i} (through sample {}):", life.end_sample);
            for fault in &life.faults {
                let _ = writeln!(out, "    - {fault:?}");
            }
            match life.kill {
                Some(kill) => {
                    let _ = writeln!(out, "    = KILL {kill:?}");
                }
                None if i + 1 == self.lives.len() => {
                    let _ = writeln!(out, "    = clean shutdown + cold-start audit");
                }
                None => {
                    let _ = writeln!(out, "    = instance survives into next life");
                }
            }
        }
        out
    }
}

/// One invariant violation, carrying the chaos seed so every failure
/// message names its reproduction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The schedule seed that produced the violation.
    pub seed: u64,
    /// Which standing invariant failed.
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[chaos seed {}] invariant violated: {}: {}",
            self.seed, self.invariant, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// What a clean chaos run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// The schedule seed.
    pub seed: u64,
    /// Process lives executed.
    pub lives: usize,
    /// Kill/cold-restart cycles executed.
    pub kills: u64,
    /// Invariant checks that passed.
    pub invariant_checks: u64,
    /// Stream time at teardown (always the schedule total).
    pub final_epoch: u64,
}

/// The deterministic chaos sample stream as raw values: dense, never
/// zero, alphabet `{±0.9, ±0.3}`, each value a pure function of
/// `(seed, t, feature)`.
pub fn chaos_values(seed: u64, t: u64, dim: u64) -> Vec<f64> {
    const ALPHABET: [f64; 4] = [-0.9, -0.3, 0.3, 0.9];
    (0..dim)
        .map(|f| {
            let h = splitmix64(seed ^ splitmix64(t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ f));
            ALPHABET[(h % 4) as usize]
        })
        .collect()
}

/// [`chaos_values`] wrapped as a dense [`Sample`].
pub fn chaos_sample(seed: u64, t: u64, dim: u64) -> Sample {
    Sample::dense(chaos_values(seed, t, dim))
}

/// Bit-pattern truth at one epoch of the sequential oracle pass.
struct EpochTruth {
    table: Vec<u64>,
    inserted: u64,
    skipped: u64,
    top: Vec<(u64, u64)>,
    emitted: u64,
}

fn truth_of(oracle: &ReplayOracle) -> EpochTruth {
    EpochTruth {
        table: oracle
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        inserted: oracle.update_counts().0,
        skipped: oracle.update_counts().1,
        top: oracle
            .top_pairs()
            .into_iter()
            .map(|(k, v)| (k, v.to_bits()))
            .collect(),
        emitted: oracle.emitted_updates(),
    }
}

/// Concurrent snapshot readers: each polls [`SnapshotReader::current`],
/// requiring epochs monotone, never past the stream total, and estimates
/// finite — the reader-side half of the "never torn" invariant.
struct Readers {
    stop: Arc<AtomicBool>,
    violations: Arc<Mutex<Vec<String>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Readers {
    fn spawn(reader: &SnapshotReader, n: usize, total: u64) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(Mutex::new(Vec::new()));
        let handles = (0..n)
            .map(|_| {
                let reader = reader.clone();
                let stop = stop.clone();
                let violations = violations.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let view = reader.current();
                        let epoch = view.snapshot.epoch();
                        if epoch < last_epoch {
                            violations
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(format!("epoch went backwards: {last_epoch} -> {epoch}"));
                            break;
                        }
                        if epoch > total {
                            violations
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(format!("epoch {epoch} past stream total {total}"));
                            break;
                        }
                        if !view.snapshot.estimate(0).is_finite() {
                            violations
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(format!("non-finite estimate at epoch {epoch}"));
                            break;
                        }
                        last_epoch = epoch;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                })
            })
            .collect();
        Self {
            stop,
            violations,
            handles,
        }
    }

    fn finish(self) -> Vec<String> {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.handles {
            let _ = handle.join();
        }
        Arc::try_unwrap(self.violations)
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .unwrap_or_else(|arc| {
                arc.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
            })
    }
}

/// Script-side expectations about counters that must be *exact* at every
/// snapshot barrier; reset per process life (counters are per-instance).
#[derive(Default)]
struct Expected {
    timeouts: u64,
    quarantined: u64,
    min_overloads: u64,
}

/// Corrupts one durable byte: file picked from the sorted directory
/// listing by `file_salt`, offset by `offset_salt`, mask forced odd.
/// Returns a description, or `None` if the directory holds no bytes.
fn corrupt_one_byte(dir: &Path, plan: CorruptByte) -> std::io::Result<Option<String>> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file() && std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .collect();
    files.sort();
    if files.is_empty() {
        return Ok(None);
    }
    let path = &files[(plan.file_salt % files.len() as u64) as usize];
    let mut bytes = std::fs::read(path)?;
    let offset = (plan.offset_salt % bytes.len() as u64) as usize;
    bytes[offset] ^= plan.xor | 1;
    std::fs::write(path, &bytes)?;
    Ok(Some(format!(
        "flipped byte {offset} of {}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    )))
}

/// Executes one schedule in `dir` (cleared up front), recording fault
/// firings into `registry` and checking the standing invariants after
/// every chaos event, at every barrier, and at teardown.
///
/// # Errors
/// The first [`Violation`] found, if any.
pub fn run_schedule(
    schedule: &ChaosSchedule,
    opts: &ChaosOptions,
    registry: &Arc<FaultSiteRegistry>,
    dir: &Path,
) -> Result<ChaosReport, Violation> {
    for site in FS_FAULT_SITES
        .iter()
        .chain(PLAN_FAULT_SITES)
        .chain(RUNNER_SITES)
    {
        registry.register(site);
    }
    let _ = std::fs::remove_dir_all(dir);
    Runner::new(schedule, opts, registry, dir).run()
}

const CHECK_EVERY: u64 = 16;

struct Runner<'a> {
    schedule: &'a ChaosSchedule,
    opts: &'a ChaosOptions,
    registry: &'a Arc<FaultSiteRegistry>,
    dir: &'a Path,
    cfg: AscsConfig,
    hyper: HyperParameters,
    /// Updates each shard receives per dense sample (constant — samples
    /// never carry zeros), the key to absolute panic indices.
    shard_k: Vec<u64>,
    truth: Vec<EpochTruth>,
    checks: u64,
    kills: u64,
}

/// The live half of a process life, torn down together.
struct Life {
    serving: ServingEstimator,
    plan: Arc<FaultPlan>,
    fs: Arc<FaultFs>,
    readers: Readers,
    expected: Expected,
}

impl<'a> Runner<'a> {
    fn new(
        schedule: &'a ChaosSchedule,
        opts: &'a ChaosOptions,
        registry: &'a Arc<FaultSiteRegistry>,
        dir: &'a Path,
    ) -> Self {
        let cfg = opts.config(schedule.seed);
        let hyper = opts.hyper();
        // Per-shard update counts from a one-sample probe: routing is a
        // pure function of the pair key, and dense samples emit every
        // pair, so the split is identical for every sample.
        let probe = ReplayOracle::new(&cfg, Some(&hyper), opts.shards);
        let mut ctx = StreamContext::new(cfg.dim, cfg.update_mode, cfg.estimand);
        let mut shard_k = vec![0u64; opts.shards];
        ctx.ingest(&chaos_sample(schedule.seed, 1, cfg.dim), |u| {
            shard_k[probe.shard_of(u.key)] += 1;
        });
        // Precompute the sequential truth at every epoch in one pass.
        let mut oracle = ReplayOracle::new(&cfg, Some(&hyper), opts.shards);
        let mut truth = Vec::with_capacity(opts.total_samples as usize + 1);
        truth.push(truth_of(&oracle));
        for t in 1..=opts.total_samples {
            oracle.ingest(&chaos_sample(schedule.seed, t, cfg.dim));
            truth.push(truth_of(&oracle));
        }
        Self {
            schedule,
            opts,
            registry,
            dir,
            cfg,
            hyper,
            shard_k,
            truth,
            checks: 0,
            kills: 0,
        }
    }

    /// Progress trace for debugging slow or wedged schedules: set
    /// `ASCS_CHAOS_TRACE=1` to log each runner step with a timestamp.
    fn trace(&self, what: &std::fmt::Arguments<'_>) {
        if std::env::var_os("ASCS_CHAOS_TRACE").is_some() {
            let millis = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            eprintln!("[chaos seed {} @{millis}] {what}", self.schedule.seed);
        }
    }

    fn violation(&self, invariant: &'static str, detail: String) -> Violation {
        Violation {
            seed: self.schedule.seed,
            invariant,
            detail,
        }
    }

    fn sample(&self, t: u64) -> Sample {
        chaos_sample(self.schedule.seed, t, self.cfg.dim)
    }

    /// Launches a fresh instance over the directory with a fresh fault
    /// plan and filesystem, both wired to the shared registry.
    fn launch(&self) -> Result<Life, Violation> {
        let plan = Arc::new(FaultPlan::new().with_registry(self.registry.clone()));
        let fs = Arc::new(FaultFs::new().with_registry(self.registry.clone()));
        let serving = ServingEstimator::launch_durable_with_faults(
            self.cfg,
            Some(self.hyper),
            self.opts.serve_options(),
            self.opts.durability(self.dir),
            plan.clone(),
            fs.clone(),
        )
        .map_err(|e| self.violation("relaunch recovers", format!("launch failed: {e}")))?;
        let readers = Readers::spawn(
            &serving.snapshot_reader(),
            self.opts.reader_threads,
            self.opts.total_samples,
        );
        Ok(Life {
            serving,
            plan,
            fs,
            readers,
            expected: Expected::default(),
        })
    }

    /// Arms a life's index-based faults relative to the live counters.
    fn arm(&self, life: &Life, faults: &[ChaosFault]) {
        for fault in faults {
            match *fault {
                ChaosFault::WorkerPanic {
                    shard,
                    at_sample,
                    offset,
                } => {
                    let k = self.shard_k[shard].max(1);
                    life.plan.arm_panic(shard, (at_sample - 1) * k + offset % k);
                }
                ChaosFault::TornCheckpoint { shard, keep } => {
                    life.plan.arm_truncation(shard, keep);
                }
                ChaosFault::TornWalWrite { write, keep } => {
                    life.fs.arm_torn_write(life.fs.write_count() + write, keep);
                }
                ChaosFault::ShortWalWrite { write, keep } => {
                    life.fs
                        .arm_short_write(life.fs.write_count() + write, keep.max(1));
                }
                ChaosFault::FailWalSync { sync } => {
                    life.fs.arm_fail_sync(life.fs.sync_count() + sync);
                }
                ChaosFault::FailDirSync { index } => {
                    life.fs.arm_fail_dir_sync(life.fs.dir_sync_count() + index);
                }
                ChaosFault::Enospc { budget } => {
                    life.fs.arm_enospc(budget);
                }
                ChaosFault::OverloadWindow { .. }
                | ChaosFault::PoisonSample { .. }
                | ChaosFault::SilentDrop { .. } => {}
            }
        }
    }

    /// The standing oracle: snapshot barrier + bit-identity at the
    /// current epoch + counter coherence + exact script-side counters.
    fn check(&mut self, life: &mut Life, t: u64, what: &str) -> Result<(), Violation> {
        self.checks += 1;
        let snapshot = match life.serving.refresh_snapshot() {
            Ok(s) => s,
            Err(e) => {
                return Err(self.violation(
                    "snapshot barrier completes",
                    format!("{what}: refresh failed: {e}"),
                ))
            }
        };
        if snapshot.epoch() != t {
            return Err(self.violation(
                "no ingest silently dropped",
                format!(
                    "{what}: snapshot epoch {} != driven epoch {t}",
                    snapshot.epoch()
                ),
            ));
        }
        let truth = &self.truth[t as usize];
        let served: Vec<u64> = snapshot
            .sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        if served != truth.table {
            return Err(self.violation(
                "served estimates bit-identical to sequential oracle",
                format!("{what}: merged table diverged at epoch {t}"),
            ));
        }
        if snapshot.update_counts() != (truth.inserted, truth.skipped) {
            return Err(self.violation(
                "served estimates bit-identical to sequential oracle",
                format!(
                    "{what}: gate counters {:?} != {:?} at epoch {t}",
                    snapshot.update_counts(),
                    (truth.inserted, truth.skipped)
                ),
            ));
        }
        let top: Vec<(u64, u64)> = snapshot
            .top_pairs(usize::MAX)
            .into_iter()
            .map(|p| (p.key, p.estimate.to_bits()))
            .collect();
        if top != truth.top {
            return Err(self.violation(
                "served estimates bit-identical to sequential oracle",
                format!("{what}: top pairs diverged at epoch {t}"),
            ));
        }
        let health = life.serving.health();
        let incoherent = health.coherence_violations();
        if !incoherent.is_empty() {
            return Err(self.violation(
                "health counters coherent",
                format!("{what}: {incoherent:?}"),
            ));
        }
        let stats = life.serving.stats();
        let plan = &life.plan;
        let exact: [(&str, u64, u64); 6] = [
            ("ingested samples", stats.ingested_samples, t),
            ("emitted updates", stats.emitted_updates, truth.emitted),
            ("worker panics", stats.worker_panics, plan.panics_fired()),
            (
                "torn checkpoints",
                stats.torn_checkpoints,
                plan.truncations_fired(),
            ),
            (
                "ingest timeouts",
                stats.ingest_timeouts,
                life.expected.timeouts,
            ),
            (
                "quarantined samples",
                stats.quarantined_samples,
                life.expected.quarantined,
            ),
        ];
        for (name, got, want) in exact {
            if got != want {
                return Err(self.violation(
                    "health counters coherent",
                    format!("{what}: {name} {got} != expected {want} at epoch {t}"),
                ));
            }
        }
        if stats.overload_rejections < life.expected.min_overloads {
            return Err(self.violation(
                "health counters coherent",
                format!(
                    "{what}: overload rejections {} below floor {}",
                    stats.overload_rejections, life.expected.min_overloads
                ),
            ));
        }
        Ok(())
    }

    /// Saturate the queues under a batch hold, demand timeouts, release.
    /// Returns the stream time reached (the held sample is ingested last).
    ///
    /// The held window is first slid past any durable checkpoint boundary:
    /// an auto-checkpoint inside `try_ingest` runs a collect barrier, and
    /// a barrier against held workers can only time out. A safe window
    /// always exists because `checkpoint_every` exceeds the queue capacity
    /// plus slack.
    fn overload_window(
        &mut self,
        life: &mut Life,
        mut t: u64,
        end: u64,
        timeouts: u32,
    ) -> Result<u64, Violation> {
        let bound = 2 * (self.opts.queue_capacity + 2);
        let span = bound as u64;
        if t + span >= end {
            return Ok(t);
        }
        // Reset the checkpoint cadence before holding the workers: an
        // auto-checkpoint inside the window would run the collect barrier
        // against held workers and stall until the snapshot deadline. The
        // cadence follows the last checkpoint *attempt* (not aligned
        // multiples), so one manual checkpoint here — even a failing one
        // under armed fs faults — guarantees the next attempt is a full
        // interval away, farther than the window can reach.
        self.trace(&format_args!("pre-hold checkpoint at t={t}"));
        let _ = life.serving.persist_checkpoint();
        self.trace(&format_args!("overload hold at t={t}"));
        life.plan.set_hold_batches(true);
        // A worker blocked in `recv` still absorbs one batch on its way
        // into the hold, so the queue is only stably full once every
        // worker is parked there: keep refilling until `Overloaded` is
        // observed with all workers held.
        let mut saturated = false;
        for attempt in 0..100_000 {
            if attempt % 10_000 == 9_999 {
                self.trace(&format_args!(
                    "saturation attempt {attempt} t={t} held={}",
                    life.plan.workers_held()
                ));
            }
            if t + 1 > end {
                break;
            }
            match life.serving.try_ingest(&self.sample(t + 1)) {
                Ok(_) => t += 1,
                Err(IngestError::Overloaded { .. }) => {
                    life.expected.min_overloads += 1;
                    if life.plan.workers_held() >= self.opts.shards {
                        saturated = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                Err(e) => {
                    life.plan.set_hold_batches(false);
                    return Err(self.violation(
                        "overload window rejects cleanly",
                        format!("unexpected ingest error under hold: {e}"),
                    ));
                }
            }
        }
        if !saturated {
            life.plan.set_hold_batches(false);
            return Err(self.violation(
                "overload window rejects cleanly",
                format!("queues never stably saturated (last hold at t={t})"),
            ));
        }
        self.registry.record(SITE_CHAOS_OVERLOAD);
        self.trace(&format_args!("overload saturated at t={t}"));
        let pending = self.sample(t + 1);
        for _ in 0..timeouts {
            match life
                .serving
                .ingest_with_deadline(&pending, Duration::from_millis(2))
            {
                Err(IngestError::Timeout { .. }) => {
                    life.expected.timeouts += 1;
                    life.expected.min_overloads += 1;
                }
                other => {
                    life.plan.set_hold_batches(false);
                    return Err(self.violation(
                        "overload window rejects cleanly",
                        format!("deadline ingest under hold returned {other:?}, wanted Timeout"),
                    ));
                }
            }
        }
        life.plan.set_hold_batches(false);
        match life.serving.ingest_blocking(&pending) {
            Ok(_) => Ok(t + 1),
            Err(e) => Err(self.violation(
                "overload window rejects cleanly",
                format!("post-release ingest failed: {e}"),
            )),
        }
    }

    /// Checks a recovered (or cold-started) state against the truth.
    fn check_recovered(
        &mut self,
        state: &RecoveredState,
        floor: Option<u64>,
        what: &str,
    ) -> Result<(), Violation> {
        self.checks += 1;
        let epoch = state.epoch();
        if epoch > self.opts.total_samples {
            return Err(self.violation(
                "recovered epoch within stream",
                format!("{what}: recovered epoch {epoch} past total"),
            ));
        }
        if let Some(floor) = floor {
            if epoch < floor {
                return Err(self.violation(
                    "recovered state reaches the durable floor",
                    format!("{what}: recovered epoch {epoch} below durable floor {floor}"),
                ));
            }
        }
        let truth = &self.truth[epoch as usize];
        if state.emitted_updates() != truth.emitted {
            return Err(self.violation(
                "recovered state bit-identical to per-epoch truth",
                format!(
                    "{what}: emitted {} != {} at epoch {epoch}",
                    state.emitted_updates(),
                    truth.emitted
                ),
            ));
        }
        let recovered: Vec<u64> = state
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        if recovered != truth.table {
            return Err(self.violation(
                "recovered state bit-identical to per-epoch truth",
                format!("{what}: merged table diverged at epoch {epoch}"),
            ));
        }
        Ok(())
    }

    fn run(mut self) -> Result<ChaosReport, Violation> {
        let mut life_state: Option<Life> = None;
        // A corruption cycle may legitimately shorten the durable prefix
        // (the tail behind the flipped byte is discarded), so the floor
        // check is waived for exactly that recovery.
        let mut floor: Option<u64> = Some(0);
        let mut pending_crash_op: Option<u64> = None;
        let lives = self.schedule.lives.clone();
        for plan in &lives {
            let mut life = match life_state.take() {
                Some(live) => live,
                None => {
                    // Crash-during-recovery probe: recovery itself dies at
                    // a scripted op, then the re-entry budget absorbs it.
                    if let Some(op) = pending_crash_op.take() {
                        let registry = self.registry.clone();
                        let outcome = recover_with_reentry(
                            self.dir,
                            &self.cfg,
                            Some(&self.hyper),
                            self.opts.shards,
                            self.opts.recovery_budget,
                            |attempt| -> Arc<dyn DurableFs> {
                                if attempt == 0 {
                                    Arc::new(
                                        FaultFs::new()
                                            .crash_at_op(op)
                                            .with_registry(registry.clone()),
                                    )
                                } else {
                                    Arc::new(FaultFs::new().with_registry(registry.clone()))
                                }
                            },
                        )
                        .map_err(|e| {
                            self.violation(
                                "recovery re-entry budget absorbs crash-during-recovery",
                                format!("{e}"),
                            )
                        })?;
                        self.check_recovered(&outcome.state, floor, "re-entry recovery")?;
                    }
                    let life = self.launch()?;
                    let recovered = life.serving.processed_samples();
                    if recovered > self.opts.total_samples {
                        return Err(self.violation(
                            "recovered epoch within stream",
                            format!("relaunch recovered to {recovered}"),
                        ));
                    }
                    if let Some(f) = floor {
                        if recovered < f {
                            return Err(self.violation(
                                "recovered state reaches the durable floor",
                                format!("relaunch recovered {recovered} below floor {f}"),
                            ));
                        }
                    }
                    life
                }
            };
            self.arm(&life, &plan.faults);
            // Sample-indexed events of this life, ordered by stream time.
            let mut events: Vec<(u64, &ChaosFault)> = plan
                .faults
                .iter()
                .filter_map(|f| match f {
                    ChaosFault::OverloadWindow { at_sample, .. }
                    | ChaosFault::PoisonSample { at_sample }
                    | ChaosFault::SilentDrop { at_sample } => Some((*at_sample, f)),
                    _ => None,
                })
                .collect();
            events.sort_by_key(|&(at, _)| at);
            let mut next_event = 0usize;
            let mut t = life.serving.processed_samples();
            let end = plan.end_sample;
            let mut next_check = (t / CHECK_EVERY + 1) * CHECK_EVERY;
            while t < end {
                let mut fault_hit = false;
                while next_event < events.len() && events[next_event].0 <= t + 1 {
                    let (_, fault) = events[next_event];
                    next_event += 1;
                    fault_hit = true;
                    match *fault {
                        ChaosFault::OverloadWindow { timeouts, .. } => {
                            let margin = self.opts.queue_capacity as u64 + 2;
                            if t + margin < end {
                                t = self.overload_window(&mut life, t, end, timeouts)?;
                            }
                        }
                        ChaosFault::PoisonSample { .. } => {
                            let mut poisoned =
                                chaos_values(self.schedule.seed, t + 1, self.cfg.dim);
                            poisoned[0] = f64::NAN;
                            match life.serving.try_ingest(&Sample::dense(poisoned)) {
                                Err(IngestError::NonFinite { .. }) => {
                                    life.expected.quarantined += 1;
                                    self.registry.record(SITE_CHAOS_POISON);
                                }
                                other => {
                                    return Err(self.violation(
                                        "non-finite input quarantined",
                                        format!("poisoned sample returned {other:?}"),
                                    ));
                                }
                            }
                        }
                        ChaosFault::SilentDrop { .. } => {
                            // Sabotage: advance the script clock without
                            // feeding serving; the oracle must notice.
                            t += 1;
                        }
                        _ => unreachable!("only sample-indexed faults are events"),
                    }
                }
                if t >= end {
                    break;
                }
                self.trace(&format_args!("ingest t={}", t + 1));
                life.serving
                    .ingest_blocking(&self.sample(t + 1))
                    .map_err(|e| {
                        self.violation(
                            "accepted ingest never fails silently",
                            format!("sample {} rejected: {e}", t + 1),
                        )
                    })?;
                t += 1;
                if fault_hit || t >= next_check || t == end {
                    next_check = (t / CHECK_EVERY + 1) * CHECK_EVERY;
                    self.trace(&format_args!("checking at t={t}"));
                    self.check(&mut life, t, "periodic")?;
                    self.trace(&format_args!("checked at t={t}"));
                }
            }
            // End-of-life audit at the exact boundary.
            self.check(&mut life, end, "end of life")?;
            match plan.kill {
                Some(kill) => {
                    self.kills += 1;
                    self.registry.record(SITE_CHAOS_KILL);
                    let health = life.serving.health();
                    floor = Some(health.durability.last_durable_epoch);
                    let reader_violations = life.readers.finish();
                    if let Some(v) = reader_violations.first() {
                        return Err(
                            self.violation("snapshot epochs monotone and never torn", v.clone())
                        );
                    }
                    life.serving.simulate_crash();
                    if let Some(corrupt) = kill.corrupt {
                        match corrupt_one_byte(self.dir, corrupt) {
                            Ok(Some(_)) => {
                                self.registry.record(SITE_CHAOS_CORRUPT);
                                floor = None;
                            }
                            Ok(None) => {}
                            Err(e) => {
                                return Err(self.violation("corruption harness IO", format!("{e}")));
                            }
                        }
                    }
                    pending_crash_op = kill.crash_recovery_at_op;
                    life_state = None;
                }
                None => {
                    life_state = Some(life);
                }
            }
        }
        // Teardown: clean shutdown, then a cold-start audit proving the
        // directory alone reconstructs the final durable state.
        let total = self.opts.total_samples;
        if let Some(life) = life_state.take() {
            let health = life.serving.health();
            let final_floor = health.durability.last_durable_epoch;
            let reader_violations = life.readers.finish();
            if let Some(v) = reader_violations.first() {
                return Err(self.violation("snapshot epochs monotone and never torn", v.clone()));
            }
            let stats = life.serving.shutdown();
            if stats.ingested_samples != total {
                return Err(self.violation(
                    "no ingest silently dropped",
                    format!(
                        "shutdown at epoch {} != total {total}",
                        stats.ingested_samples
                    ),
                ));
            }
            let outcome = RecoveryManager::new(self.dir)
                .recover(&self.cfg, Some(&self.hyper), self.opts.shards)
                .map_err(|e| self.violation("cold start recovers", format!("{e}")))?;
            // A clean shutdown syncs the WAL tail, so the cold start must
            // reach at least what was durable before shutdown.
            self.check_recovered(&outcome.state, Some(final_floor), "cold-start audit")?;
        }
        Ok(ChaosReport {
            seed: self.schedule.seed,
            lives: self.schedule.lives.len(),
            kills: self.kills,
            invariant_checks: self.checks,
            final_epoch: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let opts = ChaosOptions::default();
        for seed in 0..32 {
            let a = ChaosSchedule::generate(seed, &opts);
            let b = ChaosSchedule::generate(seed, &opts);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.lives.is_empty());
            assert_eq!(a.lives.last().unwrap().end_sample, opts.total_samples);
            assert!(a.lives.last().unwrap().kill.is_none());
            assert!(a.fault_count() >= 1);
        }
    }

    #[test]
    fn sixty_four_consecutive_seeds_script_every_fault_dimension() {
        let opts = ChaosOptions::default();
        let mut kinds = [false; 9];
        let (mut kills, mut corrupts, mut crashes) = (0, 0, 0);
        for seed in 100..164 {
            let schedule = ChaosSchedule::generate(seed, &opts);
            for life in &schedule.lives {
                for fault in &life.faults {
                    let k = match fault {
                        ChaosFault::WorkerPanic { .. } => 0,
                        ChaosFault::TornCheckpoint { .. } => 1,
                        ChaosFault::OverloadWindow { .. } => 2,
                        ChaosFault::TornWalWrite { .. } => 3,
                        ChaosFault::ShortWalWrite { .. } => 4,
                        ChaosFault::FailWalSync { .. } => 5,
                        ChaosFault::FailDirSync { .. } => 6,
                        ChaosFault::Enospc { .. } => 7,
                        ChaosFault::PoisonSample { .. } => 8,
                        ChaosFault::SilentDrop { .. } => panic!("sabotage generated"),
                    };
                    kinds[k] = true;
                }
                if let Some(kill) = life.kill {
                    kills += 1;
                    corrupts += i32::from(kill.corrupt.is_some());
                    crashes += i32::from(kill.crash_recovery_at_op.is_some());
                }
            }
        }
        assert!(kinds.iter().all(|&k| k), "kinds covered: {kinds:?}");
        assert!(kills > 0 && corrupts > 0 && crashes > 0);
    }

    #[test]
    fn chaos_samples_are_dense_finite_and_seeded() {
        let s = chaos_values(7, 3, 10);
        let again = chaos_values(7, 3, 10);
        assert_eq!(s, again);
        let other = chaos_values(8, 3, 10);
        assert_ne!(s, other);
        assert!(s.iter().all(|v| v.is_finite() && *v != 0.0));
        assert_eq!(chaos_sample(7, 3, 10), Sample::dense(s));
    }
}
