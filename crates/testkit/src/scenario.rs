//! The [`Scenario`] trait and the committed scenario catalogue.
//!
//! A scenario bundles a seeded stress-stream generator with everything the
//! conformance harness needs to score it: the run configuration the
//! estimators are built from, the oracle checkpoints, and the gate
//! parameters (quantile levels, dependence factor, slack). Scenarios are
//! **committed**: every parameter — including the base seeds — lives in
//! this file, so the quick profile is deterministic on every machine and a
//! regression can always be replayed from the report alone.

use crate::adversarial::AdversarialCollisionScenario;
use ascs_core::{EstimandKind, SketchGeometry, UpdateMode};
use ascs_datasets::{
    BurstyStream, CovarianceFlipStream, NearConstantStream, SparseBlockStream, ZipfWeightStream,
};
use ascs_sketch_hash::splitmix64;

/// Derives the per-trial variant of a committed base seed. One splitmix
/// round over `(base, trial)`, so trial 0 is not the base seed itself and
/// trials never alias across scenarios with different bases.
pub fn mix_seed(base: u64, trial: u64) -> u64 {
    splitmix64(base ^ trial.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Everything the harness needs to run and score a scenario, minus the
/// stream itself.
#[derive(Debug, Clone)]
pub struct ScenarioProfile {
    /// Stable scenario name (used in reports, JSON and CI guards).
    pub name: &'static str,
    /// Dimensionality `d` of the samples.
    pub dim: u64,
    /// Stream length `T`.
    pub total_samples: u64,
    /// Sketch geometry every backend runs with.
    pub geometry: SketchGeometry,
    /// Assumed signal proportion `α` fed to the solver.
    pub alpha: f64,
    /// Nominal signal strength `u`: the weakest planted cumulative
    /// covariance at end of stream. Feeds the solver and the signal-set
    /// cut (`|exact| ≥ u/2`).
    pub nominal_u: f64,
    /// Noise-scale hint fed to the solver (gates use the *measured* scale).
    pub sigma_hint: f64,
    /// Initial sampling threshold `τ(T0)`.
    pub tau0: f64,
    /// Exploration miss target `δ` — also the all-pairs gate quantile.
    pub delta: f64,
    /// Total miss target `δ*` — also the signal-pairs gate quantile.
    pub delta_star: f64,
    /// What the estimators estimate (gates compare against the matching
    /// oracle).
    pub estimand: EstimandKind,
    /// How pair updates are formed.
    pub update_mode: UpdateMode,
    /// Oracle checkpoint stream times (strictly increasing; the last one
    /// should be `total_samples`).
    pub checkpoints: Vec<u64>,
    /// Index into `checkpoints` of the snapshot that defines the signal
    /// set. Theorems 1/2 assume stationary means, so drift scenarios pin
    /// the signal set at the pre-flip checkpoint and track post-flip
    /// emergent signals as a diagnostic for cumulative backends. The
    /// time-aware backends are scored against their own references, for
    /// which the harness enforces the emergent gate on the windowed ring.
    pub signal_reference_checkpoint: usize,
    /// Budget inflation for known i.i.d. violations (e.g. `√burst_len`).
    pub dependence_factor: f64,
    /// Fixed model-approximation slack of the ε budget.
    pub slack: f64,
    /// Base seed of the sample stream (mixed per trial).
    pub stream_seed: u64,
    /// Base seed of the sketch hash family (mixed per trial).
    pub sketch_seed: u64,
}

impl ScenarioProfile {
    /// The committed defaults shared by the catalogue: `K = 5`,
    /// `δ = 0.05`, `δ* = 0.20`, `τ0 = 10⁻⁴`, covariance estimand with
    /// product updates, one final checkpoint, no dependence inflation.
    pub(crate) fn base(name: &'static str, dim: u64, total: u64, range: usize) -> Self {
        Self {
            name,
            dim,
            total_samples: total,
            geometry: SketchGeometry::new(5, range),
            alpha: 0.01,
            nominal_u: 0.5,
            sigma_hint: 1.0,
            tau0: 1e-4,
            delta: 0.05,
            delta_star: 0.20,
            estimand: EstimandKind::Covariance,
            update_mode: UpdateMode::Product,
            checkpoints: vec![total],
            signal_reference_checkpoint: 0,
            dependence_factor: 1.0,
            slack: 1.4,
            stream_seed: splitmix64(name.as_bytes().iter().fold(0xA5C5, |acc, &b| {
                acc.wrapping_mul(0x100_0000_01B3) ^ u64::from(b)
            })),
            sketch_seed: 0xC0FF_EE00 ^ dim,
        }
    }
}

/// One realised trial of a scenario: a pure-by-index sample stream.
pub trait ScenarioStream {
    /// The `index`-th sample of this trial's stream.
    fn sample_at(&self, index: u64) -> ascs_core::Sample;
}

impl ScenarioStream for ZipfWeightStream {
    fn sample_at(&self, index: u64) -> ascs_core::Sample {
        ZipfWeightStream::sample_at(self, index)
    }
}

impl ScenarioStream for CovarianceFlipStream {
    fn sample_at(&self, index: u64) -> ascs_core::Sample {
        CovarianceFlipStream::sample_at(self, index)
    }
}

impl ScenarioStream for BurstyStream {
    fn sample_at(&self, index: u64) -> ascs_core::Sample {
        BurstyStream::sample_at(self, index)
    }
}

impl ScenarioStream for SparseBlockStream {
    fn sample_at(&self, index: u64) -> ascs_core::Sample {
        SparseBlockStream::sample_at(self, index)
    }
}

impl ScenarioStream for NearConstantStream {
    fn sample_at(&self, index: u64) -> ascs_core::Sample {
        NearConstantStream::sample_at(self, index)
    }
}

/// A conformance scenario: a committed profile plus a per-trial stream
/// factory.
pub trait Scenario {
    /// The committed profile.
    fn profile(&self) -> &ScenarioProfile;

    /// Realises trial `trial`'s sample stream (deterministic per trial).
    fn stream(&self, trial: u64) -> Box<dyn ScenarioStream>;
}

/// A scenario whose stream is built by a closure from the per-trial stream
/// seed — the adapter wrapping the `ascs_datasets::scenarios` generators.
struct GeneratorScenario<F> {
    profile: ScenarioProfile,
    build: F,
}

impl<F> Scenario for GeneratorScenario<F>
where
    F: Fn(&ScenarioProfile, u64) -> Box<dyn ScenarioStream>,
{
    fn profile(&self) -> &ScenarioProfile {
        &self.profile
    }

    fn stream(&self, trial: u64) -> Box<dyn ScenarioStream> {
        (self.build)(&self.profile, mix_seed(self.profile.stream_seed, trial))
    }
}

// ---------------------------------------------------------------------------
// The catalogue
// ---------------------------------------------------------------------------

const ZIPF_EXPONENT: f64 = 0.75;
const ZIPF_SCALE: f64 = 2.5;
const ZIPF_BLOCK: usize = 6;
const ZIPF_RHO: f64 = 0.9;

fn zipf_scenario(dim: u64, total: u64, range: usize) -> Box<dyn Scenario> {
    // Weights are seed-independent, so a throwaway stream yields the
    // analytic signal strength of every trial.
    let template = ZipfWeightStream::new(dim, 0, ZIPF_EXPONENT, ZIPF_SCALE, ZIPF_BLOCK, ZIPF_RHO);
    let mut profile = ScenarioProfile::base("zipf_weights", dim, total, range);
    profile.alpha = template.signal_pair_count() as f64 / ascs_core::num_pairs(dim) as f64;
    profile.nominal_u = template.min_signal_covariance();
    profile.sigma_hint = 1.5;
    Box::new(GeneratorScenario {
        profile,
        build: |p: &ScenarioProfile, seed| {
            Box::new(ZipfWeightStream::new(
                p.dim,
                seed,
                ZIPF_EXPONENT,
                ZIPF_SCALE,
                ZIPF_BLOCK,
                ZIPF_RHO,
            )) as Box<dyn ScenarioStream>
        },
    })
}

const FLIP_BLOCK: usize = 4;
const FLIP_RHO: f64 = 0.85;

fn covariance_flip_scenario(dim: u64, total: u64, range: usize) -> Box<dyn Scenario> {
    let mut profile = ScenarioProfile::base("covariance_flip", dim, total, range);
    // Both blocks count as signals at end of stream (cumulative ρ/2 each).
    let block_pairs = (FLIP_BLOCK * (FLIP_BLOCK - 1)) as f64; // 2 blocks × C(bl,2)
    profile.alpha = block_pairs / ascs_core::num_pairs(dim) as f64;
    profile.nominal_u = FLIP_RHO / 2.0;
    // Score each phase: at the flip and at end of stream. The signal set is
    // pinned at the pre-flip snapshot; block-B pairs that emerge afterwards
    // are the unenforced `emergent_signal_pairs` diagnostic for cumulative
    // backends and an enforced gate for the windowed ring, whose reference
    // at the final checkpoint is the drifted distribution itself. The
    // quick/deep window geometries place the window at each checkpoint
    // exactly over one phase, so the gate is sharp.
    profile.checkpoints = vec![total / 2, total];
    profile.signal_reference_checkpoint = 0;
    Box::new(GeneratorScenario {
        profile,
        build: |p: &ScenarioProfile, seed| {
            Box::new(CovarianceFlipStream::new(
                p.dim,
                p.total_samples,
                seed,
                FLIP_BLOCK,
                FLIP_RHO,
            )) as Box<dyn ScenarioStream>
        },
    })
}

const BURSTY_BLOCK: usize = 5;
const BURSTY_RHO: f64 = 0.85;

fn bursty_scenario(dim: u64, total: u64, range: usize, burst_len: u64) -> Box<dyn Scenario> {
    let mut profile = ScenarioProfile::base("bursty_duplicates", dim, total, range);
    profile.alpha =
        (BURSTY_BLOCK * (BURSTY_BLOCK - 1) / 2) as f64 / ascs_core::num_pairs(dim) as f64;
    profile.nominal_u = BURSTY_RHO;
    profile.dependence_factor = (burst_len as f64).sqrt();
    Box::new(GeneratorScenario {
        profile,
        build: move |p: &ScenarioProfile, seed| {
            Box::new(BurstyStream::new(
                p.dim,
                seed,
                burst_len,
                BURSTY_BLOCK,
                BURSTY_RHO,
            )) as Box<dyn ScenarioStream>
        },
    })
}

const SPARSE_BACKGROUND: usize = 2;

fn sparse_blocks_scenario(
    dim: u64,
    total: u64,
    range: usize,
    num_blocks: usize,
    block_len: usize,
) -> Box<dyn Scenario> {
    let mut profile = ScenarioProfile::base("sparse_blocks", dim, total, range);
    let signal_pairs = num_blocks * block_len * (block_len - 1) / 2;
    profile.alpha = signal_pairs as f64 / ascs_core::num_pairs(dim) as f64;
    profile.nominal_u = 1.0 / num_blocks as f64;
    profile.sigma_hint = 0.2;
    Box::new(GeneratorScenario {
        profile,
        build: move |p: &ScenarioProfile, seed| {
            Box::new(SparseBlockStream::new(
                p.dim,
                seed,
                num_blocks,
                block_len,
                SPARSE_BACKGROUND,
            )) as Box<dyn ScenarioStream>
        },
    })
}

const NEAR_CONSTANT_BLOCK: usize = 5;
const NEAR_CONSTANT_RHO: f64 = 0.85;
const NEAR_CONSTANT_LEVEL: f64 = 4.0;
const NEAR_CONSTANT_WOBBLE: f64 = 1e-3;

fn near_constant_scenario(dim: u64, total: u64, range: usize) -> Box<dyn Scenario> {
    let mut profile = ScenarioProfile::base("near_constant_features", dim, total, range);
    profile.alpha = (NEAR_CONSTANT_BLOCK * (NEAR_CONSTANT_BLOCK - 1) / 2) as f64
        / ascs_core::num_pairs(dim) as f64;
    profile.nominal_u = NEAR_CONSTANT_RHO;
    profile.sigma_hint = 0.6;
    // Product updates would report E[Y_a Y_b] ≈ level² for the constant
    // half; the centred mode is the one under test here.
    profile.update_mode = UpdateMode::Centered;
    Box::new(GeneratorScenario {
        profile,
        build: |p: &ScenarioProfile, seed| {
            Box::new(NearConstantStream::new(
                p.dim,
                seed,
                NEAR_CONSTANT_BLOCK,
                NEAR_CONSTANT_RHO,
                NEAR_CONSTANT_LEVEL,
                NEAR_CONSTANT_WOBBLE,
            )) as Box<dyn ScenarioStream>
        },
    })
}

/// The committed **quick** catalogue: six scenarios sized for the tier-1
/// test profile (a few seconds in debug builds).
pub fn quick_suite() -> Vec<Box<dyn Scenario>> {
    vec![
        zipf_scenario(32, 512, 1024),
        covariance_flip_scenario(28, 512, 1024),
        bursty_scenario(28, 512, 1024, 4),
        sparse_blocks_scenario(30, 768, 512, 4, 5),
        near_constant_scenario(30, 512, 1024),
        Box::new(AdversarialCollisionScenario::quick()),
    ]
}

/// The committed **deep** catalogue: the same six stressors at larger
/// dimensionality, longer streams and harsher parameters (run via the
/// `#[ignore]`-gated deep profile or `scenario_report --deep`).
pub fn deep_suite() -> Vec<Box<dyn Scenario>> {
    vec![
        zipf_scenario(48, 2048, 2048),
        covariance_flip_scenario(40, 2048, 2048),
        bursty_scenario(40, 2048, 2048, 8),
        sparse_blocks_scenario(40, 3072, 1024, 5, 6),
        near_constant_scenario(40, 2048, 2048),
        Box::new(AdversarialCollisionScenario::deep()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_cover_six_distinct_scenarios() {
        for suite in [quick_suite(), deep_suite()] {
            assert_eq!(suite.len(), 6);
            let mut names: Vec<&str> = suite.iter().map(|s| s.profile().name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 6, "duplicate scenario names: {names:?}");
            for s in &suite {
                let p = s.profile();
                assert!(p.alpha > 0.0 && p.alpha < 1.0, "{}: alpha", p.name);
                assert!(p.nominal_u > p.tau0, "{}: u vs tau0", p.name);
                assert_eq!(
                    *p.checkpoints.last().unwrap(),
                    p.total_samples,
                    "{}: final checkpoint must be the stream end",
                    p.name
                );
                assert!(p.signal_reference_checkpoint < p.checkpoints.len());
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_trial_and_differ_across_trials() {
        for scenario in quick_suite() {
            let a = scenario.stream(0);
            let b = scenario.stream(0);
            let c = scenario.stream(1);
            assert_eq!(
                a.sample_at(3),
                b.sample_at(3),
                "{}: trial not deterministic",
                scenario.profile().name
            );
            let differs = (0..8).any(|i| a.sample_at(i) != c.sample_at(i));
            assert!(differs, "{}: trials alias", scenario.profile().name);
        }
    }

    #[test]
    fn mix_seed_separates_trials() {
        let s0 = mix_seed(42, 0);
        let s1 = mix_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, 42);
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }
}
