//! Scenario testkit: adversarial workload generators plus the empirical
//! bound-conformance harness.
//!
//! The seed reproduction validated the Theorem 1/2 guarantees at exactly
//! one scale of one dense Gaussian simulation. This crate turns that single
//! smoke check into a standing correctness harness:
//!
//! * [`scenario`] — a family of seeded stress scenarios behind one
//!   [`Scenario`] trait: heavy-tailed Zipf feature weights, a covariance
//!   structure that flips mid-stream, bursty duplicated samples, sparse
//!   co-occurrence blocks, near-constant features, and an adversarial
//!   generator that searches the committed hash seeds for colliding pair
//!   keys ([`adversarial`]).
//! * [`harness`] — runs `R` seeded trials of a scenario against every
//!   count-sketch-family backend (vanilla CS, gated ASCS, the plan-driven
//!   path, sharded ingestion), scores each against the streaming exact
//!   oracle ([`ascs_eval::StreamingExact`]) at the scenario's checkpoints,
//!   and asserts the statistical acceptance gates of
//!   [`ascs_eval::gates`] — the empirical `(1 − δ)` error quantile must
//!   clear the Theorem 1/2 `ε` budget. Reports are serialisable per
//!   scenario, so CI and the `scenario_report` binary can emit
//!   machine-readable pass flags.
//! * [`fault`] — deterministic fault injection for the serving core: a
//!   scripted [`FaultPlan`] (panic-at-update-N, checkpoint truncation at
//!   byte K, queue-full and recovery holds, re-armable [`Trigger`] rules)
//!   plus the sequential [`ReplayOracle`] serving snapshots must match bit
//!   for bit.
//! * [`chaos`] — the deterministic chaos harness: a seeded
//!   [`ChaosSchedule`] composes every fault dimension (worker panics, torn
//!   checkpoints, filesystem faults, overload windows, byte corruption,
//!   kill/cold-restart cycles including crash-during-recovery) against
//!   live serving traffic with concurrent snapshot readers, while a
//!   standing invariant oracle checks bit-identity, epoch monotonicity,
//!   durability floors and counter coherence after every event.
//! * [`shrink`] — greedy minimisation of a violating chaos schedule down
//!   to a minimal reproducing fault set.
//!
//! Everything is deterministic from committed seeds: the tier-1 quick
//! profile (`tests/bound_conformance.rs`) must pass bit-for-bit on every
//! machine, and every future performance PR must keep it green.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod chaos;
pub mod fault;
pub mod harness;
pub mod scenario;
pub mod shrink;

pub use adversarial::{find_row_colliders, AdversarialCollisionScenario, AttackerPlan};
pub use chaos::{
    chaos_sample, chaos_values, run_schedule, ChaosFault, ChaosOptions, ChaosReport, ChaosSchedule,
    CorruptByte, KillPlan, LifePlan, Violation, CHAOS_SITES,
};
pub use fault::{FaultFs, FaultPlan, ReplayOracle, Trigger};
pub use harness::{
    run_scenario, run_suite, BackendReport, BackendVariant, CheckpointReport, ConformanceConfig,
    ScenarioReport, SuiteReport,
};
pub use scenario::{deep_suite, mix_seed, quick_suite, Scenario, ScenarioProfile, ScenarioStream};
pub use shrink::shrink;
