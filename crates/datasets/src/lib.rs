//! Workload generators for the ASCS reproduction.
//!
//! The paper evaluates ASCS on three families of data, none of which can be
//! redistributed with this repository, so each is replaced by a generator
//! that reproduces the properties the algorithms actually interact with
//! (dimensionality, per-sample sparsity, sparse block-correlation structure
//! and signal strength). The substitutions are documented in DESIGN.md.
//!
//! * [`simulation`] — the synthetic multivariate-Gaussian setup of
//!   Sections 6.2 / 7.3 / Table 1: a planted sparse correlation structure
//!   built from equicorrelated feature blocks, with exact ground truth.
//! * [`surrogate`] — LIBSVM-dataset surrogates (gisette, epsilon, cifar10,
//!   rcv1, sector) matching the shapes reported in Table 3.
//! * [`trillion`] — scaled-down surrogates of the URL and DNA k-mer
//!   datasets of Table 2 (power-law sparse features with strongly
//!   co-occurring groups).
//! * [`scenarios`] — adversarial/stress generators for the conformance
//!   testkit: heavy-tailed Zipf weights, mid-stream covariance flips,
//!   bursty duplication, sparse co-occurrence blocks and near-constant
//!   features.
//! * [`stream_util`] — buffered shuffling (the i.i.d.-inducing device the
//!   paper describes), bootstrap resampling and prefix splitting.
//!
//! Every generator is fully deterministic given its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;
pub mod simulation;
pub mod stream_util;
pub mod surrogate;
pub mod trillion;

pub use scenarios::{
    BurstyStream, CovarianceFlipStream, NearConstantStream, SparseBlockStream, ZipfWeightStream,
};
pub use simulation::{SimulatedDataset, SimulationSpec};
pub use stream_util::{
    derive_sample_seed, generate_samples_parallel, BootstrapResampler, ShuffleBuffer,
};
pub use surrogate::{SurrogateDataset, SurrogateSpec};
pub use trillion::{TrillionScaleDataset, TrillionSpec};
