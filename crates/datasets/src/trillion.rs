//! Scaled surrogates of the trillion-scale datasets of Table 2.
//!
//! The paper's headline experiment runs on the URL dataset (2.4M features,
//! ~120 non-zeros per sample) and a DNA 12-mer dataset (17M features, ~378
//! non-zeros per sample); their correlation matrices have 10¹²–10¹⁴ unique
//! entries. Neither dataset can be shipped or processed inside this
//! repository's budget, so [`TrillionSpec`] generates a *scaled* surrogate
//! that preserves the two quantities the CS-vs-ASCS comparison actually
//! depends on:
//!
//! 1. the per-sample sparsity (average non-zeros per sample), which fixes
//!    the number of pair updates per sample, and
//! 2. the compression ratio `p / (K·R)` (pairs per sketch bucket), which
//!    fixes the collision noise level.
//!
//! Feature popularity follows a power law (as in URL/text/k-mer data) and a
//! small set of feature groups always co-occur with nearly equal values —
//! these produce the near-1.0 correlation pairs that Table 2 reports the
//! "mean of top 1000" over.

use ascs_core::{PairIndexer, Sample};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a trillion-scale surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrillionSpec {
    /// Dataset name.
    pub name: String,
    /// Number of features `d` in the scaled surrogate.
    pub dim: u64,
    /// Average non-zero features per sample (URL ≈ 120, DNA ≈ 378).
    pub avg_nonzeros: f64,
    /// Power-law exponent of feature popularity (1.0 ≈ Zipf).
    pub popularity_exponent: f64,
    /// Number of strongly co-occurring groups (each contributes
    /// `group_size·(group_size−1)/2` near-1.0 correlation pairs).
    pub num_groups: u64,
    /// Features per co-occurring group.
    pub group_size: u64,
    /// Probability that a sample activates any given group.
    pub group_activation: f64,
    /// Seed.
    pub seed: u64,
}

impl TrillionSpec {
    /// URL-like surrogate, scaled to `dim` features.
    pub fn url_like(dim: u64, seed: u64) -> Self {
        Self {
            name: "url".into(),
            dim,
            avg_nonzeros: 120.0,
            popularity_exponent: 1.05,
            num_groups: 200.min(dim / 10).max(1),
            group_size: 4,
            group_activation: 0.02,
            seed,
        }
    }

    /// DNA 12-mer-like surrogate, scaled to `dim` features.
    pub fn dna_kmer_like(dim: u64, seed: u64) -> Self {
        Self {
            name: "dna".into(),
            dim,
            avg_nonzeros: 378.0,
            popularity_exponent: 0.9,
            num_groups: 400.min(dim / 10).max(1),
            group_size: 5,
            group_activation: 0.01,
            seed,
        }
    }
}

/// A realised trillion-scale surrogate.
#[derive(Debug, Clone)]
pub struct TrillionScaleDataset {
    spec: TrillionSpec,
    /// Cumulative popularity distribution over "background" features.
    popularity_cdf: Vec<f64>,
    /// Feature ids of each co-occurring group (disjoint, taken from the top
    /// of the feature range so they rarely collide with background draws).
    groups: Vec<Vec<u64>>,
    indexer: PairIndexer,
}

impl TrillionScaleDataset {
    /// Builds the surrogate.
    pub fn new(spec: TrillionSpec) -> Self {
        assert!(
            spec.dim >= 16,
            "trillion surrogate needs a non-trivial dimension"
        );
        assert!(
            spec.avg_nonzeros >= 2.0 && spec.avg_nonzeros < spec.dim as f64,
            "avg_nonzeros must be in [2, dim)"
        );
        assert!(spec.group_size >= 2, "groups need at least two features");
        assert!(
            spec.num_groups * spec.group_size <= spec.dim / 2,
            "co-occurring groups would cover more than half the feature space"
        );
        assert!(
            spec.group_activation > 0.0 && spec.group_activation <= 1.0,
            "group activation must be in (0, 1]"
        );

        // Background features: everything not reserved for groups. Build a
        // power-law popularity CDF over a capped number of "popular"
        // features; the long tail shares the remaining mass uniformly.
        let reserved = (spec.num_groups * spec.group_size) as usize;
        let background = spec.dim as usize - reserved;
        let ranked = background.min(100_000);
        let mut weights: Vec<f64> = (0..ranked)
            .map(|r| 1.0 / ((r + 1) as f64).powf(spec.popularity_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }

        // Groups occupy the tail end of the feature index space.
        let mut groups = Vec::with_capacity(spec.num_groups as usize);
        let group_base = spec.dim - spec.num_groups * spec.group_size;
        for g in 0..spec.num_groups {
            let start = group_base + g * spec.group_size;
            groups.push((start..start + spec.group_size).collect());
        }

        Self {
            indexer: PairIndexer::new(spec.dim),
            popularity_cdf: weights,
            groups,
            spec,
        }
    }

    /// The spec.
    pub fn spec(&self) -> &TrillionSpec {
        &self.spec
    }

    /// Ground-truth near-perfectly-correlated pairs: all within-group pairs.
    pub fn signal_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for group in &self.groups {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    out.push((group[i], group[j]));
                }
            }
        }
        out
    }

    /// Linear keys of the ground-truth signal pairs.
    pub fn signal_keys(&self) -> Vec<u64> {
        self.signal_pairs()
            .iter()
            .map(|&(a, b)| self.indexer.index(a, b))
            .collect()
    }

    /// The pair indexer for this dimensionality.
    pub fn indexer(&self) -> &PairIndexer {
        &self.indexer
    }

    /// Number of unique pairs of the surrogate (the "matrix size" Table 2
    /// quotes).
    pub fn num_pairs(&self) -> u64 {
        self.indexer.num_pairs()
    }

    /// Generates the `index`-th sparse sample.
    pub fn sample_at(&self, index: u64) -> Sample {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.spec.seed ^ 0x7121_1110 ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        let mut entries: Vec<(u32, f64)> = Vec::new();

        // Co-occurring groups: when a group activates, all of its features
        // appear with (nearly) the same value → correlation ≈ 1.
        for group in &self.groups {
            if rng.gen::<f64>() < self.spec.group_activation {
                let shared = 0.5 + rng.gen::<f64>();
                for &f in group {
                    let jitter = 1.0 + 0.01 * (rng.gen::<f64>() - 0.5);
                    entries.push((f as u32, shared * jitter));
                }
            }
        }

        // Background features: popularity-weighted draws until the expected
        // number of non-zeros is reached.
        let group_contribution =
            self.spec.num_groups as f64 * self.spec.group_size as f64 * self.spec.group_activation;
        let background_target = (self.spec.avg_nonzeros - group_contribution).max(1.0);
        // Poisson-ish: draw a count around the target.
        let count = (background_target * (0.5 + rng.gen::<f64>())).round() as usize;
        let reserved = self.spec.num_groups * self.spec.group_size;
        let background_dim = self.spec.dim - reserved;
        for _ in 0..count {
            let u: f64 = rng.gen();
            let ranked = self.popularity_cdf.partition_point(|&c| c < u);
            let feature = if ranked < self.popularity_cdf.len() {
                ranked as u64
            } else {
                // Long tail: uniform over the remaining background features.
                self.popularity_cdf.len() as u64
                    + (rng.gen::<u64>()
                        % (background_dim - self.popularity_cdf.len() as u64).max(1))
            };
            let value = (rng.gen::<f64>() * 2.0).max(0.05);
            entries.push((feature as u32, value));
        }
        entries.sort_unstable_by_key(|&(f, _)| f);
        entries.dedup_by_key(|&mut (f, _)| f);
        Sample::sparse(self.spec.dim, entries)
    }

    /// Generates the first `n` samples.
    pub fn samples(&self, n: usize) -> Vec<Sample> {
        (0..n as u64).map(|i| self.sample_at(i)).collect()
    }

    /// Generates the first `n` samples on up to `threads` OS threads.
    /// Samples derive per-index RNGs, so the result is identical to
    /// [`TrillionScaleDataset::samples`] for any thread count.
    pub fn samples_par(&self, n: usize, threads: usize) -> Vec<Sample> {
        crate::stream_util::generate_samples_parallel(n as u64, threads, |i| self.sample_at(i))
    }

    /// Average non-zeros per sample estimated over `probe` samples.
    pub fn average_nonzeros(&self, probe: usize) -> f64 {
        let probe = probe.max(1);
        let total: usize = (0..probe as u64)
            .map(|i| self.sample_at(i).nonzero_count())
            .sum();
        total as f64 / probe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_like_surrogate_matches_target_sparsity() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(50_000, 1));
        let nnz = ds.average_nonzeros(50);
        assert!(
            nnz > 40.0 && nnz < 250.0,
            "URL surrogate non-zeros per sample = {nnz}, expected near 120"
        );
    }

    #[test]
    fn dna_like_surrogate_is_denser_than_url() {
        let url = TrillionScaleDataset::new(TrillionSpec::url_like(50_000, 2));
        let dna = TrillionScaleDataset::new(TrillionSpec::dna_kmer_like(50_000, 2));
        assert!(dna.average_nonzeros(30) > url.average_nonzeros(30));
    }

    #[test]
    fn group_features_co_occur_with_near_equal_values() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(5_000, 3));
        let pairs = ds.signal_pairs();
        assert!(!pairs.is_empty());
        let (a, b) = pairs[0];
        let mut co_occurrences = 0;
        let mut only_one = 0;
        for i in 0..2000u64 {
            let s = ds.sample_at(i);
            let va = s.value(a);
            let vb = s.value(b);
            match (va != 0.0, vb != 0.0) {
                (true, true) => {
                    co_occurrences += 1;
                    assert!((va - vb).abs() / va.abs() < 0.05, "group values diverge");
                }
                (true, false) | (false, true) => only_one += 1,
                _ => {}
            }
        }
        assert!(co_occurrences > 10, "group never activated");
        assert!(
            only_one <= co_occurrences / 10,
            "group features should almost always appear together"
        );
    }

    #[test]
    fn signal_keys_match_pairs() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(2_000, 4));
        let pairs = ds.signal_pairs();
        let keys = ds.signal_keys();
        assert_eq!(pairs.len(), keys.len());
        assert_eq!(keys[0], ds.indexer().index(pairs[0].0, pairs[0].1));
    }

    #[test]
    fn samples_are_sparse_and_sorted() {
        let ds = TrillionScaleDataset::new(TrillionSpec::dna_kmer_like(10_000, 5));
        let s = ds.sample_at(0);
        match &s {
            Sample::Sparse { entries, dim } => {
                assert_eq!(*dim, 10_000);
                assert!(entries.len() < 2_000);
                for w in entries.windows(2) {
                    assert!(w[0].0 < w[1].0, "entries must be sorted and unique");
                }
            }
            Sample::Dense(_) => panic!("trillion surrogate must be sparse"),
        }
    }

    #[test]
    fn determinism_per_index() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(3_000, 6));
        assert_eq!(ds.sample_at(7), ds.sample_at(7));
        assert_ne!(ds.sample_at(7), ds.sample_at(8));
    }

    #[test]
    fn parallel_sample_generation_matches_sequential() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(3_000, 6));
        assert_eq!(ds.samples_par(25, 4), ds.samples(25));
    }

    #[test]
    fn num_pairs_scales_quadratically() {
        let ds = TrillionScaleDataset::new(TrillionSpec::url_like(10_000, 7));
        assert_eq!(ds.num_pairs(), 10_000u64 * 9_999 / 2);
    }

    #[test]
    #[should_panic(expected = "more than half")]
    fn oversubscribed_groups_panic() {
        let spec = TrillionSpec {
            name: "bad".into(),
            dim: 100,
            avg_nonzeros: 10.0,
            popularity_exponent: 1.0,
            num_groups: 20,
            group_size: 5,
            group_activation: 0.1,
            seed: 0,
        };
        TrillionScaleDataset::new(spec);
    }
}
