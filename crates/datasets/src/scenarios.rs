//! Adversarial and stress workload generators for the conformance testkit.
//!
//! The paper's evaluation (and the seed reproduction) anchors correctness to
//! one dense Gaussian simulation. Real streams misbehave in ways that setup
//! never exercises: heavy-tailed feature scales, covariance structure that
//! *changes* mid-stream, duplicated/bursty samples that violate the i.i.d.
//! assumption, sparse co-occurrence patterns where a pair's first evidence
//! arrives late, and features that are almost constant. Each generator below
//! isolates one of those stressors while keeping enough analytic structure
//! to commit a nominal signal strength `u` — the `testkit` crate wraps them
//! into scored conformance scenarios (the sixth scenario, an adversarial
//! search over the committed hash seeds, lives in `testkit` because it needs
//! the sketch hash family).
//!
//! Every generator derives its per-sample RNG through
//! [`derive_sample_seed`](crate::stream_util::derive_sample_seed), so
//! `sample_at` is a pure function of `(seed, index)` and streams can be
//! generated out of order, in parallel, and replayed from any offset.

use crate::stream_util::derive_sample_seed;
use ascs_core::Sample;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng_at(seed: u64, index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(derive_sample_seed(seed, index))
}

/// Standard normal draw via Box–Muller (mirrors `simulation`'s private
/// helper; kept local so the two modules stay independently evolvable).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draws a block of `len` equicorrelated values: each output is
/// `√ρ · factor + √(1−ρ) · ε` with independent `ε` — correlation exactly
/// `ρ` within the block.
fn correlated_value(rho: f64, factor: f64, rng: &mut ChaCha8Rng) -> f64 {
    rho.sqrt() * factor + (1.0 - rho).sqrt() * standard_normal(rng)
}

// ---------------------------------------------------------------------------
// 1. Heavy-tailed Zipf feature weights
// ---------------------------------------------------------------------------

/// Gaussian stream whose feature scales follow a Zipf law
/// `w_j = scale / (j + 1)^exponent`, with one equicorrelated block planted
/// on the *highest-weight* features. Covariance entries inherit the heavy
/// tail (`Cov(a,b) = w_a w_b ρ` within the block), so the estimator must
/// cope with a few enormous entries, a band of moderate signals and a long
/// tail of near-zero-mass pairs — the regime where collision noise is
/// dominated by a handful of heavy items rather than spread evenly.
#[derive(Debug, Clone)]
pub struct ZipfWeightStream {
    dim: u64,
    seed: u64,
    block_len: usize,
    rho: f64,
    weights: Vec<f64>,
}

impl ZipfWeightStream {
    /// Builds the stream: `dim` features, Zipf exponent and scale, a
    /// planted block on features `0..block_len` with correlation `rho`.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(dim: u64, seed: u64, exponent: f64, scale: f64, block_len: usize, rho: f64) -> Self {
        assert!(dim >= 2 && block_len >= 2 && (block_len as u64) <= dim);
        assert!(
            (0.0..1.0).contains(&rho) && rho > 0.0,
            "rho must be in (0,1)"
        );
        assert!(exponent > 0.0 && scale > 0.0);
        let weights = (0..dim)
            .map(|j| scale / ((j + 1) as f64).powf(exponent))
            .collect();
        Self {
            dim,
            seed,
            block_len,
            rho,
            weights,
        }
    }

    /// The Zipf weight of feature `j`.
    pub fn weight(&self, j: u64) -> f64 {
        self.weights[j as usize]
    }

    /// True covariance of the pair `(a, b)` under the construction.
    pub fn true_covariance(&self, a: u64, b: u64) -> f64 {
        if a != b && (a as usize) < self.block_len && (b as usize) < self.block_len {
            self.weights[a as usize] * self.weights[b as usize] * self.rho
        } else {
            0.0
        }
    }

    /// The weakest planted covariance — the nominal signal strength `u`.
    pub fn min_signal_covariance(&self) -> f64 {
        self.true_covariance(self.block_len as u64 - 2, self.block_len as u64 - 1)
    }

    /// Number of planted signal pairs.
    pub fn signal_pair_count(&self) -> usize {
        self.block_len * (self.block_len - 1) / 2
    }

    /// The `index`-th sample (pure in `(seed, index)`).
    pub fn sample_at(&self, index: u64) -> Sample {
        let mut rng = rng_at(self.seed, index);
        let factor = standard_normal(&mut rng);
        let values = (0..self.dim as usize)
            .map(|j| {
                let latent = if j < self.block_len {
                    correlated_value(self.rho, factor, &mut rng)
                } else {
                    standard_normal(&mut rng)
                };
                self.weights[j] * latent
            })
            .collect();
        Sample::dense(values)
    }
}

// ---------------------------------------------------------------------------
// 2. Concept drift: the covariance structure flips mid-stream
// ---------------------------------------------------------------------------

/// Concept-drift stream: during the first half of the stream block **A**
/// (features `0..block_len`) is equicorrelated at `rho` and block **B**
/// (features `block_len..2·block_len`) is pure noise; at `flip_index()` the
/// structure flips. The *cumulative* covariance — what a `1/T`-scaled
/// sketch estimates — therefore dilutes linearly after the flip:
/// `Cov_cum(A; t) = ρ · min(t, flip)/t`, `Cov_cum(B; t) = ρ · max(0, t −
/// flip)/t`. Scored per phase via oracle checkpoints.
#[derive(Debug, Clone)]
pub struct CovarianceFlipStream {
    dim: u64,
    total: u64,
    seed: u64,
    block_len: usize,
    rho: f64,
}

impl CovarianceFlipStream {
    /// Builds the stream over `total` samples.
    ///
    /// # Panics
    /// Panics on degenerate parameters (the two blocks must fit in `dim`).
    pub fn new(dim: u64, total: u64, seed: u64, block_len: usize, rho: f64) -> Self {
        assert!(block_len >= 2 && 2 * block_len as u64 <= dim);
        assert!((0.0..1.0).contains(&rho) && rho > 0.0);
        assert!(total >= 2);
        Self {
            dim,
            total,
            seed,
            block_len,
            rho,
        }
    }

    /// Index of the first post-flip sample.
    pub fn flip_index(&self) -> u64 {
        self.total / 2
    }

    /// The equicorrelation of the active block.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Cumulative covariance of pair `(a, b)` after `t` samples (model
    /// value, not the empirical realisation).
    pub fn cumulative_covariance(&self, a: u64, b: u64, t: u64) -> f64 {
        if a == b || t == 0 {
            return 0.0;
        }
        let bl = self.block_len as u64;
        let in_a = a < bl && b < bl;
        let in_b = (bl..2 * bl).contains(&a) && (bl..2 * bl).contains(&b);
        let flip = self.flip_index();
        if in_a {
            self.rho * (t.min(flip) as f64) / t as f64
        } else if in_b {
            self.rho * (t.saturating_sub(flip) as f64) / t as f64
        } else {
            0.0
        }
    }

    /// The `index`-th sample (pure in `(seed, index)`).
    pub fn sample_at(&self, index: u64) -> Sample {
        let mut rng = rng_at(self.seed, index);
        let factor = standard_normal(&mut rng);
        let bl = self.block_len;
        let active = if index < self.flip_index() {
            0..bl
        } else {
            bl..2 * bl
        };
        let values = (0..self.dim as usize)
            .map(|j| {
                if active.contains(&j) {
                    correlated_value(self.rho, factor, &mut rng)
                } else {
                    standard_normal(&mut rng)
                }
            })
            .collect();
        Sample::dense(values)
    }
}

// ---------------------------------------------------------------------------
// 3. Bursty / duplicated samples
// ---------------------------------------------------------------------------

/// Bursty stream: the underlying i.i.d. stream is stretched by exact
/// duplication — sample `i` replays base draw `i / burst_len`. The marginal
/// distribution (and hence the measured update scale `σ̂`) is unchanged,
/// but the *effective* sample count drops to `T / burst_len`, inflating
/// every empirical mean's fluctuation by `√burst_len` — the
/// [`BurstyStream::dependence_factor`] the conformance budget must carry.
/// Structure: one equicorrelated block on features `0..block_len`.
#[derive(Debug, Clone)]
pub struct BurstyStream {
    dim: u64,
    seed: u64,
    burst_len: u64,
    block_len: usize,
    rho: f64,
}

impl BurstyStream {
    /// Builds the stream.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(dim: u64, seed: u64, burst_len: u64, block_len: usize, rho: f64) -> Self {
        assert!(burst_len >= 1);
        assert!(block_len >= 2 && block_len as u64 <= dim);
        assert!((0.0..1.0).contains(&rho) && rho > 0.0);
        Self {
            dim,
            seed,
            burst_len,
            block_len,
            rho,
        }
    }

    /// `√burst_len` — the factor by which duplication inflates the
    /// fluctuations of every `T`-sample empirical mean.
    pub fn dependence_factor(&self) -> f64 {
        (self.burst_len as f64).sqrt()
    }

    /// The planted within-block correlation.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The `index`-th sample: an exact replay of base draw
    /// `index / burst_len`.
    pub fn sample_at(&self, index: u64) -> Sample {
        let base = index / self.burst_len;
        let mut rng = rng_at(self.seed, base);
        let factor = standard_normal(&mut rng);
        let values = (0..self.dim as usize)
            .map(|j| {
                if j < self.block_len {
                    correlated_value(self.rho, factor, &mut rng)
                } else {
                    standard_normal(&mut rng)
                }
            })
            .collect();
        Sample::dense(values)
    }
}

// ---------------------------------------------------------------------------
// 4. Sparse co-occurrence blocks
// ---------------------------------------------------------------------------

/// Sparse stream with block-structured co-occurrence: each sample activates
/// exactly one of `num_blocks` disjoint feature blocks (all its features
/// fire together, sharing a random sign) plus a couple of background
/// features from the tail. Within-block pairs co-occur every time their
/// block is drawn — true covariance `≈ 1/num_blocks` — while cross-block
/// pairs **never** co-occur, so their first (and only) sketch evidence is
/// the implicit zero. This is the regime the sampling gate's cold-start
/// refinement exists for: a signal pair's first co-observation can land
/// deep inside the sampling phase.
#[derive(Debug, Clone)]
pub struct SparseBlockStream {
    dim: u64,
    seed: u64,
    num_blocks: usize,
    block_len: usize,
    background: usize,
    jitter: f64,
}

impl SparseBlockStream {
    /// Builds the stream. Blocks occupy features
    /// `0..num_blocks · block_len`; background features are drawn from the
    /// remaining tail, which must be able to host `background` distinct
    /// features.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(
        dim: u64,
        seed: u64,
        num_blocks: usize,
        block_len: usize,
        background: usize,
    ) -> Self {
        assert!(num_blocks >= 1 && block_len >= 2);
        let covered = (num_blocks * block_len) as u64;
        assert!(covered <= dim, "blocks exceed the feature space");
        assert!(
            (dim - covered) as usize >= background,
            "tail too small for {background} background features"
        );
        Self {
            dim,
            seed,
            num_blocks,
            block_len,
            background,
            jitter: 0.25,
        }
    }

    /// True covariance of a within-block pair: the block activation
    /// probability (values are `±(1 + jitter·ε)` with a shared sign, so the
    /// conditional product mean is `1 + jitter²·0 = 1`).
    pub fn within_block_covariance(&self) -> f64 {
        1.0 / self.num_blocks as f64
    }

    /// The `index`-th sample (pure in `(seed, index)`).
    pub fn sample_at(&self, index: u64) -> Sample {
        let mut rng = rng_at(self.seed, index);
        let block = rng.gen_range(0..self.num_blocks);
        let sign = if rng.gen_range(0..2u32) == 0 {
            1.0
        } else {
            -1.0
        };
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(self.block_len + self.background);
        let start = block * self.block_len;
        for j in start..start + self.block_len {
            let v = sign * (1.0 + self.jitter * standard_normal(&mut rng));
            entries.push((j as u32, v));
        }
        // Background features: distinct draws from the tail, outside every
        // block so they can never alias a block feature.
        let tail_start = (self.num_blocks * self.block_len) as u64;
        let tail_len = self.dim - tail_start;
        let mut chosen: Vec<u64> = Vec::with_capacity(self.background);
        while chosen.len() < self.background {
            let f = tail_start + rng.gen_range(0..tail_len);
            if !chosen.contains(&f) {
                chosen.push(f);
                entries.push((f as u32, 0.5 * standard_normal(&mut rng)));
            }
        }
        Sample::sparse(self.dim, entries)
    }
}

// ---------------------------------------------------------------------------
// 5. Near-constant features
// ---------------------------------------------------------------------------

/// Stream mixing three feature populations: an equicorrelated signal block
/// (features `0..block_len`, correlation `rho`), standard noise features,
/// and a back half of **near-constant** features sitting at `level` with a
/// tiny wobble. The near-constant half has `|mean|/std ≈ level/wobble`
/// (thousands), exactly the regime where the product update approximation
/// collapses (Figure 2 of the paper): `E[Y_a Y_b] ≈ level²` while
/// `Cov(Y_a, Y_b) ≈ 0`. Conformance scenarios therefore drive this stream
/// through the **centred** update mode, which must hold the bound where
/// product mode provably cannot.
#[derive(Debug, Clone)]
pub struct NearConstantStream {
    dim: u64,
    seed: u64,
    block_len: usize,
    rho: f64,
    level: f64,
    wobble: f64,
}

impl NearConstantStream {
    /// Builds the stream; features `dim/2..dim` are near-constant.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(dim: u64, seed: u64, block_len: usize, rho: f64, level: f64, wobble: f64) -> Self {
        assert!(block_len >= 2 && (block_len as u64) <= dim / 2);
        assert!((0.0..1.0).contains(&rho) && rho > 0.0);
        assert!(wobble > 0.0 && wobble < level.abs());
        Self {
            dim,
            seed,
            block_len,
            rho,
            level,
            wobble,
        }
    }

    /// The planted within-block correlation (= covariance; unit variances).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// First near-constant feature index.
    pub fn constant_start(&self) -> u64 {
        self.dim / 2
    }

    /// The `index`-th sample (pure in `(seed, index)`).
    pub fn sample_at(&self, index: u64) -> Sample {
        let mut rng = rng_at(self.seed, index);
        let factor = standard_normal(&mut rng);
        let const_start = self.constant_start() as usize;
        let values = (0..self.dim as usize)
            .map(|j| {
                if j < self.block_len {
                    correlated_value(self.rho, factor, &mut rng)
                } else if j < const_start {
                    standard_normal(&mut rng)
                } else {
                    self.level + self.wobble * standard_normal(&mut rng)
                }
            })
            .collect();
        Sample::dense(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_numerics::{RunningCovariance, RunningMoments};

    #[test]
    fn zipf_weights_decay_and_covariances_follow() {
        let s = ZipfWeightStream::new(24, 7, 0.75, 2.5, 6, 0.9);
        assert!(s.weight(0) > s.weight(1));
        assert!(s.weight(23) < s.weight(0) / 5.0);
        assert!(s.true_covariance(0, 1) > s.min_signal_covariance());
        assert_eq!(s.true_covariance(6, 7), 0.0);
        assert_eq!(s.true_covariance(0, 10), 0.0);
        assert_eq!(s.signal_pair_count(), 15);
        // Empirical covariance of the weakest planted pair approaches the
        // analytic value.
        let mut cov = RunningCovariance::new();
        for i in 0..6000 {
            let sample = s.sample_at(i);
            cov.push(sample.value(4), sample.value(5));
        }
        let expect = s.true_covariance(4, 5);
        assert!(
            (cov.population_covariance() - expect).abs() < 0.12 * expect.max(0.1),
            "empirical {} vs analytic {expect}",
            cov.population_covariance()
        );
    }

    #[test]
    fn covariance_flip_switches_blocks_at_the_flip_index() {
        let s = CovarianceFlipStream::new(20, 400, 3, 4, 0.85);
        assert_eq!(s.flip_index(), 200);
        let mut a_phase1 = RunningCovariance::new();
        let mut b_phase1 = RunningCovariance::new();
        let mut a_phase2 = RunningCovariance::new();
        let mut b_phase2 = RunningCovariance::new();
        for i in 0..4000 {
            // Replay phase-1 indices (i < flip) and phase-2 indices.
            let p1 = s.sample_at(i % 200);
            let p2 = s.sample_at(200 + (i % 200));
            a_phase1.push(p1.value(0), p1.value(1));
            b_phase1.push(p1.value(4), p1.value(5));
            a_phase2.push(p2.value(0), p2.value(1));
            b_phase2.push(p2.value(4), p2.value(5));
        }
        assert!(a_phase1.correlation() > 0.7, "{}", a_phase1.correlation());
        assert!(b_phase1.correlation().abs() < 0.15);
        assert!(a_phase2.correlation().abs() < 0.15);
        assert!(b_phase2.correlation() > 0.7);
        // The cumulative model halves the planted value at t = total.
        assert!((s.cumulative_covariance(0, 1, 400) - 0.425).abs() < 1e-12);
        assert!((s.cumulative_covariance(4, 5, 400) - 0.425).abs() < 1e-12);
        assert_eq!(s.cumulative_covariance(0, 1, 200), 0.85);
        assert_eq!(s.cumulative_covariance(4, 5, 200), 0.0);
        assert_eq!(s.cumulative_covariance(0, 10, 400), 0.0);
    }

    #[test]
    fn bursty_stream_duplicates_in_runs() {
        let s = BurstyStream::new(10, 5, 4, 3, 0.8);
        assert_eq!(s.dependence_factor(), 2.0);
        for base in 0..8u64 {
            let first = s.sample_at(base * 4);
            for k in 1..4 {
                assert_eq!(s.sample_at(base * 4 + k), first, "burst {base} broke");
            }
        }
        assert_ne!(s.sample_at(0), s.sample_at(4));
    }

    #[test]
    fn sparse_blocks_cooccur_and_cross_blocks_never_do() {
        let s = SparseBlockStream::new(30, 11, 4, 5, 2);
        assert_eq!(s.within_block_covariance(), 0.25);
        let mut within = RunningCovariance::new();
        let mut active_counts = [0usize; 4];
        for i in 0..4000 {
            let sample = s.sample_at(i);
            // Exactly one block active: features of other blocks are zero.
            let mut active = Vec::new();
            for b in 0..4 {
                if sample.value((b * 5) as u64) != 0.0 {
                    active.push(b);
                }
            }
            assert_eq!(active.len(), 1, "sample {i} activated {active:?}");
            active_counts[active[0]] += 1;
            within.push(sample.value(0), sample.value(1));
            // Sparse entries stay within bounds and are distinct.
            let nz = sample.nonzeros();
            assert_eq!(nz.len(), 5 + 2);
            let mut idx: Vec<u64> = nz.iter().map(|&(i, _)| i).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 7, "duplicate feature in sample {i}");
        }
        assert!(active_counts.iter().all(|&c| c > 700), "{active_counts:?}");
        assert!(
            (within.population_covariance() - 0.25).abs() < 0.05,
            "within-block covariance {}",
            within.population_covariance()
        );
    }

    #[test]
    fn near_constant_features_sit_at_the_level() {
        let s = NearConstantStream::new(20, 13, 4, 0.85, 4.0, 1e-3);
        assert_eq!(s.constant_start(), 10);
        let mut m = RunningMoments::new();
        let mut sig = RunningCovariance::new();
        for i in 0..3000 {
            let sample = s.sample_at(i);
            m.push(sample.value(15));
            sig.push(sample.value(0), sample.value(1));
        }
        assert!((m.mean() - 4.0).abs() < 1e-4);
        assert!(m.population_std() < 2e-3);
        assert!(sig.correlation() > 0.7);
    }

    #[test]
    fn all_streams_are_index_pure() {
        let zipf = ZipfWeightStream::new(16, 1, 0.8, 2.0, 4, 0.9);
        let flip = CovarianceFlipStream::new(16, 100, 2, 3, 0.8);
        let bursty = BurstyStream::new(16, 3, 3, 3, 0.8);
        let sparse = SparseBlockStream::new(16, 4, 2, 4, 1);
        let near = NearConstantStream::new(16, 5, 3, 0.8, 2.0, 1e-3);
        for i in [0u64, 7, 63] {
            assert_eq!(zipf.sample_at(i), zipf.sample_at(i));
            assert_eq!(flip.sample_at(i), flip.sample_at(i));
            assert_eq!(bursty.sample_at(i), bursty.sample_at(i));
            assert_eq!(sparse.sample_at(i), sparse.sample_at(i));
            assert_eq!(near.sample_at(i), near.sample_at(i));
        }
        // Different seeds give different streams.
        let zipf2 = ZipfWeightStream::new(16, 2, 0.8, 2.0, 4, 0.9);
        assert_ne!(zipf.sample_at(0), zipf2.sample_at(0));
    }

    #[test]
    #[should_panic(expected = "tail too small")]
    fn sparse_blocks_reject_oversubscribed_background() {
        SparseBlockStream::new(10, 0, 2, 5, 1);
    }
}
