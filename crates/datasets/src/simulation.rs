//! Planted sparse-correlation Gaussian simulation (Sections 6.2, 7.3,
//! Table 1, Figures 3–5).
//!
//! The paper's simulation draws i.i.d. Gaussian samples whose true
//! correlation matrix is sparse: a proportion `α` of the pairs carry a
//! correlation drawn uniformly from `[0.5, 1)`, the rest are exactly zero.
//! A positive-semidefinite matrix with an *arbitrary* sparse support is
//! awkward to construct directly, so this generator uses the standard
//! factor-block construction: features are partitioned into equicorrelated
//! blocks, `Y_i = √ρ_b · F_b + √(1 − ρ_b) · ε_i` for every feature `i` of
//! block `b`, where `F_b` and `ε_i` are independent standard normals. Every
//! within-block pair then has correlation exactly `ρ_b`, every cross-block
//! pair has correlation exactly zero, and the block sizes are chosen so the
//! number of signal pairs matches the requested `α · p` as closely as
//! possible.

use ascs_core::{num_pairs, PairIndexer, Sample};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationSpec {
    /// Number of features `d`.
    pub dim: u64,
    /// Target proportion of signal pairs `α` (fraction of the `d(d−1)/2`
    /// pairs that carry a non-zero correlation).
    pub alpha: f64,
    /// Lower end of the signal correlation range (paper: 0.5).
    pub rho_min: f64,
    /// Upper end of the signal correlation range (paper: 1.0, exclusive).
    pub rho_max: f64,
    /// Size of each equicorrelated block (block of `m` features yields
    /// `m(m−1)/2` signal pairs).
    pub block_size: u64,
    /// Seed for both the structure and the sample stream.
    pub seed: u64,
}

impl SimulationSpec {
    /// The paper's simulation defaults: `d = 1000`, `α = 0.5 %`, signal
    /// correlations in `[0.5, 0.95]`, blocks of 10 features.
    pub fn paper_default() -> Self {
        Self {
            dim: 1000,
            alpha: 0.005,
            rho_min: 0.5,
            rho_max: 0.95,
            block_size: 10,
            seed: 42,
        }
    }

    /// A reduced configuration for fast tests and smoke runs.
    pub fn smoke(dim: u64, seed: u64) -> Self {
        Self {
            dim,
            alpha: 0.02,
            rho_min: 0.6,
            rho_max: 0.95,
            block_size: 4,
            seed,
        }
    }
}

/// A realised simulated dataset: the block structure (ground truth) plus a
/// deterministic sample generator.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    spec: SimulationSpec,
    /// `feature → block id` (features outside any block are pure noise).
    block_of: Vec<Option<u32>>,
    /// Per-block equicorrelation `ρ_b`.
    block_rho: Vec<f64>,
    indexer: PairIndexer,
}

impl SimulatedDataset {
    /// Builds the block structure for a spec.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (dim < 2, block_size < 2, alpha or
    /// rho out of range).
    pub fn new(spec: SimulationSpec) -> Self {
        assert!(spec.dim >= 2, "need at least two features");
        assert!(spec.block_size >= 2, "blocks need at least two features");
        assert!(
            spec.block_size <= spec.dim,
            "block larger than the feature space"
        );
        assert!(
            spec.alpha > 0.0 && spec.alpha < 1.0,
            "alpha must be in (0,1)"
        );
        assert!(
            0.0 < spec.rho_min && spec.rho_min <= spec.rho_max && spec.rho_max < 1.0,
            "signal correlations must satisfy 0 < rho_min <= rho_max < 1"
        );

        let p = num_pairs(spec.dim) as f64;
        let pairs_per_block = (spec.block_size * (spec.block_size - 1) / 2) as f64;
        let target_pairs = spec.alpha * p;
        let max_blocks = spec.dim / spec.block_size;
        let num_blocks =
            ((target_pairs / pairs_per_block).round() as u64).clamp(1, max_blocks.max(1));

        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        // Assign the first `num_blocks * block_size` features (after a
        // random permutation) to blocks; the rest stay pure noise.
        let mut perm: Vec<u64> = (0..spec.dim).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut block_of = vec![None; spec.dim as usize];
        for block in 0..num_blocks {
            for k in 0..spec.block_size {
                let feature = perm[(block * spec.block_size + k) as usize];
                block_of[feature as usize] = Some(block as u32);
            }
        }
        let block_rho: Vec<f64> = (0..num_blocks)
            .map(|_| {
                if (spec.rho_max - spec.rho_min).abs() < f64::EPSILON {
                    spec.rho_min
                } else {
                    rng.gen_range(spec.rho_min..spec.rho_max)
                }
            })
            .collect();

        Self {
            spec,
            block_of,
            block_rho,
            indexer: PairIndexer::new(spec.dim),
        }
    }

    /// The spec this dataset was built from.
    pub fn spec(&self) -> &SimulationSpec {
        &self.spec
    }

    /// Number of equicorrelated blocks actually planted.
    pub fn num_blocks(&self) -> usize {
        self.block_rho.len()
    }

    /// The block a feature belongs to, if any (`None` for pure-noise
    /// features). Exposed so that derived generators (the LIBSVM
    /// surrogates) can keep block features co-occurring when they sparsify
    /// the samples.
    pub fn block_of(&self, feature: u64) -> Option<u32> {
        self.block_of[feature as usize]
    }

    /// The true correlation between features `a` and `b` (0 for cross-block
    /// or noise features, `ρ_b` within block `b`).
    pub fn true_correlation(&self, a: u64, b: u64) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.block_of[a as usize], self.block_of[b as usize]) {
            (Some(ba), Some(bb)) if ba == bb => self.block_rho[ba as usize],
            _ => 0.0,
        }
    }

    /// All planted signal pairs as `(a, b, ρ)` with `a < b`.
    pub fn signal_pairs(&self) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        let d = self.spec.dim;
        // Group features by block to avoid the O(d²) scan.
        let mut features_of_block: Vec<Vec<u64>> = vec![Vec::new(); self.block_rho.len()];
        for f in 0..d {
            if let Some(b) = self.block_of[f as usize] {
                features_of_block[b as usize].push(f);
            }
        }
        for (b, features) in features_of_block.iter().enumerate() {
            let rho = self.block_rho[b];
            for i in 0..features.len() {
                for j in (i + 1)..features.len() {
                    out.push((features[i], features[j], rho));
                }
            }
        }
        out.sort_unstable_by_key(|&(a, b, _)| (a, b));
        out
    }

    /// Linear keys of the signal pairs (ground truth for the SNR probe and
    /// F1 evaluation).
    pub fn signal_keys(&self) -> Vec<u64> {
        self.signal_pairs()
            .iter()
            .map(|&(a, b, _)| self.indexer.index(a, b))
            .collect()
    }

    /// Realised signal proportion (planted pairs / total pairs); close to
    /// the requested `α` but quantised by the block size.
    pub fn realised_alpha(&self) -> f64 {
        self.signal_pairs().len() as f64 / num_pairs(self.spec.dim) as f64
    }

    /// Generates `n` i.i.d. samples starting from sample index `offset`
    /// (different offsets give disjoint, reproducible portions of the same
    /// infinite stream — handy for the bootstrap-style replication of
    /// Table 1 / Figures 3–4).
    pub fn samples(&self, offset: u64, n: usize) -> Vec<Sample> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.sample_at(offset + i as u64));
        }
        out
    }

    /// Like [`SimulatedDataset::samples`], generated on up to `threads` OS
    /// threads. Samples derive per-index RNGs, so the result is identical
    /// to the sequential generation for any thread count.
    pub fn samples_par(&self, offset: u64, n: usize, threads: usize) -> Vec<Sample> {
        crate::stream_util::generate_samples_parallel(n as u64, threads, |i| {
            self.sample_at(offset + i)
        })
    }

    /// Generates the `index`-th sample of the stream deterministically.
    pub fn sample_at(&self, index: u64) -> Sample {
        // Derive a per-sample RNG so that samples can be generated out of
        // order / in parallel and remain identical.
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.spec.seed ^ 0x5A5A_0000_0000_0000 ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut factors = vec![0.0f64; self.block_rho.len()];
        for f in factors.iter_mut() {
            *f = standard_normal(&mut rng);
        }
        let mut values = Vec::with_capacity(self.spec.dim as usize);
        for feature in 0..self.spec.dim as usize {
            let eps = standard_normal(&mut rng);
            let v = match self.block_of[feature] {
                Some(b) => {
                    let rho = self.block_rho[b as usize];
                    rho.sqrt() * factors[b as usize] + (1.0 - rho).sqrt() * eps
                }
                None => eps,
            };
            values.push(v);
        }
        Sample::dense(values)
    }

    /// The pair indexer matching this dataset's dimensionality.
    pub fn indexer(&self) -> &PairIndexer {
        &self.indexer
    }
}

/// Standard normal draw via Box–Muller (avoids pulling `rand_distr` in).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_numerics::RunningCovariance;

    #[test]
    fn block_structure_hits_requested_alpha() {
        let ds = SimulatedDataset::new(SimulationSpec::paper_default());
        let realised = ds.realised_alpha();
        assert!(
            (realised - 0.005).abs() / 0.005 < 0.15,
            "realised alpha {realised} too far from 0.005"
        );
    }

    #[test]
    fn true_correlations_are_symmetric_and_sparse() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(40, 1));
        let mut nonzero = 0;
        for a in 0..40u64 {
            for b in (a + 1)..40u64 {
                let r = ds.true_correlation(a, b);
                assert_eq!(r, ds.true_correlation(b, a));
                assert!((0.0..1.0).contains(&r.abs()) || r == 0.0);
                if r != 0.0 {
                    nonzero += 1;
                    assert!((0.6..0.95).contains(&r));
                }
            }
        }
        assert_eq!(nonzero, ds.signal_pairs().len());
        assert!(nonzero > 0);
    }

    #[test]
    fn signal_pairs_and_keys_are_consistent() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(30, 2));
        let pairs = ds.signal_pairs();
        let keys = ds.signal_keys();
        assert_eq!(pairs.len(), keys.len());
        for ((a, b, _), key) in pairs.iter().zip(keys.iter()) {
            assert_eq!(ds.indexer().index(*a, *b), *key);
        }
    }

    #[test]
    fn samples_are_deterministic_and_offset_disjoint() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(20, 3));
        let a = ds.samples(0, 5);
        let b = ds.samples(0, 5);
        assert_eq!(a, b);
        let c = ds.samples(5, 5);
        assert_ne!(a, c);
        assert_eq!(a[0].dim(), 20);
    }

    #[test]
    fn parallel_sample_generation_matches_sequential() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(20, 3));
        assert_eq!(ds.samples_par(3, 17, 4), ds.samples(3, 17));
    }

    #[test]
    fn empirical_correlation_matches_planted_structure() {
        // Long stream: within-block pairs should show their planted rho,
        // cross-block pairs should hover near zero.
        let spec = SimulationSpec {
            dim: 12,
            alpha: 0.1,
            rho_min: 0.8,
            rho_max: 0.8,
            block_size: 3,
            seed: 7,
        };
        let ds = SimulatedDataset::new(spec);
        let pairs = ds.signal_pairs();
        assert!(!pairs.is_empty());
        let (sa, sb, rho) = pairs[0];
        // Pick a cross pair: one block feature and one noise feature.
        let noise_feature = (0..12u64)
            .find(|&f| ds.true_correlation(sa, f) == 0.0 && f != sa)
            .unwrap();

        let mut planted = RunningCovariance::new();
        let mut cross = RunningCovariance::new();
        for i in 0..4000 {
            let s = ds.sample_at(i);
            planted.push(s.value(sa), s.value(sb));
            cross.push(s.value(sa), s.value(noise_feature));
        }
        assert!(
            (planted.correlation() - rho).abs() < 0.06,
            "empirical {} vs planted {rho}",
            planted.correlation()
        );
        assert!(cross.correlation().abs() < 0.06);
    }

    #[test]
    fn per_feature_marginals_are_standardised() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(10, 11));
        let mut m = ascs_numerics::RunningMoments::new();
        for i in 0..3000 {
            m.push(ds.sample_at(i).value(0));
        }
        assert!(m.mean().abs() < 0.06, "mean {}", m.mean());
        assert!((m.population_variance() - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "rho_min <= rho_max")]
    fn invalid_rho_range_panics() {
        SimulatedDataset::new(SimulationSpec {
            dim: 10,
            alpha: 0.1,
            rho_min: 0.9,
            rho_max: 0.5,
            block_size: 2,
            seed: 0,
        });
    }

    #[test]
    #[should_panic(expected = "block larger")]
    fn oversized_block_panics() {
        SimulatedDataset::new(SimulationSpec {
            dim: 4,
            alpha: 0.1,
            rho_min: 0.5,
            rho_max: 0.9,
            block_size: 10,
            seed: 0,
        });
    }

    #[test]
    fn smoke_spec_builds_quickly() {
        let ds = SimulatedDataset::new(SimulationSpec::smoke(16, 5));
        assert!(ds.num_blocks() >= 1);
        assert_eq!(ds.spec().dim, 16);
    }
}
